#!/usr/bin/env python
"""Execute the ``python`` code fences of markdown docs so they cannot rot.

Usage::

    PYTHONPATH=src python tools/run_doc_snippets.py README.md docs/*.md

Every fenced block tagged exactly ``python`` is executed; blocks in the same
file share one namespace (so a quickstart can build on an earlier snippet).
Fences tagged anything else (``text``, ``bash``, ``mermaid``, untagged) are
skipped.  A block tagged ``python no-run`` is shown-but-not-executed — use
sparingly, e.g. for snippets that depend on user-local paths.

Exit code is non-zero on the first failing snippet, printing the file, the
snippet index and the offending code — this is the CI docs job's whole job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

FENCE = re.compile(r"^```(\S*)[ \t]*([^\n]*)$")


def extract_snippets(text: str) -> list[tuple[int, str]]:
    """(start_line, code) for every runnable ```python fence."""
    snippets: list[tuple[int, str]] = []
    lines = text.splitlines()
    in_fence = False
    runnable = False
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(lines, start=1):
        match = FENCE.match(line.strip())
        if match and not in_fence:
            in_fence = True
            tag, extra = match.group(1), match.group(2)
            runnable = tag == "python" and "no-run" not in extra
            start = number + 1
            buffer = []
        elif line.strip().startswith("```") and in_fence:
            in_fence = False
            if runnable and buffer:
                snippets.append((start, "\n".join(buffer)))
        elif in_fence:
            buffer.append(line)
    return snippets


def run_file(path: Path) -> int:
    snippets = extract_snippets(path.read_text())
    if not snippets:
        print(f"{path}: no python snippets")
        return 0
    namespace: dict = {"__name__": f"doc_snippet:{path.name}"}
    for index, (line, code) in enumerate(snippets, start=1):
        try:
            exec(compile(code, f"{path}:snippet-{index}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report and fail the job
            print(f"FAIL {path} snippet {index} (line {line}): {error!r}")
            print("---")
            print(code)
            print("---")
            return 1
    print(f"{path}: {len(snippets)} snippet(s) OK")
    return 0


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    status = 0
    for name in argv:
        status |= run_file(Path(name))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
