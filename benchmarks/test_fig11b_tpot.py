"""Figure 11b — Time-Per-Output-Token across methods and sequence lengths.

Paper: SPARQ's sequential partial-key fetch makes it the slowest and the only
method above human reading speed; the dropping methods move no data; PQCache
(with prefetching and the GPU cache) keeps a nearly flat TPOT that stays
below the ~180 ms/token human-reading-speed budget.
"""

import pytest

from conftest import print_series

SEQ_LENS = (16384, 32768, 65536, 131072)
METHODS = ("pqcache", "snapkv", "h2o", "sparq", "infllm")
HUMAN_READING_SECONDS_PER_TOKEN = 60.0 / 333.0   # ~333 tokens/minute (§4.3.1)


def test_time_per_output_token(benchmark, latency_model):
    def run():
        rows = {}
        for seq_len in SEQ_LENS:
            rows[seq_len] = {
                method: latency_model.tpot(seq_len, method, cache_hit_rate=0.6)
                for method in METHODS
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 11b (TPOT seconds by method, 0.6 cache hit-rate)", rows)

    longest = rows[SEQ_LENS[-1]]
    # SPARQ is the slowest method at long contexts.
    assert longest["sparq"] == max(longest.values())
    # PQCache stays under the human reading-speed budget.
    assert longest["pqcache"] < HUMAN_READING_SECONDS_PER_TOKEN
    # PQCache TPOT is nearly flat while SPARQ grows with the context.
    pqc_growth = rows[131072]["pqcache"] / rows[32768]["pqcache"]
    sparq_growth = rows[131072]["sparq"] / rows[32768]["sparq"]
    assert pqc_growth < 1.3
    assert sparq_growth > pqc_growth
