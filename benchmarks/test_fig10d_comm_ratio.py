"""Figure 10d — model quality vs the extra-communication budget.

Paper (HotpotQA, 1/5 tokens): InfLLM and SPARQ improve as they are allowed
more communication, while PQCache is already saturated at 1/128 — its PQ
codes carry enough signal at the smallest budget.
"""

import pytest

from conftest import LONGBENCH_SEQ_LEN, make_budget, print_series
from repro.baselines import build_policy
from repro.core import PQCacheConfig
from repro.workloads import multi_hop_qa

COMM_RATIOS = (1.0 / 128.0, 1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0)


def _pq_config_for(comm_ratio: float, head_dim: int = 32) -> PQCacheConfig:
    """Choose m*b to consume (at most) the allowed communication budget."""
    budget_bits = max(int(comm_ratio * head_dim * 16), 4)
    if budget_bits >= 16:
        return PQCacheConfig(num_partitions=2, num_bits=min(budget_bits // 2, 8),
                             max_kmeans_iters=10, gpu_cache_tokens=0)
    return PQCacheConfig(num_partitions=1, num_bits=max(budget_bits, 4),
                         max_kmeans_iters=10, gpu_cache_tokens=0)


def test_communication_ratio_sweep(benchmark, harness):
    dataset = multi_hop_qa(num_samples=3, seq_len=LONGBENCH_SEQ_LEN, seed=17,
                           name="hotpotqa-like")

    def run():
        series = {}
        for comm in COMM_RATIOS:
            budget = make_budget(token_ratio=0.2, comm_ratio=comm)
            series[f"1/{int(round(1/comm))}"] = {
                "pqcache": harness.evaluate(
                    lambda: build_policy("pqcache", budget,
                                         pq_config=_pq_config_for(comm)),
                    dataset).score,
                "sparq": harness.evaluate(
                    lambda: build_policy("sparq", budget), dataset).score,
                "infllm": harness.evaluate(
                    lambda: build_policy("infllm", budget), dataset).score,
            }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 10d (score vs extra-communication budget)", series)

    lowest, highest = series["1/128"], series["1/16"]
    # PQCache is already strong at the lowest budget (stability claim).
    assert lowest["pqcache"] >= highest["pqcache"] - 20.0
    assert lowest["pqcache"] >= lowest["infllm"]
    # The other offloading methods benefit from more communication.
    assert highest["sparq"] >= lowest["sparq"] - 10.0
