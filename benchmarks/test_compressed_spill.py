"""Compressed swap/spill benchmark: codecs on the downward tiers must cut
wire bytes — and the simulated latency those bytes cost — without moving a
single output byte where the lossless guarantee applies.

Scenario 1 (engine): the preemption-pressure workload — a 2× oversubscribed
KV pool pushing the scheduler through spill, preemption and swap — served
three times: raw codecs everywhere, the lossless ``byteplane`` default, and
the opt-in ``int4`` spill tier.  Asserts:

* raw and byteplane runs are byte-identical to an unbounded-pool reference
  (tokens *and* logits) and to each other, and every *logical* byte counter
  matches across all three configs — codecs only ever touch wire bytes;
* the int4 spill tier moves its KV at **≥2× fewer wire bytes** (the issue's
  acceptance floor; the achieved ratio is ~2.7×), visible in
  :class:`~repro.serve.EngineMetrics` as ``spill_out_wire_bytes`` and the
  per-tier compression ratios;
* the saved bytes buy simulated time: swap-path seconds, fleet makespan and
  mean request e2e all strictly improve over the raw run.  (Request TPOT
  proper is pure decode service time and codec-invariant by construction —
  pressure stalls surface in e2e.)

Scenario 2 (cluster): a migration-heavy trace — every conversation's chain
is spilled at its owner and shipped cross-worker on the follow-up turn.
With the int4 spill tier the parked quantised payloads are what cross the
links: **≥2× wire reduction** on the migration path and strictly less
simulated transfer time than the raw fleet.

Smoke mode (default, CI): one pool size.  ``REPRO_SPILL_BENCH=full`` sweeps
deeper oversubscription ratios.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    InferenceEngine,
    Request,
    SamplingParams,
    SchedulerConfig,
)
from repro.serve.cluster import ClusterFrontend
from repro.workloads import multi_turn_conversation

BLOCK_SIZE = 32
PROMPT_TOKENS = 256
ANSWER_TOKENS = 8
NUM_REQUESTS = 8

#: acceptance floor on the spilled-KV wire reduction (achieved: ~2.7x)
WIRE_REDUCTION_FLOOR = 2.0

#: (label, kv_swap_codec, kv_spill_codec) — the three engine configs
CONFIGS = (
    ("raw", "raw", "raw"),
    ("byteplane", "byteplane", None),  # spill inherits the swap codec
    ("int4-spill", "byteplane", "int4"),
)


@pytest.fixture(scope="module")
def substrate() -> TransformerLM:
    config = ModelConfig(
        num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
        ffn_dim=128, vocab_size=512, max_context=65536, name="spill-bench",
    )
    return TransformerLM(config, seed=0)


def make_requests(substrate: TransformerLM) -> "list[Request]":
    rng = np.random.default_rng(11)
    return [
        Request(
            prompt_ids=rng.integers(
                4, substrate.config.vocab_size, size=PROMPT_TOKENS
            ).tolist(),
            request_id=f"spill-{index}",
            sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
        )
        for index in range(NUM_REQUESTS)
    ]


def working_set_blocks() -> int:
    per_request = -(-(PROMPT_TOKENS + ANSWER_TOKENS + 1) // BLOCK_SIZE)
    return NUM_REQUESTS * per_request


def run_schedule(substrate, pool_blocks, swap_codec, spill_codec):
    engine = InferenceEngine(
        substrate,
        scheduler_config=SchedulerConfig(
            max_batch_size=NUM_REQUESTS,
            max_prefill_chunk_tokens=128,
            preemption_mode="swap",
        ),
        enable_prefix_caching=True,
        kv_block_size=BLOCK_SIZE,
        kv_pool_blocks=pool_blocks,
        max_retained_outputs=0,
        kv_swap_codec=swap_codec,
        kv_spill_codec=spill_codec,
    )
    finals = engine.run(make_requests(substrate))
    return finals, engine


def summarize(finals, engine) -> dict:
    metrics = engine.metrics
    kv_spilled = (
        engine.prefix_cache.stats.spilled_blocks
        * engine.block_allocator.block_nbytes()
    )
    kv_wire = engine.prefix_cache.stats.spilled_wire_bytes
    e2es = [f.metrics.e2e_seconds for f in finals.values()]
    return {
        "swap_logical": metrics.swap_out_bytes,
        "swap_wire": metrics.swap_out_wire_bytes,
        "spill_logical": metrics.spill_out_bytes,
        "spill_wire": metrics.spill_out_wire_bytes,
        "kv_spill_ratio": kv_spilled / kv_wire if kv_wire else 1.0,
        "swap_seconds": metrics.swap_seconds,
        "codec_seconds": (
            metrics.codec_encode_seconds + metrics.codec_decode_seconds
        ),
        "mean_e2e": float(np.mean(e2es)),
        "makespan": metrics.clock,
        "preemptions": metrics.preemptions,
    }


def test_compressed_spill_cuts_wire_bytes_and_latency(substrate):
    reference, _ = run_schedule(substrate, None, "byteplane", None)
    pools = [working_set_blocks() // 2]
    if os.environ.get("REPRO_SPILL_BENCH", "smoke") == "full":
        pools = sorted({working_set_blocks() // d for d in (2, 3)})

    rows = []
    for pool in pools:
        results = {}
        for label, swap_codec, spill_codec in CONFIGS:
            finals, engine = run_schedule(
                substrate, pool, swap_codec, spill_codec
            )
            assert len(finals) == NUM_REQUESTS, (pool, label)
            assert all(f.finished for f in finals.values()), (pool, label)
            if label != "int4-spill":  # lossless: byte-identity holds
                for request_id, ref in reference.items():
                    out = finals[request_id]
                    assert out.token_ids == ref.token_ids, (pool, label)
                    assert np.array_equal(out.logits, ref.logits), (
                        pool, label,
                    )
            results[label] = summarize(finals, engine)
            rows.append({"pool": pool, "label": label, **results[label]})

        raw, packed, quant = (
            results["raw"], results["byteplane"], results["int4-spill"]
        )
        # Logical accounting is codec-invariant: same schedule, same bytes.
        for key in ("swap_logical", "spill_logical", "preemptions"):
            assert raw[key] == packed[key] == quant[key], (pool, key)
        # Raw wires at identity; the codecs genuinely shrink the wire.
        assert raw["swap_wire"] == raw["swap_logical"]
        assert raw["spill_wire"] == raw["spill_logical"]
        combined = lambda r: r["swap_wire"] + r["spill_wire"]  # noqa: E731
        assert combined(quant) < combined(packed) < combined(raw)
        # The acceptance floor: spilled KV rides at >= 2x fewer wire bytes.
        assert quant["kv_spill_ratio"] >= WIRE_REDUCTION_FLOOR, (
            f"pool {pool}: spilled-KV wire reduction "
            f"{quant['kv_spill_ratio']:.2f}x < {WIRE_REDUCTION_FLOOR}x floor"
        )
        # ...and the saved bytes outweigh the codec CPU time they cost.
        assert quant["swap_seconds"] < raw["swap_seconds"], pool
        assert quant["makespan"] < raw["makespan"], pool
        assert quant["mean_e2e"] < raw["mean_e2e"], pool

    print()
    print(
        f"compressed spill: {NUM_REQUESTS} x {PROMPT_TOKENS} tokens, "
        f"working set {working_set_blocks()} blocks"
    )
    header = (
        f"{'pool':>5} {'config':>11} {'swap KB':>9} {'wire':>7} "
        f"{'spill KB':>9} {'wire':>7} {'kv_ratio':>8} {'swap_ms':>8} "
        f"{'codec_ms':>8} {'e2e_ms':>8}"
    )
    print(header)
    for row in rows:
        print(
            f"{row['pool']:>5} {row['label']:>11} "
            f"{row['swap_logical'] / 1e3:>9.1f} {row['swap_wire'] / 1e3:>7.1f} "
            f"{row['spill_logical'] / 1e3:>9.1f} "
            f"{row['spill_wire'] / 1e3:>7.1f} {row['kv_spill_ratio']:>7.2f}x "
            f"{row['swap_seconds'] * 1e3:>8.4f} "
            f"{row['codec_seconds'] * 1e3:>8.4f} "
            f"{row['mean_e2e'] * 1e3:>8.4f}"
        )


# ------------------------------------------------------- migration scenario


NUM_CONVS = 3
SYSTEM_TOKENS = 1024
TURN_TOKENS = 64


def run_migration_trace(substrate, spill_codec, migration_codec):
    """Serve NUM_CONVS two-turn conversations, forcing every follow-up turn
    to migrate its (spilled) chain to the other worker."""
    cluster = ClusterFrontend(
        substrate,
        num_workers=2,
        placement="cache_aware",
        migrate_on_miss=True,
        migration_codec=migration_codec,
        scheduler_config=SchedulerConfig(max_prefill_chunk_tokens=512),
        kv_spill_codec=spill_codec,
    )
    outputs = {}
    rng = np.random.default_rng(3)
    for conv_index in range(NUM_CONVS):
        conversation = multi_turn_conversation(
            num_turns=2, system_tokens=SYSTEM_TOKENS,
            turn_tokens=TURN_TOKENS, seed=conv_index,
        )
        history = conversation.initial_history()
        warm_id = f"c{conv_index}t0"
        prompt = conversation.prompt_for_turn(0, history)
        cluster.submit(Request(
            request_id=warm_id, prompt_ids=prompt,
            sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
        ))
        out = cluster.run()[warm_id]
        history = conversation.extend_history(prompt, out.token_ids)

        # Spill the chain at its owner and load the owner so the follow-up
        # turn routes (and migrates) to the other worker.
        owner = cluster.worker_of(warm_id)
        cluster.release(warm_id)
        owner.prefix_cache.evict(owner.prefix_cache.num_resident)
        assert owner.prefix_cache.num_spilled > 0
        owner.submit(Request(
            request_id=f"fill{conv_index}",
            prompt_ids=rng.integers(4, 512, size=256).tolist(),
            sampling=SamplingParams(max_new_tokens=48),
        ))

        turn_id = f"c{conv_index}t1"
        cluster.submit(Request(
            request_id=turn_id,
            prompt_ids=conversation.prompt_for_turn(1, history),
            sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
        ))
        placement = cluster.placements[-1]
        assert placement.migrate_from == owner.worker_id, conv_index
        outputs[turn_id] = cluster.run()[turn_id]
        # Release the drained requests: a retained output pins its chain
        # (refcount 2), which would make the next round's evict target
        # unreachable and churn the disk tier instead of spilling.
        cluster.release(turn_id)
        owner.release(f"fill{conv_index}")
    return outputs, cluster


def test_compressed_migration_cuts_wire_bytes(substrate):
    raw_outputs, raw_cluster = run_migration_trace(substrate, "raw", "raw")
    quant_outputs, quant_cluster = run_migration_trace(
        substrate, "int4", "int4"
    )

    raw, quant = raw_cluster.metrics, quant_cluster.metrics
    assert raw.migrations == quant.migrations == NUM_CONVS
    # Logical migration accounting is codec-invariant.
    assert raw.migrated_blocks == quant.migrated_blocks
    assert raw.migrated_kv_bytes == quant.migrated_kv_bytes > 0
    assert raw.migration_compression_ratio == pytest.approx(1.0)
    # The parked int4 payloads are what crossed the links.
    assert quant.migration_compression_ratio >= WIRE_REDUCTION_FLOOR, (
        f"migration wire reduction {quant.migration_compression_ratio:.2f}x "
        f"< {WIRE_REDUCTION_FLOOR}x floor"
    )
    assert quant.migration_seconds < raw.migration_seconds
    # Every migrated follow-up turn still served off its shipped chain.
    for turn_id, out in quant_outputs.items():
        assert out.finished, turn_id
        assert out.metrics.cached_prefix_tokens > 0, turn_id

    print()
    print(f"compressed migration: {NUM_CONVS} conversations, "
          f"system {SYSTEM_TOKENS} tokens")
    for label, metrics in (("raw", raw), ("int4", quant)):
        print(
            f"  {label:>5}: kv {metrics.migrated_kv_bytes / 1e3:.1f} KB -> "
            f"wire {metrics.migrated_kv_wire_bytes / 1e3:.1f} KB "
            f"({metrics.migration_compression_ratio:.2f}x), "
            f"transfer {metrics.migration_seconds * 1e3:.4f} ms"
        )
