"""Table 6 — PQCache on a larger model with half / same CPU resources.

Paper: on Llama-3.1-70B the gap between PQCache and the uncompressed baseline
is negligible even when the CPU resources per GPU are halved, because larger
GQA models increase the GPU work per layer while the clustering work stays
constant, leaving more room for K-Means iterations.

Reproduced with a deeper/wider substrate configuration and K-Means budgets
derived from the adaptive planner under full and halved CPU throughput.
"""

import pytest

from conftest import LONGBENCH_SEQ_LEN, make_budget, print_table
from repro.core import AdaptiveIterationPlanner, PQCacheConfig
from repro.baselines import build_policy
from repro.eval import EvaluationHarness
from repro.llm import ModelConfig
from repro.memory import HardwareSpec, LatencyModel
from repro.workloads import longbench_suite

LARGER_MODEL = ModelConfig.small()          # deeper/wider than the 8B stand-in
TASKS = ("narrativeqa", "hotpotqa", "govreport", "trec", "count", "retrieval")


def _iteration_budget(cpu_scale: float, seq_len: int) -> int:
    """K-Means iteration budget for a 70B-like layer with scaled CPU power."""
    latency = LatencyModel(HardwareSpec.a100_host(), ModelConfig.llama3_70b())
    planner = AdaptiveIterationPlanner.from_device_model(
        compute_seconds_fn=latency.layer_prefill_compute_seconds,
        clustering_seconds_per_point=2e-8 / cpu_scale,
        max_iterations=40,
    )
    return planner.max_iterations_for(64 * 1024 if seq_len < 4096 else seq_len)


def test_larger_model_half_and_same_cpu(benchmark):
    budget = make_budget(token_ratio=0.2, comm_ratio=1.0 / 128.0)
    harness = EvaluationHarness(LARGER_MODEL, seed=0, qk_coupling=1.0)
    datasets = longbench_suite(seq_len=LONGBENCH_SEQ_LEN, num_samples=2, seed=0,
                               tasks=TASKS)
    iters = {"half": _iteration_budget(0.5, LONGBENCH_SEQ_LEN),
             "same": _iteration_budget(1.0, LONGBENCH_SEQ_LEN)}

    def factory(max_iters):
        return lambda: build_policy(
            "pqcache", budget,
            pq_config=PQCacheConfig(num_partitions=2, num_bits=5,
                                    max_kmeans_iters=max_iters,
                                    gpu_cache_tokens=0),
        )

    def run():
        factories = {
            "full": lambda: build_policy("full", budget),
            "pqcache-half": factory(iters["half"]),
            "pqcache-same": factory(iters["same"]),
        }
        return harness.evaluate_suite(factories, datasets)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Table 6 (larger model; iteration budgets {iters})", table)

    average = table["average"]
    # The 70B-scale claim: both CPU settings land close to the uncompressed run.
    assert average["pqcache-same"] >= average["full"] - 20.0
    assert abs(average["pqcache-half"] - average["pqcache-same"]) < 15.0
    assert iters["same"] >= iters["half"]
