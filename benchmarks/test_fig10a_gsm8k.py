"""Figure 10a — GSM8k chain-of-thought accuracy vs token budget.

Paper: PQCache outperforms the baselines across token budgets on CoT
reasoning, where the model must attend back to in-context reasoning steps;
scores rise as the token budget grows.
"""

import pytest

from conftest import LONGBENCH_PQ, make_budget, print_series
from repro.baselines import build_policy
from repro.workloads import cot_arithmetic

TOKEN_RATIOS = (0.1, 0.2, 0.4)
METHODS = ("pqcache", "snapkv(c)", "h2o(c)", "infllm")


def test_gsm8k_cot(benchmark, harness):
    dataset = cot_arithmetic(num_samples=4, seq_len=384, num_steps=8, seed=7)

    def factory(method, budget):
        base = method.split("(")[0]
        if base == "pqcache":
            return lambda: build_policy("pqcache", budget, pq_config=LONGBENCH_PQ)
        return lambda: build_policy(base, budget)

    def run():
        series = {}
        for ratio in TOKEN_RATIOS:
            budget = make_budget(token_ratio=ratio, comm_ratio=1.0 / 128.0)
            series[ratio] = {
                method: harness.evaluate(factory(method, budget), dataset).score
                for method in METHODS
            }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 10a (GSM8k-CoT-like accuracy vs token budget)", series)

    for ratio in TOKEN_RATIOS:
        assert series[ratio]["pqcache"] >= series[ratio]["infllm"]
        assert series[ratio]["pqcache"] >= series[ratio]["h2o(c)"]
    # Larger budgets never hurt PQCache.
    assert series[0.4]["pqcache"] >= series[0.1]["pqcache"] - 5.0
