"""Table 4 — InfiniteBench evaluation (longer contexts, 1/64 communication).

Paper: at 1/10 tokens PQCache improves the average score by +4.60% over the
best baseline; the Retr.KV task is where the dropping methods collapse
(H2O 4.6 vs PQCache 49.6) while PQCache stays close to Full/Oracle.
"""

import pytest

from conftest import (
    INFINITEBENCH_PQ,
    INFINITEBENCH_SEQ_LEN,
    SAMPLES_PER_DATASET,
    make_budget,
    print_table,
    table_policy_factories,
)
from repro.workloads import infinitebench_suite


@pytest.mark.parametrize("token_ratio", [0.2, 0.1], ids=["1-5_tokens", "1-10_tokens"])
def test_infinitebench_table(benchmark, harness, token_ratio):
    budget = make_budget(token_ratio=token_ratio, comm_ratio=1.0 / 64.0)
    datasets = infinitebench_suite(seq_len=INFINITEBENCH_SEQ_LEN,
                                   num_samples=SAMPLES_PER_DATASET, seed=10)
    factories = table_policy_factories(budget, INFINITEBENCH_PQ)

    def run():
        return harness.evaluate_suite(factories, datasets)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Table 4 (token ratio {token_ratio}, 1/64 comm)", table)

    average = table["average"]
    assert average["pqcache"] >= average["oracle"] - 10.0
    assert average["pqcache"] > average["h2o(c)"]
    assert average["pqcache"] > average["infllm"]
    # The Retr.KV-style collapse of dropping methods (paper's starkest gap).
    kv_row = table["retr.kv"]
    assert kv_row["pqcache"] > kv_row["h2o(c)"] + 20.0
