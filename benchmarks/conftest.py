"""Shared fixtures and helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper.  The
quality benchmarks run the full evaluation pipeline on scaled-down synthetic
suites (see DESIGN.md for the substitution rationale); the efficiency
benchmarks use the analytical latency/memory models.  Each module prints the
rows/series it reproduces so `pytest benchmarks/ --benchmark-only -s` yields a
report alongside the timing numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SelectionBudget, build_policy
from repro.core import PQCacheConfig
from repro.eval import EvaluationHarness
from repro.llm import ModelConfig
from repro.memory import HardwareSpec, LatencyModel

#: scaled-down experiment sizes (the paper's contexts are 10k-100k tokens; the
#: NumPy substrate evaluates the same code paths at hundreds of tokens).
LONGBENCH_SEQ_LEN = 448
INFINITEBENCH_SEQ_LEN = 768
SAMPLES_PER_DATASET = 3

#: PQ configurations used by the paper for the two suites.
LONGBENCH_PQ = PQCacheConfig(num_partitions=2, num_bits=6, max_kmeans_iters=12,
                             gpu_cache_tokens=0)
INFINITEBENCH_PQ = PQCacheConfig(num_partitions=4, num_bits=6, max_kmeans_iters=12,
                                 gpu_cache_tokens=0)


def make_budget(token_ratio: float, comm_ratio: float) -> SelectionBudget:
    """Budget with the reserved segments used throughout the benchmarks."""
    return SelectionBudget(token_ratio=token_ratio, comm_ratio=comm_ratio,
                           num_initial=4, num_local=16)


def table_policy_factories(budget: SelectionBudget, pq_config: PQCacheConfig,
                           names: tuple[str, ...] | None = None) -> dict:
    """Policy factories for the Table 2/4 line-up."""
    spec = {
        "full": lambda: build_policy("full", budget),
        "oracle": lambda: build_policy("oracle", budget),
        "h2o(c)": lambda: build_policy("h2o", budget, compensated=True),
        "snapkv(c)": lambda: build_policy("snapkv", budget, compensated=True),
        "pyramidkv(c)": lambda: build_policy("pyramidkv", budget, compensated=True),
        "infllm": lambda: build_policy("infllm", budget),
        "sparq": lambda: build_policy("sparq", budget),
        "pqcache": lambda: build_policy("pqcache", budget, pq_config=pq_config),
    }
    if names is None:
        return spec
    return {name: spec[name] for name in names}


@pytest.fixture(scope="session")
def harness() -> EvaluationHarness:
    """Shared evaluation harness (model + prefill cache) for quality benches."""
    return EvaluationHarness(ModelConfig.tiny(), seed=0, qk_coupling=1.0)


@pytest.fixture(scope="session")
def latency_model() -> LatencyModel:
    """Latency model of the paper's testbed (RTX 4090 + PCIe 1.0 x16, 8B model)."""
    return LatencyModel(
        HardwareSpec.paper_testbed(),
        ModelConfig.llama3_8b(),
        PQCacheConfig(num_partitions=2, num_bits=6),
        token_ratio=0.2,
        comm_ratio=1.0 / 128.0,
    )


def print_table(title: str, table: dict) -> None:
    """Print a {row: {column: value}} table in the paper's layout."""
    print(f"\n=== {title} ===")
    print(EvaluationHarness.format_table(table))


def print_series(title: str, series: dict) -> None:
    """Print a simple {x: value-or-dict} series."""
    print(f"\n=== {title} ===")
    for key, value in series.items():
        if isinstance(value, dict):
            rendered = ", ".join(f"{k}={v:.4g}" for k, v in value.items())
        elif isinstance(value, float):
            rendered = f"{value:.4g}"
        else:
            rendered = str(value)
        print(f"  {key}: {rendered}")
