"""Table 5 — PQCache combined with MInference-style sparse prefilling.

Paper: MInference alone degrades quality relative to dense attention (its
sparse prefill misses context), and adding PQCache on top of it causes only a
small further drop, demonstrating that PQCache composes with prefill
acceleration.  Reproduced with the A-shape sparse-prefill approximation of
:mod:`repro.baselines.sparse_prefill`.
"""

import pytest

from conftest import (
    INFINITEBENCH_PQ,
    LONGBENCH_SEQ_LEN,
    SAMPLES_PER_DATASET,
    make_budget,
    print_table,
)
from repro.baselines import build_policy, sparse_prefill
from repro.baselines.sparse_prefill import SparsePrefillConfig
from repro.eval import EvaluationHarness
from repro.llm import ModelConfig
from repro.workloads import infinitebench_suite

SPARSE = SparsePrefillConfig(sink_tokens=8, local_window=48, vertical_stripes=8,
                             key_noise_scale=0.05)


def test_sparse_prefill_combination(benchmark):
    budget = make_budget(token_ratio=0.2, comm_ratio=1.0 / 64.0)
    datasets = infinitebench_suite(seq_len=LONGBENCH_SEQ_LEN,
                                   num_samples=SAMPLES_PER_DATASET, seed=10,
                                   tasks=("en.qa", "retr.passkey", "retr.kv"))
    dense = EvaluationHarness(ModelConfig.tiny(), seed=0, qk_coupling=1.0)
    sparse = EvaluationHarness(
        ModelConfig.tiny(), seed=0, qk_coupling=1.0,
        prefill_fn=lambda model, ids: sparse_prefill(model, ids, SPARSE),
    )

    def run():
        rows = {}
        for dataset in datasets:
            rows[dataset.name] = {
                "full": dense.evaluate(lambda: build_policy("full", budget),
                                       dataset).score,
                "pqc": dense.evaluate(
                    lambda: build_policy("pqcache", budget, pq_config=INFINITEBENCH_PQ),
                    dataset).score,
                "minf": sparse.evaluate(lambda: build_policy("full", budget),
                                        dataset).score,
                "comb": sparse.evaluate(
                    lambda: build_policy("pqcache", budget, pq_config=INFINITEBENCH_PQ),
                    dataset).score,
            }
        rows["average"] = {
            col: sum(r[col] for r in rows.values()) / len(rows)
            for col in ("full", "pqc", "minf", "comb")
        }
        return rows

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Table 5 (PQCache x MInference-style sparse prefill)", table)

    avg = table["average"]
    # PQCache alone stays near Full; the combination stays near MInference alone.
    assert avg["pqc"] >= avg["full"] - 15.0
    assert avg["comb"] >= avg["minf"] - 15.0
