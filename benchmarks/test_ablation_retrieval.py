"""Ablation (paper §5 discussion) — PQ vs IVF vs exact retrieval over keys.

The paper chooses PQ over other ANNS structures because of its negligible
construction cost; §5 lists IVF/HNSW as future extensions.  This ablation
compares retrieval recall and (modelled) construction cost of flat, IVF and
PQ indexes over real per-head key matrices from the substrate, supporting the
design-choice discussion in DESIGN.md.
"""

import numpy as np
import pytest

from conftest import print_series
from repro.core import PQConfig
from repro.llm import ModelConfig, TransformerLM
from repro.retrieval import FlatIndex, IVFIndex, PQIndex, recall_at_k

TOP_K = 32


def test_pq_vs_ivf_retrieval(benchmark):
    config = ModelConfig.tiny()
    model = TransformerLM(config, seed=0)
    rng = np.random.default_rng(0)
    prompt = rng.integers(4, config.vocab_size, size=512).tolist()
    prefill = model.prefill(prompt, collect_queries=True)
    keys = prefill.kvcache[1].keys[0]                 # (s, d_h) one head
    query = prefill.prompt_queries[1][0, -1, :]       # that head's last query

    def run():
        flat = FlatIndex(dim=keys.shape[1])
        flat.add(keys)
        exact_ids, _ = flat.search(query, TOP_K)

        results = {}
        pq = PQIndex(PQConfig(dim=keys.shape[1], num_partitions=2, num_bits=6,
                              max_kmeans_iters=15, seed=0))
        pq.train(keys)
        pq_ids, _ = pq.search(query, TOP_K)
        results["pq"] = recall_at_k(pq_ids, exact_ids)

        for n_probe in (2, 8):
            ivf = IVFIndex(dim=keys.shape[1], n_lists=16, n_probe=n_probe, seed=0)
            ivf.train(keys)
            ivf_ids, _ = ivf.search(query, TOP_K)
            results[f"ivf-probe{n_probe}"] = recall_at_k(ivf_ids, exact_ids)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(f"Ablation: recall@{TOP_K} of approximate indexes vs exact", results)

    assert results["pq"] > 0.3
    assert results["ivf-probe8"] >= results["ivf-probe2"] - 1e-9
