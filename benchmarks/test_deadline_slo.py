"""Deadline SLO benchmark: EDF vs plain FCFS under oversubscription.

One burst of same-priority requests lands on an engine whose KV pool and
batch ceiling are ~2x oversubscribed, so everything queues.  Deadlines are
assigned *adversarially for FCFS*: a probe replay (no deadlines) yields the
burst's sorted finish times ``F_(1) <= ... <= F_(N)``, and submission ``i``
then gets the relative deadline ``F_(N-1-i) * (1 + slack)`` — the
earliest-submitted requests get the loosest deadlines.  Under FCFS the
``i``-th submission still finishes near ``F_(i)``, so roughly half the
burst lands past its (reversed) deadline; EDF reorders the queue into
deadline order and meets nearly all of them.  The benchmark asserts the
EDF replay's SLO-met fraction strictly beats the FCFS replay's.

Both replays run with ``shed_missed_deadlines=False``: every request must
complete so the met fraction compares *scheduling order* alone, and the
deadline-steering invariant (tokens identical either way) stays auditable.

``REPRO_DEADLINE_BENCH=smoke`` (CI) shrinks the burst.  Run with ``-s``
for the per-run table.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    InferenceEngine,
    Request,
    RequestQoS,
    SamplingParams,
    SchedulerConfig,
)

SMOKE = os.environ.get("REPRO_DEADLINE_BENCH", "") == "smoke"

NUM_REQUESTS = 8 if SMOKE else 16
PROMPT_LEN = 192           # 12 blocks each
MAX_NEW = 6
SLACK = 0.3                # deadline headroom over the probe finish times

BLOCK_SIZE = 16
POOL_BLOCKS = (NUM_REQUESTS * PROMPT_LEN // BLOCK_SIZE) // 2  # ~2x oversub


@pytest.fixture(scope="module")
def substrate() -> TransformerLM:
    config = ModelConfig(
        num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
        ffn_dim=128, vocab_size=512, max_context=65536, name="deadline-bench",
    )
    return TransformerLM(config, seed=0)


def make_engine(substrate) -> InferenceEngine:
    return InferenceEngine(
        substrate,
        # the batch ceiling is wide enough that the *pool* binds: 8 resident
        # requests want ~104 blocks against the ~2x-oversubscribed pool, so
        # decode growth preempts while the rest of the burst queues
        scheduler_config=SchedulerConfig(
            max_batch_size=8,
            max_prefill_chunk_tokens=256,
            shed_missed_deadlines=False,
        ),
        kv_block_size=BLOCK_SIZE,
        kv_pool_blocks=POOL_BLOCKS,
    )


def make_requests(deadlines: "list[float | None]") -> list[Request]:
    rng = np.random.default_rng(3)
    return [
        Request(
            request_id=f"req-{i}",
            prompt_ids=rng.integers(4, 512, size=PROMPT_LEN).tolist(),
            sampling=SamplingParams(max_new_tokens=MAX_NEW),
            qos=RequestQoS(deadline=deadlines[i]),
        )
        for i in range(NUM_REQUESTS)
    ]


def replay(substrate, deadlines: "list[float | None]"):
    """Submit the whole burst at clock 0, run to completion."""
    engine = make_engine(substrate)
    for request in make_requests(deadlines):
        engine.submit(request)
    return engine, engine.run()


def met_fraction(finals, deadlines: list[float]) -> float:
    met = sum(
        1 for i in range(NUM_REQUESTS)
        if finals[f"req-{i}"].metrics.finish_time <= deadlines[i]
    )
    return met / NUM_REQUESTS


def test_edf_beats_fcfs_on_slo_met_fraction(substrate):
    # probe: no deadlines, pure FCFS — its sorted finish times calibrate
    # a deadline set the burst *can* meet in some order
    _, probe = replay(substrate, [None] * NUM_REQUESTS)
    finish = sorted(
        probe[f"req-{i}"].metrics.finish_time for i in range(NUM_REQUESTS)
    )
    assert finish[0] > 0.0
    # submission i gets the (N-1-i)-th finish time: loosest deadlines to
    # the earliest submissions — adversarial for FCFS, benign for EDF
    deadlines = [
        finish[NUM_REQUESTS - 1 - i] * (1.0 + SLACK)
        for i in range(NUM_REQUESTS)
    ]

    fcfs_engine, fcfs = replay(substrate, [None] * NUM_REQUESTS)
    edf_engine, edf = replay(substrate, deadlines)

    # deadlines steer scheduling only: every request's tokens are
    # byte-identical between the two replays
    for i in range(NUM_REQUESTS):
        rid = f"req-{i}"
        assert fcfs[rid].token_ids == edf[rid].token_ids
        assert fcfs[rid].finish_reason == "length"
        assert edf[rid].finish_reason == "length"
    assert edf_engine.metrics.deadline_misses == 0  # shedding disabled

    fcfs_met = met_fraction(fcfs, deadlines)
    edf_met = met_fraction(edf, deadlines)

    print(f"\n=== Deadline SLO, burst {NUM_REQUESTS} x {PROMPT_LEN} tokens, "
          f"pool {POOL_BLOCKS} blocks x {BLOCK_SIZE} ({SMOKE and 'smoke' or 'full'}) ===")
    print(f"  FCFS SLO-met fraction: {fcfs_met:.2f}")
    print(f"  EDF  SLO-met fraction: {edf_met:.2f}")
    print(f"  finish-time spread: {finish[-1] / finish[0]:.1f}x")

    # the pool actually deferred admission — the burst finished in waves,
    # not all at once; otherwise the comparison is vacuous
    assert finish[-1] > 2.0 * finish[0], "no queuing: pool not oversubscribed"
    assert fcfs_met < 1.0, "FCFS met every deadline; trace is not adversarial"
    assert edf_met > fcfs_met, (
        f"EDF met fraction {edf_met:.2f} does not beat FCFS {fcfs_met:.2f}"
    )
