"""Figure 12b — decode time decomposition (PQ compute, LLM compute,
communication, end-to-end).

Paper: the PQ-code communication can be overlapped, the top-k fetch is
partially served by the GPU cache, so the optimised end-to-end decode time is
smaller than the sum of its components and remains stable as the input grows.
"""

import pytest

from conftest import print_series

SEQ_LENS = (16384, 32768, 65536, 131072)
CACHE_HIT_RATE = 0.6


def test_decode_time_decomposition(benchmark, latency_model):
    def run():
        rows = {}
        for seq_len in SEQ_LENS:
            unoptimised = latency_model.decode_decomposition(seq_len, "pqcache",
                                                             cache_hit_rate=0.0)
            optimised_tpot = latency_model.tpot(seq_len, "pqcache",
                                                cache_hit_rate=CACHE_HIT_RATE)
            rows[seq_len] = {
                "pq_compute": unoptimised["pq_compute"],
                "llm_compute": unoptimised["llm_compute"],
                "communication": unoptimised["overlappable_comm"]
                + unoptimised["blocking_comm"],
                "end_to_end_optimised": optimised_tpot,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 12b (decode time decomposition, seconds)", rows)

    for row in rows.values():
        components_sum = (row["pq_compute"] + row["llm_compute"]
                          + row["communication"])
        # Overlap + GPU cache make the end-to-end time smaller than the sum.
        assert row["end_to_end_optimised"] < components_sum
    # Decoding time remains stable with increasing input length.
    growth = rows[131072]["end_to_end_optimised"] / rows[32768]["end_to_end_optimised"]
    assert growth < 1.3
