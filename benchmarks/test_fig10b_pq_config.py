"""Figure 10b — sensitivity to the PQ configuration (m partitions x b bits).

Paper: PQCache is robust across configurations with the same m*b product;
2x6 is the default, only extreme settings (e.g. 8x2) degrade.
"""

import pytest

from conftest import LONGBENCH_SEQ_LEN, make_budget, print_series
from repro.baselines import build_policy
from repro.core import PQCacheConfig
from repro.workloads import multi_hop_qa, single_fact_qa

CONFIGS = ((1, 8), (2, 6), (4, 4), (8, 2))


def test_pq_configuration_sweep(benchmark, harness):
    budget = make_budget(token_ratio=0.1, comm_ratio=1.0 / 128.0)
    datasets = [single_fact_qa(num_samples=3, seq_len=LONGBENCH_SEQ_LEN, seed=3,
                               name="qasper-like"),
                multi_hop_qa(num_samples=3, seq_len=LONGBENCH_SEQ_LEN, seed=4,
                             name="hotpotqa-like")]

    def run():
        scores = {}
        for m, b in CONFIGS:
            config = PQCacheConfig(num_partitions=m, num_bits=b,
                                   max_kmeans_iters=10, gpu_cache_tokens=0)
            factory = lambda cfg=config: build_policy("pqcache", budget, pq_config=cfg)
            scores[f"{m}x{b}"] = {
                ds.name: harness.evaluate(factory, ds).score for ds in datasets
            }
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 10b (PQ configuration m x b)", scores)

    default = scores["2x6"]
    best = {ds: max(row[ds] for row in scores.values()) for ds in default}
    # The default configuration is within a modest margin of the best one.
    for ds in default:
        assert default[ds] >= best[ds] - 25.0
