"""Figure 1 — KVCache memory size and PCIe Gen 5 transfer latency.

Paper: KVCache grows linearly with batch size and sequence length; a 7B model
at 128K context and batch 128 needs ~1 TB, exceeding an 8xA100 node (640 GB),
and even transferring it once over PCIe 5.0 takes seconds.
"""

import pytest

from conftest import print_series
from repro.analysis import KVCacheCostModel
from repro.llm import ModelConfig
from repro.memory import InterconnectSpec

SEQ_LENS = (8 * 1024, 32 * 1024, 128 * 1024)
BATCHES = (8, 32, 128)


def _models():
    mha_7b = ModelConfig(num_layers=32, hidden_dim=4096, num_heads=32,
                         num_kv_heads=32, ffn_dim=11008, name="7b")
    mha_13b = ModelConfig(num_layers=40, hidden_dim=5120, num_heads=40,
                          num_kv_heads=40, ffn_dim=13824, name="13b")
    return {"7b": mha_7b, "13b": mha_13b}


def test_kvcache_memory_and_transfer(benchmark):
    link = InterconnectSpec.pcie5_x16()

    def run():
        rows = []
        for name, model in _models().items():
            rows.extend(KVCacheCostModel(model, link).sweep(SEQ_LENS, BATCHES))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {
        f"{r['model']}-bs{r['batch_size']}-s{r['seq_len']//1024}k":
            {"GiB": r["kvcache_gib"], "transfer_s": r["transfer_seconds"]}
        for r in rows
    }
    print_series("Figure 1 (KVCache memory / PCIe 5.0 transfer)", series)

    by_key = {(r["model"], r["batch_size"], r["seq_len"]): r for r in rows}
    headline = by_key[("7b", 128, 128 * 1024)]
    assert headline["kvcache_gib"] > 640            # exceeds 8xA100
    assert headline["kvcache_gib"] * 2 ** 30 > 0.9e12   # ~1 TB as in the paper
    assert headline["transfer_seconds"] > 1.0
    # 13B model needs more memory than 7B at the same setting.
    assert by_key[("13b", 32, 32 * 1024)]["kvcache_gib"] > \
        by_key[("7b", 32, 32 * 1024)]["kvcache_gib"]
    # Linear growth in both batch size and sequence length.
    assert by_key[("7b", 32, 32 * 1024)]["kvcache_gib"] == pytest.approx(
        4 * by_key[("7b", 8, 32 * 1024)]["kvcache_gib"])
