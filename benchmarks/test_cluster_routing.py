"""Cluster routing benchmark: cache-aware vs round-robin turn TTFT.

The tentpole serving scenario of the multi-worker cluster: several users hold
multi-turn conversations against a 4-worker fleet, arrivals interleaved by a
seeded Poisson trace (:func:`repro.workloads.poisson_arrivals`).  Every turn
embeds the full history, so a turn's prefix lives in exactly one worker's
cache — the one that served the previous turn.  Cache-aware routing lands
follow-up turns there and reuses the chain; round-robin scatters them into
cold prefills.  The benchmark asserts a **≥3× simulated mean TTFT
improvement on follow-up turns** (the issue's acceptance floor), with
byte-identical tokens between the two placements.

A second scenario exercises ``migrate_on_miss``: a conversation whose chain
was spilled to its owner's disk tier is routed to a less-loaded worker, the
chain ships NVMe→PCIe, and the transfer's bytes and simulated seconds are
billed to the target's clock and surfaced in the fleet metrics.

Run with ``-s`` to see the per-placement table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PQCacheConfig
from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)
from repro.serve.cluster import ClusterFrontend
from repro.workloads import multi_turn_conversation, poisson_arrivals

from conftest import make_budget

NUM_WORKERS = 4
NUM_USERS = 3
NUM_TURNS = 3
SYSTEM_TOKENS = 2048
TURN_TOKENS = 64
ANSWER_TOKENS = 8
TTFT_IMPROVEMENT_FLOOR = 3.0


@pytest.fixture(scope="module")
def substrate() -> TransformerLM:
    config = ModelConfig(
        num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
        ffn_dim=128, vocab_size=512, max_context=65536, name="cluster-bench",
    )
    return TransformerLM(config, seed=0)


@pytest.fixture(scope="module")
def trace():
    """Poisson arrival order for NUM_USERS × NUM_TURNS conversation turns.

    The generator emits an unbounded per-user turn count; events beyond a
    user's last conversation turn are dropped, and the trace is extended
    until every user reaches NUM_TURNS.
    """
    events = [e for e in poisson_arrivals(64, rate=2.0, num_users=NUM_USERS,
                                          seed=13)
              if e.turn < NUM_TURNS]
    seen: dict[int, int] = {}
    kept = []
    for event in events:
        if all(seen.get(u, 0) >= NUM_TURNS for u in range(NUM_USERS)):
            break
        kept.append(event)
        seen[event.user] = seen.get(event.user, 0) + 1
    assert all(seen.get(u, 0) == NUM_TURNS for u in range(NUM_USERS))
    return kept


def make_cluster(substrate, placement, **kwargs) -> ClusterFrontend:
    return ClusterFrontend(
        substrate,
        num_workers=NUM_WORKERS,
        placement=placement,
        scheduler_config=SchedulerConfig(max_prefill_chunk_tokens=512),
        **kwargs,
    )


def pq_spec() -> PolicySpec:
    return PolicySpec.named(
        "pqcache",
        make_budget(token_ratio=0.2, comm_ratio=1.0 / 64.0),
        pq_config=PQCacheConfig(max_kmeans_iters=8, gpu_cache_tokens=512),
    )


def replay(cluster: ClusterFrontend, trace) -> dict:
    """Serve every trace event in arrival order; one drain per event so a
    turn's prefix chain is cached before the user's next turn arrives."""
    conversations = {
        user: multi_turn_conversation(
            num_turns=NUM_TURNS, system_tokens=SYSTEM_TOKENS,
            turn_tokens=TURN_TOKENS, seed=user,
        )
        for user in range(NUM_USERS)
    }
    histories = {user: conversations[user].initial_history()
                 for user in range(NUM_USERS)}
    outputs: dict[str, object] = {}
    turn_ttft: dict[int, list[float]] = {}
    for event in trace:
        conversation = conversations[event.user]
        prompt = conversation.prompt_for_turn(event.turn, histories[event.user])
        request_id = f"u{event.user}t{event.turn}"
        cluster.submit(Request(
            request_id=request_id,
            prompt_ids=prompt,
            sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
            policy_spec=pq_spec(),
        ))
        out = cluster.run()[request_id]
        outputs[request_id] = out
        histories[event.user] = conversation.extend_history(
            prompt, out.token_ids)
        turn_ttft.setdefault(event.turn, []).append(out.metrics.ttft)
    return {"outputs": outputs, "turn_ttft": turn_ttft}


def test_cache_aware_beats_round_robin_on_followup_turns(substrate, trace):
    routed = replay(make_cluster(substrate, "cache_aware"), trace)
    scattered = replay(make_cluster(substrate, "round_robin"), trace)

    # placement never changes the bytes
    for request_id, out in routed["outputs"].items():
        other = scattered["outputs"][request_id]
        assert out.token_ids == other.token_ids
        assert np.array_equal(out.logits, other.logits)

    followup = lambda result: [  # noqa: E731
        t for turn, ttfts in result["turn_ttft"].items() if turn >= 1
        for t in ttfts
    ]
    routed_mean = float(np.mean(followup(routed)))
    scattered_mean = float(np.mean(followup(scattered)))
    improvement = scattered_mean / routed_mean

    print(f"\n=== Cluster routing, {NUM_WORKERS} workers, {NUM_USERS} users × "
          f"{NUM_TURNS} turns (system {SYSTEM_TOKENS} tokens) ===")
    for turn in sorted(routed["turn_ttft"]):
        ra = np.mean(routed["turn_ttft"][turn])
        rr = np.mean(scattered["turn_ttft"][turn])
        print(f"  turn {turn}: cache_aware {ra:.6f}s   "
              f"round_robin {rr:.6f}s   ({rr / ra:.1f}x)")
    print(f"  follow-up-turn mean TTFT: cache_aware {routed_mean:.6f}s, "
          f"round_robin {scattered_mean:.6f}s → {improvement:.1f}x "
          f"(floor {TTFT_IMPROVEMENT_FLOOR}x)")

    assert improvement >= TTFT_IMPROVEMENT_FLOOR, (
        f"cache-aware routing improved follow-up-turn TTFT only "
        f"{improvement:.1f}x over round-robin "
        f"(< {TTFT_IMPROVEMENT_FLOOR}x floor)"
    )


def test_migration_bytes_are_billed_and_surfaced(substrate):
    """A spilled chain shipped across workers charges the target's timeline
    and shows up in cluster + fleet metrics."""
    cluster = make_cluster(substrate, "cache_aware", migrate_on_miss=True)
    conversation = multi_turn_conversation(
        num_turns=2, system_tokens=SYSTEM_TOKENS, turn_tokens=TURN_TOKENS,
        seed=9,
    )
    history = conversation.initial_history()
    prompt_1 = conversation.prompt_for_turn(0, history)
    cluster.submit(Request(request_id="t0", prompt_ids=prompt_1,
                           sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
                           policy_spec=pq_spec()))
    out_1 = cluster.run()["t0"]
    history = conversation.extend_history(prompt_1, out_1.token_ids)

    owner = cluster.worker_of("t0")
    cluster.release("t0")
    spilled = owner.prefix_cache.evict(owner.prefix_cache.num_resident)
    assert owner.prefix_cache.num_spilled == spilled > 0

    # Load the owner so the least-loaded fallback picks a different worker.
    rng = np.random.default_rng(3)
    owner.submit(Request(
        request_id="filler",
        prompt_ids=rng.integers(4, 512, size=256).tolist(),
        sampling=SamplingParams(max_new_tokens=64),
    ))

    clock_before = {w.worker_id: w.metrics.clock for w in cluster.workers}
    prompt_2 = conversation.prompt_for_turn(1, history)
    cluster.submit(Request(request_id="t1", prompt_ids=prompt_2,
                           sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
                           policy_spec=pq_spec()))
    placement = cluster.placements[-1]
    assert placement.migrate_from == owner.worker_id
    assert placement.worker_id != owner.worker_id
    out_2 = cluster.run()["t1"]

    migration = cluster.metrics
    target = cluster.workers[placement.worker_id]
    fleet = cluster.fleet_metrics()
    print(f"\n=== Migration billing ({migration.migrated_blocks} blocks "
          f"w{owner.worker_id} → w{placement.worker_id}) ===")
    print(f"  PCIe bytes: {migration.migrated_kv_bytes:.0f}   "
          f"NVMe bytes: {migration.migrated_disk_bytes:.0f}")
    print(f"  simulated transfer: {migration.migration_seconds:.6f}s   "
          f"turn-2 TTFT: {out_2.metrics.ttft:.6f}s")

    assert migration.migrations == 1
    assert migration.migrated_kv_bytes > 0
    assert migration.migrated_disk_bytes > 0
    assert migration.migration_seconds > 0
    # billed to the target's clock (hence the routed request's TTFT)...
    assert (target.metrics.clock - clock_before[target.worker_id]
            >= migration.migration_seconds)
    # ...and surfaced in the fleet aggregate
    assert fleet.swap_seconds >= migration.migration_seconds
    # the shipped chain actually served the turn
    assert out_2.metrics.cached_prefix_tokens > 0
