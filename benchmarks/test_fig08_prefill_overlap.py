"""Figure 8 — one-layer prefill compute vs offload vs clustering time.

Paper: per-layer GPU compute grows quadratically with the prompt length while
KVCache offloading and K-Means clustering grow linearly, so beyond a few
thousand tokens the compute fully hides both, enabling overhead-free PQ
construction.  The adaptive iteration budget (Eq. 3) grows accordingly.
"""

import pytest

from conftest import print_series
from repro.core import AdaptiveIterationPlanner

SEQ_LENS = (4096, 16384, 65536, 131072)


def test_prefill_component_scaling(benchmark, latency_model):
    def run():
        rows = {}
        for seq_len in SEQ_LENS:
            rows[seq_len] = latency_model.prefill_decomposition(seq_len)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 8 (per-layer prefill time decomposition, seconds)", rows)

    # Crossover: computation dominates offload and clustering for long prompts.
    longest = rows[SEQ_LENS[-1]]
    assert longest["compute"] > longest["offload"]
    assert longest["compute"] > longest["clustering"]
    # Quadratic vs linear growth rates.
    compute_growth = rows[131072]["compute"] / rows[16384]["compute"]
    offload_growth = rows[131072]["offload"] / rows[16384]["offload"]
    assert compute_growth > 3 * offload_growth

    # Adaptive iteration budget grows with the sequence length (Eq. 3).
    planner = AdaptiveIterationPlanner.from_device_model(
        compute_seconds_fn=latency_model.layer_prefill_compute_seconds,
        clustering_seconds_per_point=2e-8,
        max_iterations=200,
    )
    budgets = {s: planner.max_iterations_for(s) for s in SEQ_LENS}
    print_series("Adaptive K-Means iteration budget (Eq. 3)", budgets)
    assert budgets[131072] >= budgets[4096]
