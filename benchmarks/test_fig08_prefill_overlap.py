"""Figure 8 — prefill compute vs offload vs clustering, and their overlap.

Paper: per-layer GPU compute grows quadratically with the prompt length while
KVCache offloading and K-Means clustering grow linearly, so beyond a few
thousand tokens the compute fully hides both, enabling overhead-free PQ
construction.  The adaptive iteration budget (Eq. 3) grows accordingly.

Rebuilt on the chunked-prefill pipeline: the overlap claim is now exercised
through :meth:`LatencyModel.chunked_prefill_timeline`, which schedules the
per-chunk offload / sketch-clustering / stream-encode / refine tasks as
dependency-linked :class:`Task` objects on serial GPU/D2H/CPU resources
(Figure 7's pipeline view).  The asserted property is the paper's headline:
the overlapped makespan stays strictly below the sequential sum of compute +
offload + clustering, and construction is almost entirely hidden behind
compute.

Smoke mode (the default, used by CI and plain ``pytest``) runs one 64k
configuration; set ``REPRO_FIG08_BENCH=full`` for the whole grid.
"""

import os

import pytest

from conftest import print_series
from repro.core import AdaptiveIterationPlanner
from repro.memory import Resource

SEQ_LENS = (4096, 16384, 65536, 131072)

#: (seq_len, chunk_tokens) grid for the overlap study.
OVERLAP_CONFIGS_FULL = ((16384, 2048), (65536, 4096), (65536, 8192), (131072, 8192))
OVERLAP_CONFIG_SMOKE = (65536, 8192)


def _overlap_configs():
    if os.environ.get("REPRO_FIG08_BENCH", "smoke") == "full":
        return OVERLAP_CONFIGS_FULL
    return (OVERLAP_CONFIG_SMOKE,)


def test_prefill_component_scaling(benchmark, latency_model):
    def run():
        rows = {}
        for seq_len in SEQ_LENS:
            rows[seq_len] = latency_model.prefill_decomposition(seq_len)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 8 (per-layer prefill time decomposition, seconds)", rows)

    # Crossover: computation dominates offload and clustering for long prompts.
    longest = rows[SEQ_LENS[-1]]
    assert longest["compute"] > longest["offload"]
    assert longest["compute"] > longest["clustering"]
    # Quadratic vs linear growth rates.
    compute_growth = rows[131072]["compute"] / rows[16384]["compute"]
    offload_growth = rows[131072]["offload"] / rows[16384]["offload"]
    assert compute_growth > 3 * offload_growth

    # Adaptive iteration budget grows with the sequence length (Eq. 3).
    planner = AdaptiveIterationPlanner.from_device_model(
        compute_seconds_fn=latency_model.layer_prefill_compute_seconds,
        clustering_seconds_per_point=2e-8,
        max_iterations=200,
    )
    budgets = {s: planner.max_iterations_for(s) for s in SEQ_LENS}
    print_series("Adaptive K-Means iteration budget (Eq. 3)", budgets)
    assert budgets[131072] >= budgets[4096]


def test_chunked_prefill_overlap(benchmark, latency_model):
    """The chunked pipeline's makespan vs sequential execution (Figure 7/8)."""

    def run():
        rows = {}
        for seq_len, chunk_tokens in _overlap_configs():
            chunks = [chunk_tokens] * (seq_len // chunk_tokens)
            timeline = latency_model.chunked_prefill_timeline(
                chunks, "pqcache", iterations=16
            )
            gpu = timeline.resource_busy_time(Resource.GPU)
            d2h = timeline.resource_busy_time(Resource.D2H)
            cpu = timeline.resource_busy_time(Resource.CPU)
            rows[f"s={seq_len}, chunk={chunk_tokens}"] = {
                "makespan_s": timeline.makespan,
                "compute_s": gpu,
                "offload_s": d2h,
                "construction_s": cpu,
                "sequential_s": gpu + d2h + cpu,
                "hidden_frac": 1.0 - timeline.makespan / (gpu + d2h + cpu),
                "tasks": len(timeline),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Chunked prefill overlap (Figure 7/8 pipeline)", rows)

    for name, row in rows.items():
        # Headline claim: genuinely overlapped, strictly below sequential.
        assert row["makespan_s"] < row["sequential_s"], name
        # Offload + construction are almost fully hidden behind compute.
        assert row["makespan_s"] < 1.05 * row["compute_s"], name
        # And the schedule cannot beat its serial-GPU lower bound.
        assert row["makespan_s"] >= row["compute_s"], name


def test_chunked_overlap_matches_monolithic_model(latency_model):
    """Chunking the prefill does not change the modelled total makespan."""
    seq_len, chunk_tokens = OVERLAP_CONFIG_SMOKE
    chunks = [chunk_tokens] * (seq_len // chunk_tokens)
    chunked = latency_model.chunked_prefill_timeline(
        chunks, "pqcache", iterations=16
    ).makespan
    mono = latency_model.prefill_timeline(seq_len, "pqcache", iterations=16).makespan
    assert chunked == pytest.approx(mono, rel=0.1)
