"""Preemption-pressure benchmark: an oversubscribed KV pool must degrade
gracefully, not fail.

The pool is sized to roughly **half** the concurrent working set (2× more
concurrent request demand than blocks), which forces the scheduler through
its whole pressure repertoire — prefix-chain spill to the disk tier, victim
preemption, swap-out/swap-in (or drop-and-recompute with deterministic
replay).  The benchmark asserts the tentpole acceptance criterion:

* every request completes (no :class:`~repro.errors.CapacityError`),
* every output — tokens *and* per-step logits — is byte-identical to the
  same schedule served by an engine with an unbounded pool,
* the swap traffic is visible in :class:`~repro.serve.EngineMetrics`,

under **both** ``preemption_mode="swap"`` and ``"recompute"``, and prints a
swap-vs-recompute comparison (preemptions, moved bytes, simulated TPOT).

Smoke mode (default, CI): one pool size per mode.  Set
``REPRO_PREEMPT_BENCH=full`` for a pool-size sweep.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import PQCacheConfig
from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)

from conftest import make_budget

BLOCK_SIZE = 32
PROMPT_TOKENS = 256
ANSWER_TOKENS = 8
NUM_REQUESTS = 8


@pytest.fixture(scope="module")
def substrate() -> TransformerLM:
    config = ModelConfig(
        num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
        ffn_dim=128, vocab_size=512, max_context=65536, name="preempt-bench",
    )
    return TransformerLM(config, seed=0)


def make_requests(substrate: TransformerLM) -> "list[Request]":
    rng = np.random.default_rng(11)
    requests = []
    for index in range(NUM_REQUESTS):
        spec = None
        if index % 2:
            spec = PolicySpec.named(
                "pqcache",
                make_budget(token_ratio=0.2, comm_ratio=1.0 / 64.0),
                pq_config=PQCacheConfig(max_kmeans_iters=6, gpu_cache_tokens=512),
            )
        requests.append(
            Request(
                prompt_ids=rng.integers(
                    4, substrate.config.vocab_size, size=PROMPT_TOKENS
                ).tolist(),
                request_id=f"pressure-{index}",
                sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
                policy_spec=spec,
            )
        )
    return requests


def run_schedule(substrate, pool_blocks, mode):
    engine = InferenceEngine(
        substrate,
        scheduler_config=SchedulerConfig(
            max_batch_size=NUM_REQUESTS,
            max_prefill_chunk_tokens=128,
            preemption_mode=mode,
        ),
        enable_prefix_caching=True,
        kv_block_size=BLOCK_SIZE,
        kv_pool_blocks=pool_blocks,
        max_retained_outputs=0,
    )
    finals = engine.run(make_requests(substrate))
    return finals, engine


def working_set_blocks() -> int:
    per_request = -(-(PROMPT_TOKENS + ANSWER_TOKENS + 1) // BLOCK_SIZE)
    return NUM_REQUESTS * per_request


def test_oversubscribed_pool_completes_byte_identical(substrate):
    """2× oversubscription: all requests finish, outputs match ground truth."""
    reference, _ = run_schedule(substrate, None, "swap")
    pools = [working_set_blocks() // 2]
    if os.environ.get("REPRO_PREEMPT_BENCH", "smoke") == "full":
        pools = sorted({working_set_blocks() // d for d in (2, 3, 4)})

    rows = []
    for pool in pools:
        for mode in ("swap", "recompute"):
            finals, engine = run_schedule(substrate, pool, mode)
            assert len(finals) == NUM_REQUESTS
            for request_id, ref in reference.items():
                out = finals[request_id]
                assert out.token_ids == ref.token_ids, (pool, mode, request_id)
                assert np.array_equal(out.logits, ref.logits), (
                    pool, mode, request_id,
                )
            metrics = engine.metrics
            assert metrics.preemptions > 0, (pool, mode)
            if mode == "swap":
                # Swap traffic is visible; resumes either restore stored
                # bytes or — when shared-block pins / tier pressure degraded
                # a parked request — replay through the recompute path.
                assert metrics.swap_out_bytes > 0
                assert (
                    metrics.swap_in_bytes > 0
                    or metrics.preemptions_recompute > 0
                )
            else:
                assert metrics.preemptions_recompute > 0
            tpots = [
                finals[rid].metrics.tpot for rid in finals
                if finals[rid].metrics.tpot is not None
            ]
            rows.append({
                "pool": pool,
                "mode": mode,
                "preemptions": metrics.preemptions,
                "swap_out_mb": metrics.swap_out_bytes / 1e6,
                "spill_out_mb": metrics.spill_out_bytes / 1e6,
                "swap_s": metrics.swap_seconds,
                "mean_tpot_ms": 1e3 * float(np.mean(tpots)),
                "e2e_s": metrics.clock,
            })

    print()
    print(
        f"preemption pressure: {NUM_REQUESTS} requests x {PROMPT_TOKENS} "
        f"tokens, working set {working_set_blocks()} blocks"
    )
    header = (
        f"{'pool':>5} {'mode':>10} {'preempt':>8} {'swapMB':>8} "
        f"{'spillMB':>8} {'swap_s':>9} {'tpot_ms':>8} {'e2e_s':>7}"
    )
    print(header)
    for row in rows:
        print(
            f"{row['pool']:>5} {row['mode']:>10} {row['preemptions']:>8} "
            f"{row['swap_out_mb']:>8.2f} {row['spill_out_mb']:>8.2f} "
            f"{row['swap_s']:>9.5f} {row['mean_tpot_ms']:>8.3f} "
            f"{row['e2e_s']:>7.3f}"
        )
