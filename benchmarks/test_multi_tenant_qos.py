"""Multi-tenant QoS benchmark: SLO isolation under bursty oversubscription.

Two tenants share one bounded engine:

* ``chat`` — the foreground tenant: priority 2, weight 4, a steady seeded
  Poisson trace of interactive requests with a TTFT SLO;
* ``batch`` — the background tenant: priority 0, weight 1, bursty arrivals
  (:func:`repro.workloads.bursty_arrivals`) whose working set oversubscribes
  the KV pool roughly 2x at each burst peak.

Three replays of the same foreground trace — unloaded, with the background
trace merged in, and with the background *doubled* — must show the QoS
machinery (priority admission, weighted-fair chunk budgets, class-ordered
preemption, proactive swap-out) holding the foreground's p99 TTFT within
**1.5x of its unloaded baseline** (the issue's acceptance floor) while the
background tenant still makes progress.  The swap / recompute / proactive /
shed breakdown of every run is printed alongside the per-class latency
table.

``REPRO_QOS_BENCH=smoke`` (CI) runs the smaller trace and only the
baseline + doubled-background pair.  Run with ``-s`` for the tables.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    InferenceEngine,
    Request,
    RequestQoS,
    SamplingParams,
    SchedulerConfig,
)
from repro.workloads import bursty_arrivals, merge_arrivals, poisson_arrivals, tag_arrivals

SMOKE = os.environ.get("REPRO_QOS_BENCH", "") == "smoke"

TTFT_SLO_FACTOR = 1.5      # acceptance floor: fg p99 TTFT vs unloaded baseline

BLOCK_SIZE = 16
POOL_BLOCKS = 48           # ~768 tokens resident; a burst peak wants ~2x that

FG_REQUESTS = 10
FG_PROMPT = 320            # 20 blocks
FG_NEW = 8
FG_RATE = 500.0            # arrivals per simulated second (~2 ms apart)
FG_QOS = RequestQoS(priority=2, tenant="chat", weight=4.0)

BG_BURSTS = 2 if SMOKE else 4
BG_BURST_SIZE = 10         # 10 x ~10 blocks ≈ 2x POOL_BLOCKS per burst
BG_PROMPT = 128
BG_NEW = 10
BG_QOS = RequestQoS(priority=0, tenant="batch", weight=1.0)


@pytest.fixture(scope="module")
def substrate() -> TransformerLM:
    config = ModelConfig(
        num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
        ffn_dim=128, vocab_size=512, max_context=65536, name="qos-bench",
    )
    return TransformerLM(config, seed=0)


def make_engine(substrate) -> InferenceEngine:
    return InferenceEngine(
        substrate,
        scheduler_config=SchedulerConfig(
            max_batch_size=3,
            max_prefill_chunk_tokens=512,
            proactive_swap_free_fraction=1.0,
        ),
        enable_prefix_caching=True,
        kv_block_size=BLOCK_SIZE,
        kv_pool_blocks=POOL_BLOCKS,
        max_retained_outputs=0,
    )


def fg_trace():
    return tag_arrivals(
        poisson_arrivals(FG_REQUESTS, rate=FG_RATE, seed=5),
        tenant=FG_QOS.tenant, priority=FG_QOS.priority,
    )


def bg_trace(doubled: bool):
    # doubling the burst *size* (not the count) keeps the burst onsets on
    # the same timeline, so the doubled load intensifies the very bursts
    # that overlap the foreground trace instead of appending quiet-period
    # bursts after it
    size = BG_BURST_SIZE * 2 if doubled else BG_BURST_SIZE
    return tag_arrivals(
        bursty_arrivals(BG_BURSTS, size,
                        burst_rate=200.0, within_burst_rate=20000.0, seed=7),
        tenant=BG_QOS.tenant, priority=BG_QOS.priority,
    )


def make_request(event, index: int, rng: np.random.Generator) -> Request:
    fg = event.tenant == FG_QOS.tenant
    plen = FG_PROMPT if fg else BG_PROMPT
    return Request(
        request_id=f"{event.tenant}-{index}",
        prompt_ids=rng.integers(4, 512, size=plen).tolist(),
        sampling=SamplingParams(max_new_tokens=FG_NEW if fg else BG_NEW),
        qos=FG_QOS if fg else BG_QOS,
    )


def replay(engine: InferenceEngine, events) -> dict:
    """Serve the trace on the engine's simulated clock.

    The clock fast-forwards over idle gaps; an event is submitted as soon
    as the clock passes its arrival time, so queueing delay shows up in
    the per-request TTFT.
    """
    rng = np.random.default_rng(11)
    requests = [make_request(event, i, rng) for i, event in enumerate(events)]
    finals: dict[str, object] = {}
    i = 0
    while i < len(events) or engine.has_unfinished:
        if not engine.has_unfinished and i < len(events):
            engine.metrics.clock = max(engine.metrics.clock, events[i].time)
        while i < len(events) and events[i].time <= engine.metrics.clock:
            engine.submit(requests[i])
            i += 1
        for output in engine.step():
            if output.finished:
                finals[output.request_id] = output
    return finals


def ttfts(finals, tenant: str) -> np.ndarray:
    values = [out.metrics.ttft for out in finals.values()
              if out.metrics.tenant == tenant and out.metrics.ttft is not None]
    return np.asarray(values, dtype=np.float64)


def tenant_ttft_p99(engine: InferenceEngine, tenant: str) -> float:
    """Streaming p99 from the engine's own per-tenant quantile digest —
    the metrics layer is the source of truth, not a raw-sample rebuild."""
    value = engine.metrics.per_tenant[tenant].ttft.percentile(99)
    assert value is not None
    return value


def describe_run(label: str, engine: InferenceEngine, finals) -> None:
    metrics = engine.metrics
    print(f"  {label}:")
    for tenant in (FG_QOS.tenant, BG_QOS.tenant):
        bucket = metrics.per_tenant.get(tenant)
        if bucket is None or bucket.ttft.count == 0:
            continue
        print(f"    {tenant:5s} TTFT p50 {bucket.ttft.percentile(50) * 1e6:8.1f}us   "
              f"p99 {bucket.ttft.percentile(99) * 1e6:8.1f}us   "
              f"({ttfts(finals, tenant).size} finished)")
    print(f"    preemptions: swap {metrics.preemptions_swap}, "
          f"recompute {metrics.preemptions_recompute}, "
          f"proactive swap-outs {metrics.proactive_swap_outs}, "
          f"shed {metrics.requests_shed}")
    for key in sorted(metrics.per_class):
        bucket = metrics.per_class[key].as_dict()
        mean_ttft = bucket["mean_ttft"]
        print(f"    class {key}: finished {bucket['requests_finished']}, "
              f"preemptions {bucket['preemptions']}, "
              f"mean TTFT {mean_ttft * 1e6:.1f}us")


def test_foreground_p99_ttft_survives_background_bursts(substrate):
    baseline_engine = make_engine(substrate)
    baseline = replay(baseline_engine, fg_trace())
    fg_baseline = ttfts(baseline, FG_QOS.tenant)
    assert fg_baseline.size == FG_REQUESTS

    # the streaming digest must agree with an exact rebuild from the raw
    # per-request samples — the SLO floor below leans on the digest alone
    baseline_p99 = tenant_ttft_p99(baseline_engine, FG_QOS.tenant)
    exact = float(np.percentile(fg_baseline, 99, method="nearest"))
    assert baseline_p99 == pytest.approx(exact, rel=0.05)

    # smoke keeps CI fast: baseline + the doubled-background run only
    loads = [("2x-background", True)] if SMOKE else [
        ("1x-background", False), ("2x-background", True)]

    print(f"\n=== Multi-tenant QoS, pool {POOL_BLOCKS} blocks x "
          f"{BLOCK_SIZE} tokens, chat {FG_REQUESTS} reqs, "
          f"batch {BG_BURSTS}(x2) bursts x {BG_BURST_SIZE} ===")
    describe_run("unloaded baseline", baseline_engine, baseline)

    floor = TTFT_SLO_FACTOR * baseline_p99
    for label, doubled in loads:
        engine = make_engine(substrate)
        finals = replay(engine, merge_arrivals(fg_trace(), bg_trace(doubled)))
        describe_run(label, engine, finals)

        fg = ttfts(finals, FG_QOS.tenant)
        bg = ttfts(finals, BG_QOS.tenant)
        fg_p99 = tenant_ttft_p99(engine, FG_QOS.tenant)
        ratio = fg_p99 / baseline_p99
        print(f"    → chat p99 ratio vs baseline: {ratio:.2f}x "
              f"(floor {TTFT_SLO_FACTOR}x)")

        assert fg.size == FG_REQUESTS, f"{label}: foreground request lost"
        assert bg.size > 0, f"{label}: background starved completely"
        assert fg_p99 <= floor, (
            f"{label}: foreground p99 TTFT {fg_p99 * 1e6:.1f}us exceeds "
            f"{TTFT_SLO_FACTOR}x unloaded baseline "
            f"({baseline_p99 * 1e6:.1f}us)"
        )
        # the background actually pressured the pool — otherwise the SLO
        # assertion is vacuous
        assert engine.metrics.preemptions + engine.metrics.proactive_swap_outs > 0, (
            f"{label}: no preemption pressure; the trace is not oversubscribed"
        )
