"""Engine throughput + decode-step microbenchmarks.

Part 1 — serving baseline for scheduler PRs: runs the same PQCache-policy
traffic (8 requests, mixed 256/384/512-token prompts, 4 tokens each) through
the ``InferenceEngine`` at batch sizes 1, 4 and 8, and records:

* wall-clock requests/s of the NumPy substrate (the `benchmark` timing),
* simulated requests/s and mean TPOT on the paper-testbed clock.

Later scheduler/batching PRs should move the wall-clock number without
changing the simulated numbers (which only depend on the latency model) or
the generated tokens (batching must stay transparent).

Part 2 — decode-step microbenchmark for the batched ADC hot path: per decode
token, PQCache pays (a) ADC scoring of every middle token plus per-head top-k
selection (the retrieval stage the vectorization targets) and (b) selective
attention over the chosen tokens.  ``test_decode_step_microbenchmark`` times
both stages through the vectorized kernels and through a faithful
reimplementation of the seed's per-head Python loops, asserts the two paths
pick byte-identical tokens, and asserts the retrieval stage is >= 3x faster
at (h_kv=8, seq_len=16384).  The attention stage is reported for context: it
is dominated by the key/value gather, which both paths pay identically, so it
sits near parity by construction.

Smoke mode (the default, used by CI and plain ``pytest``) runs the single
asserted (8, 16384) configuration; set ``REPRO_DECODE_BENCH=full`` for the
whole h_kv x seq_len grid.

Part 3 — chunked-prefill TTFT benchmark: a short prompt submitted behind a
16k-token prefill.  Without chunking the short request's TTFT includes the
whole 16k makespan (head-of-line blocking); with chunking
(``max_prefill_chunk_tokens``) its prefill interleaves between the long
prompt's chunks and its simulated TTFT must improve by >= 2x (it improves by
orders of magnitude in practice), while the long prompt's own prefill charge
stays identical thanks to the telescoping chunk FLOP model.  The substrate
really processes all 16k tokens through the chunked pipeline — only the
*clock* is simulated — so a deliberately micro model geometry keeps the
NumPy wall-clock tolerable.
"""

import os
import time

import numpy as np
import pytest

from conftest import make_budget, print_series

from repro.core import PQCacheConfig, PQCacheManager
from repro.llm import KVCache, ModelConfig, TransformerLM
from repro.llm.attention import decode_attention
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)
from repro.utils import softmax, topk_indices

BATCH_SIZES = (1, 4, 8)
PROMPT_LENS = (256, 384, 512, 256, 384, 512, 256, 384)
MAX_NEW_TOKENS = 4


@pytest.fixture(scope="module")
def substrate():
    return TransformerLM(ModelConfig.tiny(), seed=0)


def _make_requests(config, budget):
    rng = np.random.default_rng(17)
    return [
        Request(
            prompt_ids=rng.integers(4, config.vocab_size, size=n).tolist(),
            sampling=SamplingParams(max_new_tokens=MAX_NEW_TOKENS),
            policy_spec=PolicySpec.named(
                "pqcache", budget,
            ),
        )
        for n in PROMPT_LENS
    ]


def test_engine_throughput(benchmark, substrate):
    budget = make_budget(token_ratio=0.2, comm_ratio=1.0 / 128.0)

    def serve_all():
        rows = {}
        for batch_size in BATCH_SIZES:
            engine = InferenceEngine(
                substrate,
                scheduler_config=SchedulerConfig(max_batch_size=batch_size),
            )
            outputs = engine.run(_make_requests(substrate.config, budget))
            tpots = [out.metrics.tpot for out in outputs.values()]
            rows[batch_size] = {
                "simulated_rps": engine.metrics.requests_per_second,
                "simulated_tok_s": engine.metrics.tokens_per_second,
                "simulated_tpot_ms": 1e3 * float(np.mean(tpots)),
                "tokens": sum(len(out.token_ids) for out in outputs.values()),
            }
        return rows

    rows = benchmark.pedantic(serve_all, rounds=1, iterations=1)
    print_series("Engine throughput (8 PQCache requests, mixed prompts)", rows)

    reference = None
    for batch_size, row in rows.items():
        # Every configuration serves all traffic to completion...
        assert row["tokens"] == len(PROMPT_LENS) * MAX_NEW_TOKENS
        # ...and batching is transparent to the simulated per-token service
        # time (same latency model, same per-request work).
        if reference is None:
            reference = row["simulated_tpot_ms"]
        assert row["simulated_tpot_ms"] == pytest.approx(reference, rel=1e-6)
        assert row["simulated_rps"] > 0.0


# --------------------------------------------------------------------------
# Part 2: decode-step microbenchmark (batched ADC path vs per-head loops)
# --------------------------------------------------------------------------

#: (h_kv, seq_len) grid; smoke mode keeps only the asserted configuration.
DECODE_CONFIGS_FULL = ((4, 4096), (4, 16384), (8, 4096), (8, 16384))
DECODE_CONFIG_ASSERTED = (8, 16384)
#: local acceptance gate; CI overrides with a lower floor because shared
#: runners add wall-clock noise a best-of-5 timing cannot fully average out.
DECODE_SPEEDUP_FLOOR = float(os.environ.get("REPRO_DECODE_SPEEDUP_FLOOR", "3.0"))
DECODE_STEPS = 10
DECODE_REPEATS = 5
DECODE_HEAD_DIM = 64
DECODE_GROUP = 2


def _decode_bench_configs():
    if os.environ.get("REPRO_DECODE_BENCH", "smoke") == "full":
        return DECODE_CONFIGS_FULL
    return (DECODE_CONFIG_ASSERTED,)


def _legacy_adc_score(pq, query, codes):
    """The seed's per-head ``ProductQuantizer.score``: einsum lookup table,
    broadcast fancy-indexed gather, per-row sum."""
    cfg = pq.config
    sub_query = np.asarray(query, dtype=np.float64).reshape(
        cfg.num_partitions, cfg.sub_dim
    )
    table = np.einsum("md,mcd->mc", sub_query, pq.centroids)
    codes = np.asarray(codes, dtype=np.int64)
    gathered = table[np.arange(cfg.num_partitions)[None, :], codes]
    return gathered.sum(axis=1)


def _legacy_topk_middle(manager, head_codes, kv_queries, middle, k):
    """The seed's ``PQCacheManager.topk_middle``: one Python iteration per
    KV head, each scoring and selecting independently."""
    selected = []
    for head, codes in enumerate(head_codes):
        valid = middle[middle < codes.shape[0]]
        scores = _legacy_adc_score(
            manager.quantizer(0, head), kv_queries[head], codes[valid]
        )
        order = topk_indices(scores, min(k, valid.size))
        selected.append(valid[order])
    return selected


def _legacy_decode_attention(query, keys, values, per_head_indices):
    """The seed's nested ``kv_head x group`` decode-attention loop."""
    query = np.asarray(query, dtype=np.float64)
    h, d_h = query.shape
    h_kv = keys.shape[0]
    group = h // h_kv
    output = np.zeros((h, d_h))
    for kv_head, indices in enumerate(per_head_indices):
        if indices.size == 0:
            continue
        k_sel = keys[kv_head, indices, :]
        v_sel = values[kv_head, indices, :]
        for g in range(group):
            q_head = kv_head * group + g
            weights = softmax((k_sel @ query[q_head]) / np.sqrt(d_h))
            output[q_head] = weights @ v_sel
    return output


def _time_per_step(fn, steps, repeats):
    """Best-of-``repeats`` mean seconds per call of ``fn(step_index)``."""
    fn(0)  # warm-up
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for step in range(steps):
            fn(step)
        best = min(best, (time.perf_counter() - start) / steps)
    return best


def _bench_decode_config(h_kv, seq_len, rng):
    head_dim, group = DECODE_HEAD_DIM, DECODE_GROUP
    h = h_kv * group
    config = ModelConfig(
        num_layers=1, hidden_dim=h * head_dim, num_heads=h,
        num_kv_heads=h_kv, ffn_dim=4 * h * head_dim, vocab_size=256,
        name=f"decode-bench-h{h_kv}",
    )
    cache = KVCache(1, h_kv, head_dim)
    keys = rng.normal(size=(h_kv, seq_len, head_dim))
    cache[0].append(keys, keys)
    manager = PQCacheManager(
        config,
        PQCacheConfig(num_partitions=2, num_bits=6, max_kmeans_iters=2,
                      gpu_cache_tokens=0),
    )
    manager.build(cache)
    values = cache[0].values
    segments = cache.segments(num_initial=4, num_local=32)
    middle = segments.middle_indices
    k = max(seq_len // 10, 4)
    queries = rng.normal(size=(DECODE_STEPS, h, head_dim))
    kv_queries = queries.reshape(
        DECODE_STEPS, h_kv, group, head_dim
    ).mean(axis=2)
    # The seed stored one contiguous code buffer per head; materialise that
    # layout outside the timed region so the baseline is not penalised for
    # the new shared-buffer storage.
    head_codes = [
        np.ascontiguousarray(manager.codes(0, head)) for head in range(h_kv)
    ]

    # Both paths must pick byte-identical tokens on every step.
    selections = []
    for step in range(DECODE_STEPS):
        batched = manager.topk_middle(0, kv_queries[step], segments, k)
        legacy = _legacy_topk_middle(
            manager, head_codes, kv_queries[step], middle, k
        )
        for got, want in zip(batched, legacy):
            assert np.array_equal(got, want)
        selections.append(batched)

    retrieval_batched = _time_per_step(
        lambda s: manager.topk_middle(0, kv_queries[s], segments, k),
        DECODE_STEPS, DECODE_REPEATS,
    )
    retrieval_legacy = _time_per_step(
        lambda s: _legacy_topk_middle(
            manager, head_codes, kv_queries[s], middle, k
        ),
        DECODE_STEPS, DECODE_REPEATS,
    )
    attention_batched = _time_per_step(
        lambda s: decode_attention(queries[s], keys, values, selections[s]),
        DECODE_STEPS, DECODE_REPEATS,
    )
    attention_legacy = _time_per_step(
        lambda s: _legacy_decode_attention(
            queries[s], keys, values, selections[s]
        ),
        DECODE_STEPS, DECODE_REPEATS,
    )
    return {
        "retrieval_tok_s": 1.0 / retrieval_batched,
        "retrieval_tok_s_legacy": 1.0 / retrieval_legacy,
        "retrieval_speedup": retrieval_legacy / retrieval_batched,
        "full_step_tok_s": 1.0 / (retrieval_batched + attention_batched),
        "full_step_tok_s_legacy": 1.0 / (retrieval_legacy + attention_legacy),
        "full_step_speedup": (retrieval_legacy + attention_legacy)
        / (retrieval_batched + attention_batched),
    }


def test_decode_step_microbenchmark(benchmark):
    rng = np.random.default_rng(123)

    def run_all():
        return {
            f"h_kv={h_kv}, seq={seq_len}": _bench_decode_config(
                h_kv, seq_len, rng
            )
            for h_kv, seq_len in _decode_bench_configs()
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_series(
        "Decode-step microbenchmark (batched ADC vs per-head loops)", rows
    )

    asserted = "h_kv={}, seq={}".format(*DECODE_CONFIG_ASSERTED)
    for name, row in rows.items():
        assert row["retrieval_speedup"] > 1.0, name
        # Attention is gather-bound in both paths; guard against regression
        # without requiring a win there.
        assert row["full_step_speedup"] > 0.8, name
    if asserted in rows:
        assert rows[asserted]["retrieval_speedup"] >= DECODE_SPEEDUP_FLOOR


# --------------------------------------------------------------------------
# Part 3: chunked-prefill TTFT benchmark (short prompt behind a 16k prefill)
# --------------------------------------------------------------------------

CHUNKED_LONG_PROMPT = 16384
CHUNKED_SHORT_PROMPT = 64
CHUNKED_BUDGET_TOKENS = 2048


def test_chunked_prefill_ttft(benchmark):
    # Micro geometry: the 16k-token prefill runs twice for real (monolithic
    # baseline prefill is computed once and shared; the chunked run drives
    # the actual chunked pipeline), so keep every head/layer dimension tiny.
    config = ModelConfig(
        num_layers=1, hidden_dim=8, num_heads=1, num_kv_heads=1,
        ffn_dim=16, vocab_size=64, name="ttft-bench",
    )
    model = TransformerLM(config, seed=0)
    rng = np.random.default_rng(11)
    long_prompt = rng.integers(4, config.vocab_size, size=CHUNKED_LONG_PROMPT).tolist()
    short_prompt = rng.integers(4, config.vocab_size, size=CHUNKED_SHORT_PROMPT).tolist()
    # The unchunked baseline charges the same simulated makespan whether the
    # prefill tensor math reruns or not, so share one precomputed prefill to
    # halve the benchmark's NumPy wall-clock.
    baseline_prefill = model.prefill(long_prompt, query_block=1024)

    def serve(chunk_tokens, reuse_prefill):
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(
                max_batch_size=2, max_prefill_chunk_tokens=chunk_tokens
            ),
        )
        long_request = Request(
            prompt_ids=long_prompt,
            sampling=SamplingParams(max_new_tokens=1),
            prefill=baseline_prefill if reuse_prefill else None,
        )
        short_request = Request(
            prompt_ids=short_prompt, sampling=SamplingParams(max_new_tokens=1)
        )
        engine.submit(long_request)
        engine.submit(short_request)
        outputs = engine.run()
        return {
            "short_ttft": outputs[short_request.request_id].metrics.ttft,
            "long_ttft": outputs[long_request.request_id].metrics.ttft,
            "long_prefill_s": outputs[long_request.request_id].metrics.prefill_seconds,
            "long_chunks": outputs[long_request.request_id].metrics.prefill_chunks,
        }

    def run_both():
        return {
            "unchunked": serve(None, reuse_prefill=True),
            "chunked": serve(CHUNKED_BUDGET_TOKENS, reuse_prefill=False),
        }

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_series(
        "Chunked-prefill TTFT (64-token prompt behind a 16k-token prefill)", rows
    )

    unchunked, chunked = rows["unchunked"], rows["chunked"]
    assert chunked["long_chunks"] >= CHUNKED_LONG_PROMPT // CHUNKED_BUDGET_TOKENS
    # Headline: the short prompt is no longer head-of-line blocked.
    assert chunked["short_ttft"] * 2.0 <= unchunked["short_ttft"]
    # The long prompt pays the same total prefill charge either way
    # (telescoping chunk FLOPs; "full" attention has no overlap residual).
    assert chunked["long_prefill_s"] == pytest.approx(
        unchunked["long_prefill_s"], rel=1e-9
    )
