"""Engine throughput microbenchmark — serving baseline for scheduler PRs.

Runs the same PQCache-policy traffic (8 requests, mixed 256/384/512-token
prompts, 4 tokens each) through the ``InferenceEngine`` at batch sizes 1, 4
and 8, and records:

* wall-clock requests/s of the NumPy substrate (the `benchmark` timing),
* simulated requests/s and mean TPOT on the paper-testbed clock.

Later scheduler/batching PRs should move the wall-clock number without
changing the simulated numbers (which only depend on the latency model) or
the generated tokens (batching must stay transparent).
"""

import numpy as np
import pytest

from conftest import make_budget, print_series

from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)

BATCH_SIZES = (1, 4, 8)
PROMPT_LENS = (256, 384, 512, 256, 384, 512, 256, 384)
MAX_NEW_TOKENS = 4


@pytest.fixture(scope="module")
def substrate():
    return TransformerLM(ModelConfig.tiny(), seed=0)


def _make_requests(config, budget):
    rng = np.random.default_rng(17)
    return [
        Request(
            prompt_ids=rng.integers(4, config.vocab_size, size=n).tolist(),
            sampling=SamplingParams(max_new_tokens=MAX_NEW_TOKENS),
            policy_spec=PolicySpec.named(
                "pqcache", budget,
            ),
        )
        for n in PROMPT_LENS
    ]


def test_engine_throughput(benchmark, substrate):
    budget = make_budget(token_ratio=0.2, comm_ratio=1.0 / 128.0)

    def serve_all():
        rows = {}
        for batch_size in BATCH_SIZES:
            engine = InferenceEngine(
                substrate,
                scheduler_config=SchedulerConfig(max_batch_size=batch_size),
            )
            outputs = engine.run(_make_requests(substrate.config, budget))
            tpots = [out.metrics.tpot for out in outputs.values()]
            rows[batch_size] = {
                "simulated_rps": engine.metrics.requests_per_second,
                "simulated_tok_s": engine.metrics.tokens_per_second,
                "simulated_tpot_ms": 1e3 * float(np.mean(tpots)),
                "tokens": sum(len(out.token_ids) for out in outputs.values()),
            }
        return rows

    rows = benchmark.pedantic(serve_all, rounds=1, iterations=1)
    print_series("Engine throughput (8 PQCache requests, mixed prompts)", rows)

    reference = None
    for batch_size, row in rows.items():
        # Every configuration serves all traffic to completion...
        assert row["tokens"] == len(PROMPT_LENS) * MAX_NEW_TOKENS
        # ...and batching is transparent to the simulated per-token service
        # time (same latency model, same per-request work).
        if reference is None:
            reference = row["simulated_tpot_ms"]
        assert row["simulated_tpot_ms"] == pytest.approx(reference, rel=1e-6)
        assert row["simulated_rps"] > 0.0
