"""Figure 12a — prefill time decomposition (compute, offload, K-Means, end-to-end).

Paper: KVCache offloading is negligible next to GPU compute; with the
adaptive iteration budget the K-Means time closely tracks the GPU compute
time; and the end-to-end prefill (compute + clustering overlapped) stays
close to the pure GPU compute time.
"""

import pytest

from conftest import print_series
from repro.core import AdaptiveIterationPlanner, ClusteringProfile, ComputeProfile

SEQ_LENS = (16384, 32768, 65536, 131072)


def _planner_from(latency_model) -> AdaptiveIterationPlanner:
    """Fit the Eq. 1-3 planner on the latency model's own cost curves, which
    is exactly the profiling step the paper performs on real hardware."""
    planner = AdaptiveIterationPlanner(min_iterations=1, max_iterations=200)
    planner.fit_clustering([
        ClusteringProfile(s, t, latency_model.layer_clustering_seconds(s, t))
        for s in SEQ_LENS for t in (1, 8, 32)
    ])
    planner.fit_compute([
        ComputeProfile(s, latency_model.layer_prefill_compute_seconds(s))
        for s in (4096,) + SEQ_LENS
    ])
    return planner


def test_prefill_time_decomposition(benchmark, latency_model):
    planner = _planner_from(latency_model)

    def run():
        rows = {}
        for seq_len in SEQ_LENS:
            iters = planner.max_iterations_for(seq_len)
            parts = latency_model.prefill_decomposition(seq_len, iterations=iters)
            timeline = latency_model.prefill_timeline(seq_len, "pqcache",
                                                      iterations=iters)
            layers = latency_model.model.num_layers
            rows[seq_len] = {
                "gpu_compute": parts["compute"] * layers,
                "offload": parts["offload"] * layers,
                "kmeans": parts["clustering"] * layers,
                "end_to_end": timeline.makespan,
                "iterations": iters,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 12a (prefill time decomposition, seconds)", rows)

    for seq_len, row in rows.items():
        # Offloading is negligible relative to compute.
        assert row["offload"] < 0.25 * row["gpu_compute"]
        # Adaptive K-Means stays within the compute envelope.
        assert row["kmeans"] <= 1.1 * row["gpu_compute"]
        # Overlap keeps the end-to-end time close to the pure compute time.
        assert row["end_to_end"] <= 1.3 * row["gpu_compute"]
