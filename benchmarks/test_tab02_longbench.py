"""Table 2 — LongBench evaluation (Llama-3.1-8B-like geometry).

Paper: PQCache beats every baseline at both 1/5 and 1/10 token budgets with
1/128 extra communication, stays within ~1 point of the exact-top-k Oracle,
and the dropping methods (H2O/SnapKV/PyramidKV) trail despite compensated
budgets.  This benchmark regenerates the table rows on the synthetic
LongBench-like suite and checks the headline ordering.
"""

import pytest

from conftest import (
    LONGBENCH_PQ,
    LONGBENCH_SEQ_LEN,
    SAMPLES_PER_DATASET,
    make_budget,
    print_table,
    table_policy_factories,
)
from repro.workloads import longbench_suite


@pytest.mark.parametrize("token_ratio", [0.2, 0.1], ids=["1-5_tokens", "1-10_tokens"])
def test_longbench_table(benchmark, harness, token_ratio):
    budget = make_budget(token_ratio=token_ratio, comm_ratio=1.0 / 128.0)
    datasets = longbench_suite(seq_len=LONGBENCH_SEQ_LEN,
                               num_samples=SAMPLES_PER_DATASET, seed=0)
    factories = table_policy_factories(budget, LONGBENCH_PQ)

    def run():
        return harness.evaluate_suite(factories, datasets)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Table 2 (token ratio {token_ratio}, 1/128 comm)", table)

    average = table["average"]
    # Shape checks mirroring the paper's claims.
    assert average["pqcache"] >= average["oracle"] - 10.0
    assert average["pqcache"] > average["infllm"]
    assert average["pqcache"] > average["h2o(c)"]
    assert average["pqcache"] > average["snapkv(c)"] - 1e-9
    assert average["full"] == pytest.approx(100.0)
