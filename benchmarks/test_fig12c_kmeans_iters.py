"""Figure 12c — trade-off between K-Means iterations, quality, and TT2T.

Paper (HotpotQA, Mistral-7B, 1/10 tokens): more clustering iterations
generally improve the score but increase the time to the second token; the
adaptive strategy gets the lowest TT2T while remaining competitive, and an
interface is exposed for users to pick their own iteration count.
"""

import pytest

from conftest import LONGBENCH_SEQ_LEN, make_budget, print_series
from repro.baselines import build_policy
from repro.core import PQCacheConfig
from repro.workloads import multi_hop_qa

ITERATION_SETTINGS = (0, 2, 8, 25)


def test_kmeans_iteration_tradeoff(benchmark, harness, latency_model):
    budget = make_budget(token_ratio=0.1, comm_ratio=1.0 / 128.0)
    dataset = multi_hop_qa(num_samples=3, seq_len=LONGBENCH_SEQ_LEN, seed=37,
                           name="hotpotqa-like")

    def factory(iters):
        return lambda: build_policy(
            "pqcache", budget,
            pq_config=PQCacheConfig(num_partitions=2, num_bits=5,
                                    max_kmeans_iters=iters, gpu_cache_tokens=0),
        )

    def run():
        rows = {}
        for iters in ITERATION_SETTINGS:
            score = harness.evaluate(factory(iters), dataset).score
            # Clustering beyond the GPU-compute envelope delays the 2nd token.
            prefill = latency_model.prefill_decomposition(65536, iterations=max(iters, 1))
            blocking_clustering = max(prefill["clustering"] - prefill["compute"], 0.0)
            tt2t = (latency_model.tt2t(65536, "pqcache", iterations=max(iters, 1))
                    + blocking_clustering * latency_model.model.num_layers)
            rows[iters] = {"score": score, "tt2t": tt2t}
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 12c (score vs TT2T for K-Means iteration counts)", rows)

    # Quality does not degrade with more iterations; latency never improves.
    assert rows[25]["score"] >= rows[0]["score"] - 10.0
    assert rows[25]["tt2t"] >= rows[2]["tt2t"] - 1e-9
