"""Figure 6 — attention-score distributions at decode time.

Paper: attention scores follow power-law-like distributions — a small subset
of tokens receives most of the mass — which is the premise of selective
attention.  This benchmark collects decode-time attention distributions from
the substrate and reports mass concentration and tail exponents.
"""

import numpy as np
import pytest

from conftest import print_series
from repro.llm import ModelConfig, TransformerLM
from repro.workloads import (
    collect_decode_attention,
    mass_concentration,
    power_law_exponent,
    single_fact_qa,
)


def test_attention_score_distribution(benchmark):
    config = ModelConfig.tiny()
    model = TransformerLM(config, seed=0, qk_coupling=0.8, rope_base=1e6)
    dataset = single_fact_qa(num_samples=1, seq_len=512, seed=0)
    prompt = dataset.samples[0].prompt_ids

    def run():
        traces = collect_decode_attention(model, prompt)
        return [
            {
                "layer": t.layer,
                "head": t.kv_head,
                "top10pct_mass": mass_concentration(t, 0.1),
                "exponent": power_law_exponent(t),
            }
            for t in traces
        ]

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = {
        f"L{s['layer']}H{s['head']}": {"top10%": s["top10pct_mass"],
                                       "slope": s["exponent"]}
        for s in stats
    }
    print_series("Figure 6 (attention mass concentration per layer/head)", summary)

    top_mass = np.array([s["top10pct_mass"] for s in stats])
    slopes = np.array([s["exponent"] for s in stats])
    # Concentration: the top 10% of tokens hold several times their uniform share.
    assert top_mass.mean() > 0.2
    # Power-law-like decay: log-log slope is negative everywhere.
    assert (slopes < 0).all()
