"""Table 3 — LongBench QA with the question placed *before* the context.

Paper: SnapKV(C) and PyramidKV(C) rely on the prompt's final segment being
the question; with the question moved to the front their scores drop sharply
while PQCache, which makes no positional assumption, wins every QA dataset
(+7.1% average).
"""

import pytest

from conftest import (
    LONGBENCH_PQ,
    LONGBENCH_SEQ_LEN,
    SAMPLES_PER_DATASET,
    make_budget,
    print_table,
    table_policy_factories,
)
from repro.workloads import longbench_qa_suite


def test_question_first_qa(benchmark, harness):
    budget = make_budget(token_ratio=0.1, comm_ratio=1.0 / 128.0)
    datasets = longbench_qa_suite(seq_len=LONGBENCH_SEQ_LEN,
                                  num_samples=SAMPLES_PER_DATASET, seed=0,
                                  question_position="start")
    factories = table_policy_factories(
        budget, LONGBENCH_PQ, names=("snapkv(c)", "pyramidkv(c)", "pqcache")
    )

    def run():
        return harness.evaluate_suite(factories, datasets)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Table 3 (questions placed before the context)", table)

    average = table["average"]
    assert average["pqcache"] > average["snapkv(c)"]
    assert average["pqcache"] > average["pyramidkv(c)"]
