"""Figure 11d — GPU cache hit-rate: LRU vs LFU and the k_cache sweep.

Paper: LRU and LFU behave similarly (~0.5-0.6 hit rate); the hit-rate first
rises with the number of blocks used per update and then declines once the
update set exceeds the cache capacity; the deployed setting uses 32 blocks.
"""

import numpy as np
import pytest

from conftest import LONGBENCH_PQ, LONGBENCH_SEQ_LEN, make_budget, print_series
from repro.baselines import build_policy
from repro.core import BlockGpuCache
from repro.workloads import multi_hop_qa

K_CACHE_BLOCKS = (2, 4, 8, 16, 32)
CACHE_TOKENS = 256
BLOCK_SIZE = 32


def _retrieval_trace(harness, budget):
    dataset = multi_hop_qa(num_samples=2, seq_len=LONGBENCH_SEQ_LEN, seed=29,
                           name="hotpotqa-like")
    trace = []
    for sample in dataset.samples:
        policy = build_policy("pqcache", budget, pq_config=LONGBENCH_PQ)
        for obs in harness.run_sample(policy, sample):
            middle = np.intersect1d(obs.selected_union(),
                                    obs.segments.middle_indices)
            trace.append(middle)
    return trace


def test_cache_hit_rate_policies(benchmark, harness):
    budget = make_budget(token_ratio=0.1, comm_ratio=1.0 / 128.0)
    trace = _retrieval_trace(harness, budget)

    def run():
        results = {}
        for policy_name in ("lru", "lfu"):
            for k_cache in K_CACHE_BLOCKS:
                cache = BlockGpuCache(capacity_tokens=CACHE_TOKENS,
                                      block_size=BLOCK_SIZE, policy=policy_name,
                                      k_cache_blocks=k_cache)
                for step in trace:
                    cache.access(step)
                results[(policy_name, k_cache)] = cache.stats.hit_rate
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {f"{p}-k{k}": v for (p, k), v in results.items()}
    print_series("Figure 11d (cache hit-rate, LRU vs LFU)", series)

    lru = [results[("lru", k)] for k in K_CACHE_BLOCKS]
    lfu = [results[("lfu", k)] for k in K_CACHE_BLOCKS]
    # The two eviction policies behave similarly (paper: near-identical curves).
    assert np.max(np.abs(np.array(lru) - np.array(lfu))) < 0.35
    # Pivotal tokens exist: hit rates are far above zero with a small cache.
    assert max(lru) > 0.3
