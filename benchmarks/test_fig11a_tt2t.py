"""Figure 11a — Time-To-Second-Token across methods and sequence lengths.

Paper: with overlapping and adaptive clustering PQCache achieves nearly the
lowest TT2T; H2O is far slower (no FlashAttention, dense score matrices) and
hits OOM at the longest contexts; SnapKV/PyramidKV add negligible prefill
overhead; InfLLM pays block-setup time.
"""

import pytest

from conftest import print_series

SEQ_LENS = (16384, 32768, 65536, 131072)
METHODS = ("pqcache", "snapkv", "pyramidkv", "h2o", "sparq", "infllm")


def test_time_to_second_token(benchmark, latency_model):
    def run():
        rows = {}
        for seq_len in SEQ_LENS:
            rows[seq_len] = {
                method: latency_model.tt2t(seq_len, method) for method in METHODS
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 11a (TT2T seconds by method)", rows)

    for seq_len in SEQ_LENS:
        tt2t = rows[seq_len]
        # H2O's dense-score prefill is the slowest.
        assert tt2t["h2o"] == max(tt2t.values())
        # PQCache is within 10% of the fastest method (overlapped clustering).
        assert tt2t["pqcache"] <= 1.10 * min(tt2t.values())

    # H2O's score matrices exceed a 24 GB GPU at 128K (the paper reports OOM).
    oom_bytes = latency_model.gpu_memory_required_prefill(131072, "h2o")
    print_series("H2O prefill GPU memory (GiB)", {"h2o@128K": oom_bytes / 2 ** 30})
    assert oom_bytes > 24 * 2 ** 30
