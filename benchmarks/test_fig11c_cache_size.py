"""Figure 11c — TPOT improvement from the block-level GPU cache.

Paper: relative to no cache, a 4K-token block cache cuts TPOT by ~26% and an
8K cache by ~33%; a token-level cache is not used because of its management
overhead.  Reproduced by replaying a PQCache retrieval trace through caches
of different sizes and converting the measured hit-rates into TPOT.
"""

import numpy as np
import pytest

from conftest import LONGBENCH_PQ, LONGBENCH_SEQ_LEN, make_budget, print_series
from repro.baselines import build_policy
from repro.core import BlockGpuCache
from repro.workloads import single_fact_qa

CACHE_TOKENS = (0, 1024, 2048, 4096)
BLOCK_SIZE = 32   # scaled to the substrate's shorter contexts


def _retrieval_trace(harness, budget):
    """Per-step middle-token fetches of PQCache on a QA sample."""
    dataset = single_fact_qa(num_samples=2, seq_len=LONGBENCH_SEQ_LEN, seed=23)
    trace = []
    for sample in dataset.samples:
        policy = build_policy("pqcache", budget, pq_config=LONGBENCH_PQ)
        observations = harness.run_sample(policy, sample)
        for obs in observations:
            selected = obs.selected_union()
            middle = np.intersect1d(selected, obs.segments.middle_indices)
            trace.append(middle)
    return trace


def test_gpu_cache_size_sweep(benchmark, harness, latency_model):
    budget = make_budget(token_ratio=0.2, comm_ratio=1.0 / 128.0)
    trace = _retrieval_trace(harness, budget)

    def run():
        results = {}
        for capacity in CACHE_TOKENS:
            if capacity == 0:
                hit_rate = 0.0
            else:
                cache = BlockGpuCache(capacity_tokens=capacity, block_size=BLOCK_SIZE,
                                      policy="lru", k_cache_blocks=32)
                for step in trace:
                    cache.access(step)
                hit_rate = cache.stats.hit_rate
            results[capacity] = {
                "hit_rate": hit_rate,
                "tpot": latency_model.tpot(65536, "pqcache", cache_hit_rate=hit_rate),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 11c (TPOT vs GPU cache capacity)", results)

    no_cache = results[0]["tpot"]
    largest = results[CACHE_TOKENS[-1]]["tpot"]
    # The cache meaningfully reduces TPOT (paper: 26-33%).
    assert largest < no_cache * 0.9
    # Larger caches never hurt.
    tpots = [results[c]["tpot"] for c in CACHE_TOKENS]
    assert all(a >= b - 1e-9 for a, b in zip(tpots, tpots[1:]))
