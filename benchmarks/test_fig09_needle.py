"""Figure 9 — Needle-in-a-Haystack heat map.

Paper: PQCache, SnapKV(C) and PyramidKV(C) locate the needle almost
everywhere (near Full/Oracle), while H2O and InfLLM miss it in a substantial
fraction of (length, depth) cells.  This benchmark scores a small grid and
prints one heat-map matrix per method (rows = depth, columns = length).
"""

import numpy as np
import pytest

from conftest import LONGBENCH_PQ, make_budget, print_series
from repro.baselines import build_policy
from repro.workloads import NeedleGrid

CONTEXT_LENGTHS = (256, 448, 640)
DEPTHS = (0.15, 0.5, 0.85)
METHODS = ("full", "pqcache", "snapkv(c)", "h2o(c)", "infllm")


def test_needle_in_a_haystack(benchmark, harness):
    budget = make_budget(token_ratio=0.1, comm_ratio=1.0 / 64.0)
    grid = NeedleGrid(context_lengths=CONTEXT_LENGTHS, depth_fractions=DEPTHS,
                      samples_per_cell=2, seed=0)

    def factory(name):
        base = name.split("(")[0]
        if base == "pqcache":
            return lambda: build_policy("pqcache", budget, pq_config=LONGBENCH_PQ)
        return lambda: build_policy(base, budget)

    def run():
        matrices = {}
        for method in METHODS:
            scores = {}
            for length, depth, dataset in grid.cells():
                result = harness.evaluate(factory(method), dataset)
                scores[(length, depth)] = result.score
            matrices[method] = NeedleGrid.to_matrix(scores, CONTEXT_LENGTHS, DEPTHS)
        return matrices

    matrices = benchmark.pedantic(run, rounds=1, iterations=1)
    means = {method: float(matrix.mean()) for method, matrix in matrices.items()}
    print_series("Figure 9 (needle retrieval, mean over grid)", means)
    for method, matrix in matrices.items():
        print(f"  {method}:\n{np.array2string(matrix, precision=1)}")

    assert means["full"] == pytest.approx(100.0)
    assert means["pqcache"] >= means["h2o(c)"]
    assert means["pqcache"] >= means["infllm"]
    assert means["pqcache"] >= 50.0
