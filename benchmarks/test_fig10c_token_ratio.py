"""Figure 10c — model quality vs the fraction of tokens used in attention.

Paper (HotpotQA, 1/128 communication): every method improves as the token
budget grows, and PQCache dominates the baselines across the sweep.
"""

import pytest

from conftest import LONGBENCH_PQ, LONGBENCH_SEQ_LEN, make_budget, print_series
from repro.baselines import build_policy
from repro.workloads import multi_hop_qa

RATIOS = (0.05, 0.1, 0.2, 0.4)
METHODS = ("pqcache", "snapkv(c)", "infllm", "sparq")


def test_token_ratio_sweep(benchmark, harness):
    dataset = multi_hop_qa(num_samples=3, seq_len=LONGBENCH_SEQ_LEN, seed=13,
                           name="hotpotqa-like")

    def factory(method, budget):
        base = method.split("(")[0]
        if base == "pqcache":
            return lambda: build_policy("pqcache", budget, pq_config=LONGBENCH_PQ)
        return lambda: build_policy(base, budget)

    def run():
        series = {}
        for ratio in RATIOS:
            budget = make_budget(token_ratio=ratio, comm_ratio=1.0 / 128.0)
            series[ratio] = {
                method: harness.evaluate(factory(method, budget), dataset).score
                for method in METHODS
            }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Figure 10c (score vs token ratio, HotpotQA-like)", series)

    # PQCache leads at every ratio and trends upward with more tokens.
    for ratio in RATIOS:
        assert series[ratio]["pqcache"] >= series[ratio]["infllm"] - 1e-9
    assert series[0.4]["pqcache"] >= series[0.05]["pqcache"] - 5.0
