"""Fused multi-request decode-round benchmark.

Part 1 — engine decode throughput, fused vs per-request loop: 8 concurrent
PQCache requests, each sitting on a synthesized 16k-token KVCache (random
keys wrapped in a precomputed :class:`~repro.llm.PrefillResult`, the same
idiom the throughput microbenchmarks use — prefilling 16k tokens through the
causal substrate would dwarf the decode phase being measured).  The same
traffic runs through ``InferenceEngine(decode_batching=True)`` (one fused
:meth:`~repro.llm.TransformerLM.decode_step_batch` round per step, grouped
ADC scoring/top-k, grouped einsum attention) and through the
``decode_batching=False`` escape hatch (the legacy per-request loop with its
per-head Python kernels), asserts the two emit byte-identical tokens, and
asserts the fused path clears ``REPRO_DECODE_BATCHING_FLOOR`` (default 2.0,
the CI acceptance gate at batch 8 / seq 16k / h_kv 8) in decode tokens/s.
The measured ratio is printed either way.

Smoke mode (the default) runs only the asserted batch-8 configuration; set
``REPRO_DECODE_BATCHING_BENCH=full`` for the batch 1/4/8 sweep.

Part 2 — ParisKV-style refresh knob, recall vs refresh cost: one long
generation (1k-token prompt, 96 decoded tokens) with
``PQCachePolicy(refresh_every=16)`` against the same run without refreshes.
A selection hook measures, at every decode step, the recall of the PQ-picked
middle tokens against the exact top-k by true key scores; the engine's
``pq_refreshes`` / ``pq_refresh_seconds`` counters price the refreshes on
the simulated clock.  The benchmark reports recall-with vs recall-without
alongside that cost so the knob's trade-off is visible in one table.
"""

import os
import time

import numpy as np
import pytest

from conftest import make_budget, print_series

from repro.core import PQCacheConfig
from repro.llm import KVCache, ModelConfig, PrefillResult, TransformerLM
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)
from repro.utils import topk_indices

# --------------------------------------------------------------------------
# Part 1: fused decode round vs per-request loop (the ISSUE's CI gate)
# --------------------------------------------------------------------------

#: pinned acceptance configuration: batch 8, seq 16k, h_kv=8.  The free
#: knobs use a serving-realistic dense geometry (hidden 2048, GQA 4): decode
#: is projection/FFN-dominated there, which is precisely where the fused
#: round's weight reuse (one fixed-shape GEMM per dense op per round instead
#: of one per request) pays.
BATCH_ASSERTED = 8
SEQ_LEN = 16384
H_KV = 8
GQA_GROUP = 4
HEAD_DIM = 64
TOKEN_RATIO = 0.05
#: decode rounds timed per engine (after one admission/warm-up step).
TIMED_STEPS = 5
#: acceptance floor on fused/looped decode tokens/s; CI pins 2.0 explicitly.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_DECODE_BATCHING_FLOOR", "2.0"))

BENCH_PQ = PQCacheConfig(num_partitions=2, num_bits=6, max_kmeans_iters=2,
                         gpu_cache_tokens=0)


def _bench_batches():
    if os.environ.get("REPRO_DECODE_BATCHING_BENCH", "smoke") == "full":
        return (1, 4, BATCH_ASSERTED)
    return (BATCH_ASSERTED,)


def _bench_config() -> ModelConfig:
    h = H_KV * GQA_GROUP
    return ModelConfig(
        num_layers=1, hidden_dim=h * HEAD_DIM, num_heads=h, num_kv_heads=H_KV,
        ffn_dim=2 * h * HEAD_DIM, vocab_size=256,
        name=f"decode-batching-h{H_KV}",
    )


def _synth_prefill(config: ModelConfig, seed: int) -> PrefillResult:
    """A precomputed 16k-token prefill with random keys/values.

    Each engine run gets its own copy (decoding appends to the cache), built
    from the same seed so the fused and looped engines see bitwise-equal
    state.
    """
    rng = np.random.default_rng(seed)
    cache = KVCache(config.num_layers, config.num_kv_heads, config.head_dim)
    for layer in range(config.num_layers):
        keys = rng.normal(size=(config.num_kv_heads, SEQ_LEN, config.head_dim))
        values = rng.normal(size=(config.num_kv_heads, SEQ_LEN, config.head_dim))
        cache[layer].append(keys, values)
    return PrefillResult(
        kvcache=cache,
        last_hidden=np.zeros(config.hidden_dim),
        logits=rng.normal(size=config.vocab_size),
        aggregates=[],
        prompt_queries=None,
        seq_len=SEQ_LEN,
    )


def _serve_decode(model, batch_size, decode_batching):
    """Admit ``batch_size`` synthesized requests, time pure decode rounds."""
    budget = make_budget(token_ratio=TOKEN_RATIO, comm_ratio=1.0 / 128.0)
    engine = InferenceEngine(
        model,
        scheduler_config=SchedulerConfig(max_batch_size=batch_size,
                                         max_prefills_per_step=batch_size),
        decode_batching=decode_batching,
    )
    for i in range(batch_size):
        engine.submit(Request(
            request_id=f"r{i}",
            prompt_ids=[0] * SEQ_LEN,
            sampling=SamplingParams(max_new_tokens=TIMED_STEPS + 4),
            policy_spec=PolicySpec.named("pqcache", budget, pq_config=BENCH_PQ),
            prefill=_synth_prefill(model.config, seed=100 + i),
        ))
    # First step: admission + PQ build + the first fused/looped decode round
    # (warm-up).  Subsequent steps are pure decode rounds over the full batch.
    engine.step()
    engine.step()
    tokens: list[list[int]] = []
    start = time.perf_counter()
    for _ in range(TIMED_STEPS):
        outputs = engine.step()
        tokens.append([t for out in outputs for t in out.new_token_ids])
    elapsed = time.perf_counter() - start
    return {
        "tokens": tokens,
        "tok_s": batch_size * TIMED_STEPS / elapsed,
        "metrics": engine.metrics,
    }


def test_fused_decode_round_speedup(benchmark):
    model = TransformerLM(_bench_config(), seed=0)

    def run_all():
        rows = {}
        for batch_size in _bench_batches():
            fused = _serve_decode(model, batch_size, decode_batching=True)
            looped = _serve_decode(model, batch_size, decode_batching=False)
            assert fused["tokens"] == looped["tokens"], (
                "fused decode round diverged from the per-request loop"
            )
            metrics = fused["metrics"]
            rows[f"batch={batch_size}"] = {
                "fused_tok_s": fused["tok_s"],
                "looped_tok_s": looped["tok_s"],
                "speedup": fused["tok_s"] / looped["tok_s"],
                "mean_batch": metrics.mean_decode_batch_size,
                "select_s": metrics.decode_select_seconds,
                "gather_s": metrics.decode_gather_seconds,
                "attention_s": metrics.decode_attention_seconds,
                "maintenance_s": metrics.decode_maintenance_seconds,
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_series(
        "Fused decode round vs per-request loop (PQCache, seq 16384, h_kv 8)",
        rows,
    )

    asserted = rows[f"batch={BATCH_ASSERTED}"]
    assert asserted["mean_batch"] == pytest.approx(BATCH_ASSERTED)
    print(f"\nmeasured fused/looped decode speedup at batch {BATCH_ASSERTED}: "
          f"{asserted['speedup']:.2f}x (floor {SPEEDUP_FLOOR:.1f}x)")
    assert asserted["speedup"] >= SPEEDUP_FLOOR


# --------------------------------------------------------------------------
# Part 2: refresh_every — retrieval recall vs refresh cost
# --------------------------------------------------------------------------

REFRESH_PROMPT_LEN = 1024
REFRESH_NEW_TOKENS = 96
REFRESH_EVERY = 16
REFRESH_TOKEN_RATIO = 0.1


def _refresh_config() -> ModelConfig:
    return ModelConfig(num_layers=1, hidden_dim=32, num_heads=2,
                       num_kv_heads=1, ffn_dim=64, vocab_size=128,
                       name="refresh-bench")


def _run_refresh(model, refresh_every):
    """Long generation with a recall-measuring selection hook."""
    budget = make_budget(token_ratio=REFRESH_TOKEN_RATIO, comm_ratio=1.0 / 128.0)
    recalls: list[float] = []

    def hook(layer_index, query, kvcache, normalised):
        keys = kvcache[layer_index].keys
        h_kv = keys.shape[0]
        group = query.shape[0] // h_kv
        kv_queries = query.reshape(h_kv, group, -1).mean(axis=1)
        segments = budget.segments(keys.shape[1])
        middle = segments.middle_indices
        if middle.size == 0 or normalised is None:
            return
        k = min(budget.middle_budget(REFRESH_PROMPT_LEN), middle.size)
        middle_set = set(middle.tolist())
        for head in range(h_kv):
            exact_scores = keys[head, middle, :] @ kv_queries[head]
            exact = set(middle[topk_indices(exact_scores, k)].tolist())
            approx = set(np.asarray(normalised[head]).tolist()) & middle_set
            if exact:
                recalls.append(len(exact & approx) / len(exact))

    rng = np.random.default_rng(7)
    prompt = rng.integers(4, model.config.vocab_size,
                          size=REFRESH_PROMPT_LEN).tolist()
    engine = InferenceEngine(model)
    request = Request(
        prompt_ids=prompt,
        sampling=SamplingParams(max_new_tokens=REFRESH_NEW_TOKENS),
        policy_spec=PolicySpec.named(
            "pqcache", budget, pq_config=BENCH_PQ, refresh_every=refresh_every,
        ),
        selection_hook=hook,
    )
    engine.run([request])
    return {
        "mean_recall": float(np.mean(recalls)),
        "pq_refreshes": engine.metrics.pq_refreshes,
        "refresh_cost_s": engine.metrics.pq_refresh_seconds,
        "decode_clock_s": engine.metrics.clock,
    }


def test_refresh_recall_vs_cost(benchmark):
    model = TransformerLM(_refresh_config(), seed=1)

    def run_both():
        return {
            "no refresh": _run_refresh(model, refresh_every=None),
            f"refresh_every={REFRESH_EVERY}": _run_refresh(
                model, refresh_every=REFRESH_EVERY
            ),
        }

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_series(
        "PQ refresh knob: retrieval recall vs simulated refresh cost", rows
    )

    base = rows["no refresh"]
    refreshed = rows[f"refresh_every={REFRESH_EVERY}"]
    assert base["pq_refreshes"] == 0 and base["refresh_cost_s"] == 0.0
    assert refreshed["pq_refreshes"] == REFRESH_NEW_TOKENS // REFRESH_EVERY
    # Refreshes carry an honest simulated price (clustering timeline tasks).
    assert refreshed["refresh_cost_s"] > 0.0
    assert refreshed["decode_clock_s"] > base["decode_clock_s"]
    for row in rows.values():
        assert 0.0 <= row["mean_recall"] <= 1.0
