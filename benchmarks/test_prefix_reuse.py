"""Prefix-reuse throughput benchmark: multi-turn TTFT with a shared prefix.

The tentpole serving scenario of the paged-KV / prefix-cache redesign: a
multi-turn conversation whose every turn embeds the full history.  Turn 2
shares a ≥4k-token prefix with turn 1, so a prefix-cache hit skips that
prefix's prefill compute *and* its PQ construction — the benchmark asserts a
**≥5× simulated TTFT improvement** on turn 2 versus serving the same prompt
cold, and that the cache-hit decode output is byte-identical to the cold one
(the tentpole's correctness criterion).

Run with ``-s`` to see the per-turn table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PQCacheConfig
from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)
from repro.workloads import multi_turn_conversation

from conftest import make_budget

#: shared-prefix size of the acceptance criterion (tokens)
SHARED_PREFIX_TOKENS = 4096
TURN_TOKENS = 64
ANSWER_TOKENS = 8
TTFT_IMPROVEMENT_FLOOR = 5.0


@pytest.fixture(scope="module")
def substrate() -> TransformerLM:
    config = ModelConfig(
        num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
        ffn_dim=128, vocab_size=512, max_context=65536, name="prefix-bench",
    )
    return TransformerLM(config, seed=0)


def make_engine(substrate: TransformerLM, caching: bool) -> InferenceEngine:
    return InferenceEngine(
        substrate,
        scheduler_config=SchedulerConfig(max_prefill_chunk_tokens=512),
        enable_prefix_caching=caching,
    )


def serve_turn(engine: InferenceEngine, prompt: "list[int]",
               policy: "str | None" = "pqcache"):
    spec = None
    if policy == "pqcache":
        spec = PolicySpec.named(
            "pqcache",
            make_budget(token_ratio=0.2, comm_ratio=1.0 / 64.0),
            pq_config=PQCacheConfig(max_kmeans_iters=8, gpu_cache_tokens=512),
        )
    rid = engine.submit(
        Request(
            prompt_ids=prompt,
            sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
            policy_spec=spec,
        )
    )
    return engine.run()[rid]


def test_prefix_reuse_ttft_multiturn(substrate):
    """Turn-2 TTFT: warm (prefix hit) vs cold, same prompt, same outputs."""
    conversation = multi_turn_conversation(
        num_turns=2, system_tokens=SHARED_PREFIX_TOKENS,
        turn_tokens=TURN_TOKENS, seed=4,
    )

    warm_engine = make_engine(substrate, caching=True)

    # Turn 1: cold by construction — it pays the full prefill + clustering.
    history = conversation.initial_history()
    prompt_1 = conversation.prompt_for_turn(0, history)
    out_1 = serve_turn(warm_engine, prompt_1)
    history = conversation.extend_history(prompt_1, out_1.token_ids)

    # Turn 2 on the warm engine: the whole turn-1 prompt region is cached.
    prompt_2 = conversation.prompt_for_turn(1, history)
    assert len(prompt_2) - len(prompt_1) <= 2 * TURN_TOKENS + ANSWER_TOKENS
    warm = serve_turn(warm_engine, prompt_2)
    assert warm.metrics.cached_prefix_tokens >= SHARED_PREFIX_TOKENS

    # The same turn-2 prompt served cold (fresh engine, no cache to hit).
    cold = serve_turn(make_engine(substrate, caching=False), prompt_2)

    # Byte-identical decode output between hit and cold paths.
    assert warm.token_ids == cold.token_ids
    assert np.array_equal(warm.logits, cold.logits)

    improvement = cold.metrics.ttft / warm.metrics.ttft
    hit_rate = warm_engine.metrics.prefix_token_hit_rate
    print("\n=== Prefix-reuse TTFT (turn 2, shared prefix "
          f"{warm.metrics.cached_prefix_tokens} tokens) ===")
    print(f"  turn-1 (cold)       TTFT: {out_1.metrics.ttft:.6f}s over "
          f"{len(prompt_1)} tokens")
    print(f"  turn-2 cold         TTFT: {cold.metrics.ttft:.6f}s over "
          f"{len(prompt_2)} tokens")
    print(f"  turn-2 prefix hit   TTFT: {warm.metrics.ttft:.6f}s "
          f"({warm.metrics.cached_prefix_tokens} cached)")
    print(f"  improvement: {improvement:.1f}x "
          f"(floor {TTFT_IMPROVEMENT_FLOOR}x), "
          f"engine token hit rate {hit_rate:.2%}")
    assert improvement >= TTFT_IMPROVEMENT_FLOOR, (
        f"turn-2 TTFT improved only {improvement:.1f}x "
        f"(< {TTFT_IMPROVEMENT_FLOOR}x) despite a "
        f"{warm.metrics.cached_prefix_tokens}-token shared prefix"
    )


def test_prefix_reuse_throughput_batch(substrate):
    """Many requests sharing one system prompt: aggregate clock shrinks.

    Measured on the full-attention policy, which isolates the pure KV-block
    reuse economics (prefill compute skipped for the shared prefix).  The
    PQCache policy's aggregate clock improves less at this tiny geometry —
    its final refinement honestly re-clusters the *full* prompt on hit and
    cold paths alike (that is what keeps outputs byte-identical) and
    dominates the simulated CPU time here — so its numbers are printed for
    reference while the assertion targets the compute-bound policy.
    """
    conversation = multi_turn_conversation(
        num_turns=4, system_tokens=1024, turn_tokens=TURN_TOKENS, seed=9,
    )
    prompts = [
        conversation.prompt_for_turn(t, conversation.initial_history())
        for t in range(4)
    ]

    def drive(caching: bool, policy: "str | None") -> tuple[float, float]:
        engine = make_engine(substrate, caching)
        prefill_seconds = 0.0
        for prompt in prompts:
            out = serve_turn(engine, prompt, policy)
            prefill_seconds += out.metrics.prefill_seconds
        return prefill_seconds, engine.metrics.clock

    cold_full, cold_full_clock = drive(False, None)
    warm_full, warm_full_clock = drive(True, None)
    cold_pq, cold_pq_clock = drive(False, "pqcache")
    warm_pq, warm_pq_clock = drive(True, "pqcache")
    speedup_full = cold_full / warm_full
    speedup_pq = cold_pq / warm_pq
    print(f"\n=== Shared-system-prompt batch (4 requests, 1024-token system "
          f"prompt; aggregate prefill seconds) ===\n"
          f"  full-attention: cold {cold_full:.6f}s, warm {warm_full:.6f}s, "
          f"speedup {speedup_full:.2f}x "
          f"(total clock {cold_full_clock:.5f}s → {warm_full_clock:.5f}s)\n"
          f"  pqcache:        cold {cold_pq:.6f}s, warm {warm_pq:.6f}s, "
          f"speedup {speedup_pq:.2f}x (refine dominates at toy geometry; "
          f"total clock {cold_pq_clock:.5f}s → {warm_pq_clock:.5f}s)")
    # Requests 2-4 reuse the system prompt; their prefill cost must shrink
    # accordingly for the compute-bound policy, and must never regress for
    # PQCache (whose honest full-prompt refine bounds its toy-scale gain).
    assert speedup_full > 1.5
    assert speedup_pq > 1.0
