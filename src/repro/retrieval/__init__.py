"""Stand-alone ANN retrieval library: flat, IVF and PQ indexes plus metrics."""

from .flat import FlatIndex
from .ivf import IVFIndex
from .metrics import recall_at_k, score_distortion
from .pq_index import PQIndex

__all__ = ["FlatIndex", "IVFIndex", "PQIndex", "recall_at_k", "score_distortion"]
