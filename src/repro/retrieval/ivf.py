"""IVF (inverted file) approximate index.

The paper's §5 discussion lists IVF and graph indexes as future extensions of
PQCache; this module provides the IVF building block so that extension can be
prototyped and compared against pure PQ (see the ablation benchmark).  Vectors
are clustered into ``n_lists`` coarse cells; a query probes the ``n_probe``
closest cells and scores only their members.
"""

from __future__ import annotations

import numpy as np

from ..core.kmeans import kmeans_fit
from ..errors import ConfigurationError, DimensionError, NotFittedError
from ..utils import check_2d, topk_indices

__all__ = ["IVFIndex"]


class IVFIndex:
    """Inverted-file index with exact scoring inside probed cells."""

    def __init__(self, dim: int, n_lists: int = 16, n_probe: int = 4,
                 seed: int = 0) -> None:
        if dim <= 0:
            raise DimensionError("dim must be positive")
        if n_lists <= 0 or n_probe <= 0:
            raise ConfigurationError("n_lists and n_probe must be positive")
        self.dim = dim
        self.n_lists = n_lists
        self.n_probe = min(n_probe, n_lists)
        self.seed = seed
        self._centroids: np.ndarray | None = None
        self._lists: list[np.ndarray] = []
        self._list_ids: list[np.ndarray] = []
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def train(self, vectors: np.ndarray, max_iter: int = 25) -> None:
        """Cluster the training vectors into coarse cells and index them."""
        vectors = check_2d(vectors, "vectors")
        if vectors.shape[1] != self.dim:
            raise DimensionError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        result = kmeans_fit(vectors, self.n_lists, max_iter=max_iter, seed=self.seed)
        self._centroids = result.centroids
        self._lists = []
        self._list_ids = []
        for cell in range(self.n_lists):
            members = np.flatnonzero(result.labels == cell)
            self._lists.append(vectors[members].copy())
            self._list_ids.append(members.astype(np.int64))
        self._size = vectors.shape[0]

    def add(self, vectors: np.ndarray) -> None:
        """Assign new vectors to their nearest cell."""
        if self._centroids is None:
            raise NotFittedError("train must be called before add")
        vectors = check_2d(vectors, "vectors")
        dists = (
            np.sum(vectors ** 2, axis=1, keepdims=True)
            - 2.0 * vectors @ self._centroids.T
            + np.sum(self._centroids ** 2, axis=1)[None, :]
        )
        cells = np.argmin(dists, axis=1)
        for offset, cell in enumerate(cells):
            vector_id = self._size + offset
            self._lists[cell] = np.concatenate(
                [self._lists[cell], vectors[offset][None, :]], axis=0
            )
            self._list_ids[cell] = np.concatenate(
                [self._list_ids[cell], np.asarray([vector_id], dtype=np.int64)]
            )
        self._size += vectors.shape[0]

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-k among the ``n_probe`` closest cells (inner-product scores)."""
        if self._centroids is None or self._size == 0:
            raise NotFittedError("index is empty")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise DimensionError(f"query must have dim {self.dim}")
        cell_scores = self._centroids @ query
        probe_cells = topk_indices(cell_scores, self.n_probe)
        candidate_ids = []
        candidate_scores = []
        for cell in probe_cells:
            members = self._lists[cell]
            if members.shape[0] == 0:
                continue
            candidate_ids.append(self._list_ids[cell])
            candidate_scores.append(members @ query)
        if not candidate_ids:
            return np.empty(0, dtype=np.int64), np.empty(0)
        ids = np.concatenate(candidate_ids)
        scores = np.concatenate(candidate_scores)
        order = topk_indices(scores, min(k, scores.size))
        return ids[order], scores[order]
