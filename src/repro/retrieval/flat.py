"""Exact (flat) maximum-inner-product search.

The reference point for the approximate indexes: scores every stored vector
against the query.  PQCache's Oracle policy is the attention-side equivalent
of this index.
"""

from __future__ import annotations

import numpy as np

from ..errors import DimensionError, NotFittedError
from ..utils import check_2d, topk_indices

__all__ = ["FlatIndex"]


class FlatIndex:
    """Brute-force inner-product index."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise DimensionError("dim must be positive")
        self.dim = dim
        self._vectors: np.ndarray | None = None

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else int(self._vectors.shape[0])

    def add(self, vectors: np.ndarray) -> None:
        """Append vectors to the index."""
        vectors = check_2d(vectors, "vectors")
        if vectors.shape[1] != self.dim:
            raise DimensionError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        if self._vectors is None:
            self._vectors = vectors.copy()
        else:
            self._vectors = np.concatenate([self._vectors, vectors], axis=0)

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-k indices and scores by inner product."""
        if self._vectors is None:
            raise NotFittedError("index is empty")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise DimensionError(f"query must have dim {self.dim}")
        scores = self._vectors @ query
        idx = topk_indices(scores, k)
        return idx, scores[idx]
