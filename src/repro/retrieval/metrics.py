"""Retrieval-quality metrics (recall@k and score distortion)."""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k", "score_distortion"]


def recall_at_k(approx_ids: np.ndarray, exact_ids: np.ndarray) -> float:
    """Fraction of the exact result set recovered by the approximate one."""
    exact_ids = np.asarray(exact_ids, dtype=np.int64)
    approx_ids = np.asarray(approx_ids, dtype=np.int64)
    if exact_ids.size == 0:
        return 1.0
    return float(np.isin(exact_ids, approx_ids).mean())


def score_distortion(approx_scores: np.ndarray, exact_scores: np.ndarray) -> float:
    """Mean absolute difference between approximate and exact scores of the
    same candidate set, normalised by the exact score spread."""
    approx_scores = np.asarray(approx_scores, dtype=np.float64)
    exact_scores = np.asarray(exact_scores, dtype=np.float64)
    spread = float(exact_scores.max() - exact_scores.min()) if exact_scores.size else 1.0
    spread = max(spread, 1e-12)
    return float(np.mean(np.abs(approx_scores - exact_scores)) / spread)
