"""PQ-backed approximate index built on :class:`repro.core.pq.ProductQuantizer`.

A thin vector-database-style wrapper (add / search) so the retrieval quality
of PQ can be studied in isolation from the LLM machinery, and so the §5
"other ANNS techniques" discussion has a uniform interface to compare
against (:class:`~repro.retrieval.flat.FlatIndex`,
:class:`~repro.retrieval.ivf.IVFIndex`).
"""

from __future__ import annotations

import numpy as np

from ..core.pq import PQConfig, ProductQuantizer
from ..errors import DimensionError, NotFittedError
from ..utils import check_2d, topk_indices

__all__ = ["PQIndex"]


class PQIndex:
    """Approximate inner-product index using product quantization codes."""

    def __init__(self, config: PQConfig) -> None:
        self.config = config
        self._pq = ProductQuantizer(config)
        self._codes: np.ndarray | None = None

    @property
    def size(self) -> int:
        return 0 if self._codes is None else int(self._codes.shape[0])

    @property
    def is_trained(self) -> bool:
        return self._pq.is_fitted

    def train(self, vectors: np.ndarray) -> None:
        """Train codebooks and index the training vectors."""
        self._codes = self._pq.fit(vectors)

    def add(self, vectors: np.ndarray) -> None:
        """Encode and append vectors (codebooks must be trained)."""
        if not self._pq.is_fitted:
            raise NotFittedError("train must be called before add")
        vectors = check_2d(vectors, "vectors")
        codes = self._pq.encode(vectors)
        if self._codes is None:
            self._codes = codes
        else:
            self._codes = np.concatenate([self._codes, codes], axis=0)

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k indices and ADC scores."""
        if self._codes is None or self._codes.shape[0] == 0:
            raise NotFittedError("index is empty")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.config.dim:
            raise DimensionError(f"query must have dim {self.config.dim}")
        scores = self._pq.score(query, self._codes)
        idx = topk_indices(scores, k)
        return idx, scores[idx]

    def memory_bytes(self) -> dict:
        """Codes + centroid storage of the index."""
        return self._pq.memory_footprint(self.size)
