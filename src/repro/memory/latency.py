"""Analytical latency models for prefilling and decoding (Figures 8, 11, 12).

The models combine the device specifications (:mod:`repro.memory.devices`),
the model geometry (:class:`repro.llm.ModelConfig`), the PQ configuration and
the overlap scheduler (:class:`repro.memory.timeline.Timeline`) to predict:

* per-layer prefill compute / offload / clustering time (Figure 8),
* Time-To-Second-Token per method (Figure 11a),
* Time-Per-Output-Token per method and its scaling with sequence length
  (Figure 11b, 11c),
* prefill and decode time decompositions (Figure 12a, 12b).

Each method's communication pattern follows §4.3: dropping methods move no
data; SPARQ's partial-key fetch is blocking and scales with the sequence
length; InfLLM fetches representatives (overlappable) plus chosen blocks;
PQCache prefetches PQ codes (overlappable) and fetches top-k key/values,
partially served by the GPU block cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pqcache import PQCacheConfig
from ..errors import ConfigurationError
from ..llm.config import ModelConfig
from .devices import HardwareSpec
from .timeline import Resource, Timeline

__all__ = ["MethodLatencyProfile", "LatencyModel", "resolve_method"]

#: methods understood by the latency model
_METHODS = (
    "full", "h2o", "snapkv", "pyramidkv", "sparq", "infllm", "pqcache", "oracle",
)


@dataclass(frozen=True)
class MethodLatencyProfile:
    """Latency-relevant behaviour of one method.

    Attributes:
        name: method name.
        prefill_extra: ``"none"``, ``"dense-scores"`` (H2O materialises the
            full attention matrix and cannot use FlashAttention), or
            ``"block-setup"`` (InfLLM's block metadata construction).
        decode_blocking_fetch: whether the per-step fetch depends on the
            current query (and therefore cannot be prefetched).
        uses_pq: whether PQ construction/search costs apply.
    """

    name: str
    prefill_extra: str = "none"
    decode_blocking_fetch: bool = False
    uses_pq: bool = False


_PROFILES = {
    "full": MethodLatencyProfile("full"),
    "oracle": MethodLatencyProfile("oracle", decode_blocking_fetch=True),
    "h2o": MethodLatencyProfile("h2o", prefill_extra="dense-scores"),
    "snapkv": MethodLatencyProfile("snapkv"),
    "pyramidkv": MethodLatencyProfile("pyramidkv"),
    "sparq": MethodLatencyProfile("sparq", decode_blocking_fetch=True),
    "infllm": MethodLatencyProfile("infllm", prefill_extra="block-setup",
                                   decode_blocking_fetch=True),
    "pqcache": MethodLatencyProfile("pqcache", decode_blocking_fetch=True,
                                    uses_pq=True),
}


def resolve_method(policy_name: str | None, is_dropping: bool = False) -> str:
    """Map a policy name onto the latency model's method vocabulary.

    The serving engine uses this to pick the latency profile of a request's
    policy: compensated-variant suffixes (``"h2o(c)"``) are stripped,
    ``None`` means full attention, StreamingLLM shares the dropping methods'
    no-communication profile, and unknown policies fall back to the dropping
    profile (no traffic) or the blocking-fetch offloading profile.
    """
    if policy_name is None:
        return "full"
    base = policy_name.split("(")[0].strip().lower()
    if base in _METHODS:
        return base
    if base == "streaming-llm" or is_dropping:
        return "snapkv"
    return "sparq"


class LatencyModel:
    """Prefill/decode latency estimator for every method in the paper."""

    def __init__(
        self,
        hardware: HardwareSpec,
        model: ModelConfig,
        pq_config: PQCacheConfig | None = None,
        token_ratio: float = 0.2,
        comm_ratio: float = 1.0 / 128.0,
        kmeans_iterations: int = 16,
        max_retrieval_tokens: int = 4096,
    ) -> None:
        if not 0 < token_ratio <= 1:
            raise ConfigurationError("token_ratio must be in (0, 1]")
        self.hardware = hardware
        self.model = model
        self.pq_config = pq_config or PQCacheConfig()
        self.token_ratio = token_ratio
        self.comm_ratio = comm_ratio
        self.kmeans_iterations = kmeans_iterations
        #: cap on the per-step key/value fetch for the retrieval methods.  In
        #: the paper's serving configuration the retrieval set is bounded by
        #: the GPU-resident working set (the 4K-token GPU cache), which is why
        #: PQCache's TPOT stays nearly flat as the context grows (Fig 11b).
        self.max_retrieval_tokens = max_retrieval_tokens

    # ----------------------------------------------------------- components

    def layer_prefill_compute_seconds(self, seq_len: int) -> float:
        """GPU compute time of one transformer layer during prefilling."""
        flops = self.model.layer_flops_prefill(seq_len)
        return self.hardware.gpu.compute_seconds(flops)

    def layer_offload_seconds(self, seq_len: int) -> float:
        """D2H time to offload one layer's keys and values."""
        num_bytes = seq_len * self.model.kv_bytes_per_token_per_layer()
        return self.hardware.interconnect.transfer_seconds(num_bytes)

    def layer_clustering_seconds(self, seq_len: int, iterations: int | None = None) -> float:
        """CPU time of K-Means clustering for one layer (all heads/groups).

        One clustering job exists per (KV head, partition); jobs run in
        parallel across cores, each using the per-job FLOP count
        ``s * 2**b * d_m * T`` for distance computations (§3.2).
        """
        iters = self.kmeans_iterations if iterations is None else iterations
        cfg = self.pq_config
        d_m = self.model.head_dim // cfg.num_partitions
        flops_per_job = 2.0 * seq_len * (1 << cfg.num_bits) * d_m * max(iters, 1)
        num_jobs = self.model.num_kv_heads * cfg.num_partitions
        workers = min(num_jobs * 4, self.hardware.cpu.cores)
        total_flops = flops_per_job * num_jobs
        return self.hardware.cpu.compute_seconds(total_flops, parallel_workers=workers)

    def layer_decode_compute_seconds(self, seq_len: int, method: str) -> float:
        """GPU compute time of one layer for a single decode step."""
        attended = seq_len if method == "full" else int(self.token_ratio * seq_len)
        flops = self.model.layer_flops_decode(seq_len, attended_tokens=max(attended, 1))
        return self.hardware.gpu.compute_seconds(flops)

    def pq_search_seconds(self, seq_len: int) -> float:
        """GPU time of the PQ score computation + top-k for one layer (§3.2)."""
        cfg = self.pq_config
        model = self.model
        table_flops = 2.0 * (1 << cfg.num_bits) * model.hidden_dim * model.head_dim / model.num_heads
        gather_flops = 2.0 * model.num_kv_heads * cfg.num_partitions * seq_len
        topk_flops = 4.0 * model.num_kv_heads * seq_len
        return self.hardware.gpu.compute_seconds(table_flops + gather_flops + topk_flops)

    def _decode_comm_bytes(self, seq_len: int, method: str) -> tuple[float, float]:
        """(overlappable, blocking) bytes of one layer's decode step."""
        model = self.model
        dtype = model.dtype_bytes
        k_full = max(int(self.token_ratio * seq_len), 1)
        # PQCache and InfLLM bound their per-step fetch by a GPU-resident
        # working set (block cache / block management); SPARQ and the Oracle
        # must fetch the full top-k from CPU every step.
        k_capped = max(min(k_full, self.max_retrieval_tokens), 1)
        per_token = model.num_kv_heads * 2 * model.head_dim * dtype
        if method in ("h2o", "snapkv", "pyramidkv", "full"):
            return 0.0, 0.0
        if method == "oracle":
            return 0.0, k_full * per_token
        if method == "sparq":
            # SPARQ scores with per-query-head dimension subsets, so the
            # partial keys are fetched at query-head granularity.
            r = max(int(round(self.comm_ratio * model.head_dim)), 1)
            partial = seq_len * model.num_heads * r * dtype
            return 0.0, partial + k_full * per_token
        if method == "infllm":
            reps = max(int(round(self.comm_ratio * 128)), 1)
            rep_bytes = (seq_len / 128.0) * reps * model.num_kv_heads * model.head_dim * dtype
            return rep_bytes, k_capped * per_token
        if method == "pqcache":
            codes = (
                model.num_kv_heads * seq_len
                * self.pq_config.code_bytes_per_token_per_head()
            )
            return codes, k_capped * per_token
        raise ConfigurationError(f"unknown method {method!r}")

    # -------------------------------------------------------------- prefill

    def prefill_decomposition(self, seq_len: int, iterations: int | None = None) -> dict:
        """Per-layer prefill component times (Figure 8 / 12a)."""
        return {
            "compute": self.layer_prefill_compute_seconds(seq_len),
            "offload": self.layer_offload_seconds(seq_len),
            "clustering": self.layer_clustering_seconds(seq_len, iterations),
        }

    def prefill_timeline(self, seq_len: int, method: str = "pqcache",
                         iterations: int | None = None) -> Timeline:
        """Overlap schedule of the whole prefilling phase for one method."""
        self._check_method(method)
        profile = _PROFILES[method]
        timeline = Timeline()
        compute = self.layer_prefill_compute_seconds(seq_len)
        if profile.prefill_extra == "dense-scores":
            # H2O materialises (h, s, s) attention scores; model the extra
            # memory traffic it costs on top of FlashAttention-style compute.
            score_bytes = self.model.num_heads * seq_len * seq_len * self.model.dtype_bytes
            compute += 3.0 * self.hardware.gpu.memory_seconds(score_bytes)
        offload = self.layer_offload_seconds(seq_len)
        clustering = self.layer_clustering_seconds(seq_len, iterations)

        prev_compute = None
        for layer in range(self.model.num_layers):
            compute_name = f"compute-L{layer}"
            deps = (prev_compute,) if prev_compute else ()
            timeline.add(compute_name, Resource.GPU, compute, deps)
            if method in ("pqcache", "sparq", "infllm", "oracle"):
                offload_name = f"offload-L{layer}"
                timeline.add(offload_name, Resource.D2H, offload, (compute_name,))
                if profile.uses_pq:
                    timeline.add(f"cluster-L{layer}", Resource.CPU, clustering,
                                 (offload_name,))
            if profile.prefill_extra == "block-setup":
                timeline.add(f"blocks-L{layer}", Resource.CPU, clustering * 0.1,
                             (compute_name,))
            prev_compute = compute_name
        return timeline

    # ------------------------------------------------------ chunked prefill

    def _layer_chunk_compute_seconds(self, chunk_len: int, prefix_len: int,
                                     profile: MethodLatencyProfile) -> float:
        """GPU compute of one layer for one prefill chunk."""
        flops = self.model.layer_flops_prefill_chunk(chunk_len, prefix_len)
        seconds = self.hardware.gpu.compute_seconds(flops)
        if profile.prefill_extra == "dense-scores":
            # Same telescoping quadratic as the attention FLOPs, so any
            # chunking's score-traffic charges sum to the monolithic
            # ``h * s^2`` bytes H2O pays for materialised attention scores.
            total = prefix_len + chunk_len
            quad = float(total) ** 2 - float(prefix_len) ** 2
            score_bytes = self.model.num_heads * quad * self.model.dtype_bytes
            seconds += 3.0 * self.hardware.gpu.memory_seconds(score_bytes)
        return seconds

    def prefill_chunk_seconds(self, chunk_len: int, prefix_len: int,
                              method: str = "pqcache") -> float:
        """GPU compute of one prefill chunk across all layers.

        This is the clock charge of one chunked-prefill engine step: the
        chunk's offload / clustering / encode work runs on other resources
        and overlaps, so only GPU compute is charged per chunk; whatever
        overlap cannot hide is settled once at completion via the residual of
        :meth:`chunked_prefill_timeline` over the charged chunks.  The chunk
        FLOP model telescopes, so the charges of any chunking sum to the
        monolithic compute of the same prompt.
        """
        self._check_method(method)
        profile = _PROFILES[method]
        return self._layer_chunk_compute_seconds(
            chunk_len, prefix_len, profile
        ) * self.model.num_layers

    def chunked_prefill_timeline(
        self,
        chunk_lens: "list[int] | tuple[int, ...]",
        method: str = "pqcache",
        iterations: int | None = None,
        sketch_tokens: int = 256,
        cached_prefix_tokens: int = 0,
    ) -> Timeline:
        """Overlap schedule of a chunked prefill (Figure 7's pipeline view).

        ``cached_prefix_tokens`` models a shared-prefix cache hit: the first
        that-many tokens cost **nothing** — no compute, offload or
        clustering tasks are emitted for them (the compute of the real
        chunks still accounts for attending over the cached prefix, via the
        telescoping chunk-FLOP model).  When the cached prefix already
        covers the sketch, codebook fitting is skipped entirely (the PQ
        artifacts are reused by reference) and later chunks only pay
        stream-encoding plus the final refinement.

        Models the per-chunk tasks of the incremental construction pipeline
        as dependency-linked :class:`~repro.memory.timeline.Task` objects:

        * ``compute-C{c}-L{l}`` (GPU) — chunk ``c`` through layer ``l``;
          GPU tasks serialise in (chunk, layer) order.
        * ``offload-C{c}-L{l}`` (D2H) — the chunk's keys/values of that
          layer move to host memory once its compute finished.
        * ``cluster-L{l}`` (CPU) — sketch-based K-Means fit for the layer,
          runnable as soon as the sketch chunk's offload finished.
        * ``encode-C{c}-L{l}`` (CPU) — stream-encoding of a later chunk,
          needs the layer's codebooks and the chunk's offloaded keys.
        * ``refine-L{l}`` (CPU) — Lloyd refinement over the retrieval
          candidates accumulated before the final chunk (the trailing chunk
          is local-window territory and is only stream-encoded), warm-started
          from the sketch codebooks so it needs roughly half the fit budget.
          It is gated on the second-to-last chunk's offload, so early layers
          refine while the last — most expensive — chunk is still computing,
          which is exactly the overlap the paper exploits.

        The makespan is therefore a genuinely overlapped schedule — strictly
        below the sequential sum of compute + offload + clustering — rather
        than the per-layer steady-state approximation of
        :meth:`prefill_timeline`.
        """
        self._check_method(method)
        if not chunk_lens or any(int(c) <= 0 for c in chunk_lens):
            raise ConfigurationError("chunk_lens must be non-empty and positive")
        if cached_prefix_tokens < 0:
            raise ConfigurationError("cached_prefix_tokens must be >= 0")
        profile = _PROFILES[method]
        offloading = method in ("pqcache", "sparq", "infllm", "oracle")
        timeline = Timeline()
        layers = self.model.num_layers
        cached = int(cached_prefix_tokens)
        total = cached + sum(int(c) for c in chunk_lens)

        # First chunk index at which the sketch (or the whole short prompt)
        # is available for codebook fitting.  A cached prefix that already
        # covers the sketch means the codebooks arrive pre-fitted with the
        # attached PQ snapshot: no cluster task at all.
        sketch_target = min(sketch_tokens, total)
        sketch_cached = cached >= sketch_target
        seen = cached
        sketch_chunk = -1 if sketch_cached else len(chunk_lens) - 1
        if not sketch_cached:
            for index, chunk in enumerate(chunk_lens):
                seen += int(chunk)
                if seen >= sketch_target:
                    sketch_chunk = index
                    break

        # The refinement pass covers the retrieval candidates offloaded up to
        # the second-to-last chunk (the trailing chunk is local-window
        # territory, only stream-encoded), so it is gated on that chunk and
        # overlaps the final — most expensive — chunk's compute.  It is
        # submitted right after its gate chunk: submission order is priority
        # on the serial CPU stream, and queueing it behind the last chunk's
        # encodes would needlessly push it past the end of compute.
        refine_gate = -1
        if profile.uses_pq and (len(chunk_lens) > 1 or sketch_cached):
            refine_gate = max(len(chunk_lens) - 2, sketch_chunk, 0)

        prev_gpu: str | None = None
        prefix = cached
        for c, chunk in enumerate(chunk_lens):
            chunk = int(chunk)
            compute = self._layer_chunk_compute_seconds(chunk, prefix, profile)
            offload = self.hardware.interconnect.transfer_seconds(
                chunk * self.model.kv_bytes_per_token_per_layer()
            )
            for layer in range(layers):
                compute_name = f"compute-C{c}-L{layer}"
                deps = (prev_gpu,) if prev_gpu else ()
                timeline.add(compute_name, Resource.GPU, compute, deps)
                prev_gpu = compute_name
                if not offloading:
                    continue
                offload_name = f"offload-C{c}-L{layer}"
                timeline.add(offload_name, Resource.D2H, offload, (compute_name,))
                if profile.prefill_extra == "block-setup":
                    # InfLLM's block-metadata construction is linear in the
                    # chunk length, so the per-chunk slices sum exactly to
                    # the monolithic timeline's per-layer setup cost.
                    timeline.add(
                        f"blocks-C{c}-L{layer}", Resource.CPU,
                        self.layer_clustering_seconds(chunk, iterations) * 0.1,
                        (compute_name,),
                    )
                if not profile.uses_pq:
                    continue
                if c == sketch_chunk:
                    timeline.add(
                        f"cluster-L{layer}", Resource.CPU,
                        self.layer_clustering_seconds(
                            min(prefix + chunk, sketch_tokens), iterations
                        ),
                        (offload_name,),
                    )
                elif c > sketch_chunk:
                    # One assignment pass over the chunk == a single Lloyd
                    # iteration's distance computations.  With the sketch
                    # served from the prefix cache there is no cluster task
                    # to wait for — encoding starts as soon as the chunk's
                    # keys are on the host.
                    encode_deps = (
                        (offload_name,)
                        if sketch_cached
                        else (f"cluster-L{layer}", offload_name)
                    )
                    timeline.add(
                        f"encode-C{c}-L{layer}", Resource.CPU,
                        self.layer_clustering_seconds(chunk, iterations=1),
                        encode_deps,
                    )
            prefix += chunk
            if offloading and profile.uses_pq and c == refine_gate:
                base_iters = (
                    self.kmeans_iterations if iterations is None else iterations
                )
                # Warm-started from the sketch codebooks: roughly half the
                # from-scratch Lloyd budget suffices.  The pass covers the
                # *full* prompt even on a cache hit — the implemented
                # pipeline re-refines every encoded key (that is what keeps
                # hit and cold decode outputs byte-identical), so the clock
                # bills it honestly; the cache-hit savings are the skipped
                # compute/offload/sketch-fit/encode tasks, not the refine.
                refine = self.layer_clustering_seconds(
                    prefix, max(base_iters // 2, 1)
                )
                for layer in range(layers):
                    deps = [f"offload-C{c}-L{layer}"]
                    if not sketch_cached:
                        deps.append(f"cluster-L{layer}")
                    if c > sketch_chunk:
                        deps.append(f"encode-C{c}-L{layer}")
                    timeline.add(
                        f"refine-L{layer}", Resource.CPU, refine, tuple(deps)
                    )
        return timeline

    # ------------------------------------------------------------- swapping

    def codec_seconds(self, flops: float) -> float:
        """CPU time of one KV-codec encode/decode pass (``0.0`` for raw).

        Codec work runs on the host cores (the GPU is busy with the batch),
        so it is billed at the full :class:`~repro.memory.devices.CpuSpec`
        throughput.  At the few-flops-per-byte rates the codecs declare this
        is ~10× cheaper than the PCIe transfer it shrinks.
        """
        if flops < 0:
            raise ConfigurationError("codec flops must be >= 0")
        if flops == 0:
            return 0.0
        return self.hardware.cpu.compute_seconds(flops)

    def swap_out_timeline(
        self,
        num_bytes: float,
        disk_bytes: float = 0.0,
        encode_flops: float = 0.0,
    ) -> Timeline:
        """Overlap schedule of one swap-out event (preemption / cold spill).

        When ``encode_flops > 0`` a ``swap-encode`` CPU stage runs first —
        the codec squeezes the chain before it travels, so the transfer legs
        carry *wire* bytes and depend on the encode.  ``num_bytes`` (wire)
        leave the GPU over PCIe (D2H); of those, ``disk_bytes`` continue to
        the NVMe tier as a dependency-linked write — a chain spilled
        straight to disk still crosses PCIe first, so the disk write cannot
        start before the transfer delivered the bytes.  Demotions of
        already-CPU-resident chains are modelled by calling with
        ``num_bytes=0`` (pure disk write, no PCIe leg).
        """
        if num_bytes < 0 or disk_bytes < 0:
            raise ConfigurationError("swap byte counts must be >= 0")
        timeline = Timeline()
        prev: tuple[str, ...] = ()
        if encode_flops > 0:
            timeline.add(
                "swap-encode", Resource.CPU, self.codec_seconds(encode_flops)
            )
            prev = ("swap-encode",)
        if num_bytes > 0:
            timeline.add(
                "swap-d2h", Resource.D2H,
                self.hardware.interconnect.transfer_seconds(num_bytes), prev,
            )
            prev = ("swap-d2h",)
        if disk_bytes > 0:
            timeline.add(
                "swap-disk-write", Resource.DISK,
                self.hardware.storage.write_seconds(disk_bytes), prev,
            )
        return timeline

    def swap_in_timeline(
        self,
        num_bytes: float,
        disk_bytes: float = 0.0,
        decode_flops: float = 0.0,
    ) -> Timeline:
        """Overlap schedule of one swap-in / restore event.

        ``disk_bytes`` (wire) are first read back from NVMe; the H2D
        transfer of all ``num_bytes`` (wire) onto the GPU depends on that
        read (the PCIe leg cannot ship bytes the drive has not produced
        yet).  When ``decode_flops > 0`` a trailing ``swap-decode`` CPU
        stage unpacks the codec's wire form back into pool blocks.
        """
        if num_bytes < 0 or disk_bytes < 0:
            raise ConfigurationError("swap byte counts must be >= 0")
        timeline = Timeline()
        prev: tuple[str, ...] = ()
        if disk_bytes > 0:
            timeline.add(
                "swap-disk-read", Resource.DISK,
                self.hardware.storage.read_seconds(disk_bytes),
            )
            prev = ("swap-disk-read",)
        if num_bytes > 0:
            timeline.add(
                "swap-h2d", Resource.H2D,
                self.hardware.interconnect.transfer_seconds(num_bytes), prev,
            )
            prev = ("swap-h2d",)
        if decode_flops > 0:
            timeline.add(
                "swap-decode", Resource.CPU,
                self.codec_seconds(decode_flops), prev,
            )
        return timeline

    def swap_out_seconds(
        self,
        num_bytes: float,
        disk_bytes: float = 0.0,
        encode_flops: float = 0.0,
    ) -> float:
        """Makespan of one swap-out event (what the engine clock charges)."""
        return self.swap_out_timeline(num_bytes, disk_bytes,
                                      encode_flops).makespan

    def swap_in_seconds(
        self,
        num_bytes: float,
        disk_bytes: float = 0.0,
        decode_flops: float = 0.0,
    ) -> float:
        """Makespan of one swap-in / restore event."""
        return self.swap_in_timeline(num_bytes, disk_bytes,
                                     decode_flops).makespan

    def migration_timeline(
        self,
        kv_bytes: float,
        disk_bytes: float = 0.0,
        encode_flops: float = 0.0,
        decode_flops: float = 0.0,
    ) -> Timeline:
        """Overlap schedule of one cross-worker prefix-chain migration.

        Shipping a cached chain from the worker that owns it to the worker a
        request was routed to has the swap-in shape: the owning worker's
        NVMe produces ``disk_bytes`` (the spilled wire-form KV plus artifact
        payloads), then all ``kv_bytes`` (wire) cross PCIe into the target
        GPU's block pool as a dependency-linked H2D transfer.  Spilled
        positions travel in their parked encoded form, so only GPU-resident
        (pinned) positions need an ``migrate-encode`` pass — it runs on the
        source CPU concurrently with the disk read, and both feed the H2D
        leg.  ``decode_flops`` bills the importer's single decode as a
        trailing ``swap-decode`` stage.  The cluster frontend charges the
        makespan to the *target* worker's clock, so a migrated request's
        TTFT honestly includes the transfer it waited on.
        """
        if kv_bytes < 0 or disk_bytes < 0:
            raise ConfigurationError("swap byte counts must be >= 0")
        timeline = Timeline()
        h2d_deps: list[str] = []
        if encode_flops > 0:
            timeline.add(
                "migrate-encode", Resource.CPU, self.codec_seconds(encode_flops)
            )
            h2d_deps.append("migrate-encode")
        if disk_bytes > 0:
            timeline.add(
                "swap-disk-read", Resource.DISK,
                self.hardware.storage.read_seconds(disk_bytes),
            )
            h2d_deps.append("swap-disk-read")
        prev = tuple(h2d_deps)
        if kv_bytes > 0:
            timeline.add(
                "swap-h2d", Resource.H2D,
                self.hardware.interconnect.transfer_seconds(kv_bytes), prev,
            )
            prev = ("swap-h2d",)
        if decode_flops > 0:
            timeline.add(
                "swap-decode", Resource.CPU,
                self.codec_seconds(decode_flops), prev,
            )
        return timeline

    def migration_seconds(
        self,
        kv_bytes: float,
        disk_bytes: float = 0.0,
        encode_flops: float = 0.0,
        decode_flops: float = 0.0,
    ) -> float:
        """Makespan of one cross-worker chain migration."""
        return self.migration_timeline(
            kv_bytes, disk_bytes, encode_flops, decode_flops
        ).makespan

    # --------------------------------------------------------------- decode

    def decode_decomposition(self, seq_len: int, method: str = "pqcache",
                             cache_hit_rate: float = 0.0) -> dict:
        """Per-step decode component times, summed over all layers (Fig 12b)."""
        self._check_method(method)
        layers = self.model.num_layers
        profile = _PROFILES[method]
        compute = self.layer_decode_compute_seconds(seq_len, method) * layers
        pq_search = self.pq_search_seconds(seq_len) * layers if profile.uses_pq else 0.0
        overlappable, blocking = self._decode_comm_bytes(seq_len, method)
        if method == "pqcache":
            blocking *= max(1.0 - cache_hit_rate, 0.0)
        interconnect = self.hardware.interconnect
        return {
            "llm_compute": compute,
            "pq_compute": pq_search,
            "overlappable_comm": interconnect.transfer_seconds(overlappable) * layers,
            "blocking_comm": interconnect.transfer_seconds(blocking) * layers,
        }

    def tpot(self, seq_len: int, method: str = "pqcache",
             cache_hit_rate: float = 0.0) -> float:
        """Time-Per-Output-Token: blocking components only (overlappable
        communication hides behind the next layer's compute)."""
        parts = self.decode_decomposition(seq_len, method, cache_hit_rate)
        overlap_penalty = max(
            parts["overlappable_comm"] - parts["llm_compute"], 0.0
        )
        return parts["llm_compute"] + parts["pq_compute"] + parts["blocking_comm"] + overlap_penalty

    def tt2t(self, seq_len: int, method: str = "pqcache",
             iterations: int | None = None, cache_hit_rate: float = 0.0) -> float:
        """Time-To-Second-Token: prefill makespan + one decode step (Fig 11a).

        The paper uses TT2T instead of TTFT because PQ construction overlaps
        prefilling and only affects the *second* token.
        """
        timeline = self.prefill_timeline(seq_len, method, iterations)
        return timeline.makespan + self.tpot(seq_len, method, cache_hit_rate)

    def gpu_memory_required_prefill(self, seq_len: int, method: str) -> float:
        """Bytes of GPU memory the prefilling phase needs (OOM check for H2O)."""
        weights = 2.0 * self.model.num_layers * (
            4 * self.model.hidden_dim ** 2
            + 3 * self.model.hidden_dim * self.model.ffn_dim
        ) * self.model.dtype_bytes / 2.0
        kv = self.model.kvcache_bytes(seq_len)
        extra = 0.0
        if _PROFILES[method].prefill_extra == "dense-scores":
            extra = self.model.num_heads * float(seq_len) ** 2 * self.model.dtype_bytes
        return weights + kv + extra

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _check_method(method: str) -> None:
        if method not in _METHODS:
            raise ConfigurationError(
                f"unknown method {method!r}; valid: {', '.join(_METHODS)}"
            )

    @staticmethod
    def methods() -> tuple[str, ...]:
        return _METHODS
