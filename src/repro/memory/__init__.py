"""GPU-CPU memory hierarchy simulation: device specs, overlap timelines and
latency models for prefilling and decoding."""

from .devices import CpuSpec, GpuSpec, HardwareSpec, InterconnectSpec, StorageSpec
from .latency import LatencyModel, MethodLatencyProfile, resolve_method
from .timeline import Resource, Task, Timeline

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "HardwareSpec",
    "InterconnectSpec",
    "StorageSpec",
    "LatencyModel",
    "MethodLatencyProfile",
    "resolve_method",
    "Resource",
    "Task",
    "Timeline",
]
