"""Device models for the GPU-CPU memory hierarchy (paper §2.3).

The paper's efficiency experiments run on an RTX 4090 connected to two Xeon
Gold 6330 CPUs over PCIe 1.0 x16.  Without that hardware, latency results are
reproduced with an analytical model parameterised by published device
characteristics: sustained compute throughput, memory bandwidth, and
interconnect bandwidth.  Absolute numbers will differ from the paper's
measurements; the *shapes* (what scales linearly vs quadratically, what can
overlap with what) are what the benchmarks check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["GpuSpec", "CpuSpec", "InterconnectSpec", "StorageSpec", "HardwareSpec"]


@dataclass(frozen=True)
class GpuSpec:
    """GPU compute/memory characteristics.

    Attributes:
        name: label used in reports.
        tflops: sustained half-precision throughput in TFLOP/s (matmul-bound
            kernels rarely exceed ~60-70% of peak; use a sustained figure).
        memory_gb: device memory capacity.
        memory_bandwidth_gbps: HBM/GDDR bandwidth in GB/s.
    """

    name: str
    tflops: float
    memory_gb: float
    memory_bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.tflops <= 0 or self.memory_gb <= 0 or self.memory_bandwidth_gbps <= 0:
            raise ConfigurationError("GPU spec values must be positive")

    def compute_seconds(self, flops: float) -> float:
        """Time to execute ``flops`` floating-point operations."""
        return float(flops) / (self.tflops * 1e12)

    def memory_seconds(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` through device memory."""
        return float(num_bytes) / (self.memory_bandwidth_gbps * 1e9)

    @classmethod
    def rtx4090(cls) -> "GpuSpec":
        return cls("rtx-4090", tflops=82.6 * 0.6, memory_gb=24.0,
                   memory_bandwidth_gbps=1008.0)

    @classmethod
    def a100_80g(cls) -> "GpuSpec":
        return cls("a100-80g", tflops=312.0 * 0.55, memory_gb=80.0,
                   memory_bandwidth_gbps=2039.0)


@dataclass(frozen=True)
class CpuSpec:
    """Host CPU characteristics relevant to K-Means clustering.

    Attributes:
        name: label.
        cores: physical cores available for clustering workers.
        gflops_per_core: sustained per-core throughput for the distance
            computations (memory-bound K-Means rarely exceeds a few GFLOP/s).
        memory_gb: host memory capacity (holds the offloaded KVCache).
    """

    name: str
    cores: int
    gflops_per_core: float
    memory_gb: float

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.gflops_per_core <= 0 or self.memory_gb <= 0:
            raise ConfigurationError("CPU spec values must be positive")

    @property
    def total_gflops(self) -> float:
        return self.cores * self.gflops_per_core

    def compute_seconds(self, flops: float, parallel_workers: int | None = None) -> float:
        """Time to execute ``flops`` across ``parallel_workers`` cores."""
        workers = self.cores if parallel_workers is None else min(parallel_workers, self.cores)
        return float(flops) / (workers * self.gflops_per_core * 1e9)

    @classmethod
    def dual_xeon_6330(cls) -> "CpuSpec":
        # 2 sockets x 28 cores; K-Means distance kernels run at a few GFLOP/s
        # per core in practice.
        return cls("2x-xeon-gold-6330", cores=56, gflops_per_core=3.0, memory_gb=500.0)


@dataclass(frozen=True)
class InterconnectSpec:
    """CPU-GPU interconnect characteristics.

    Attributes:
        name: label.
        bandwidth_gbps: sustained unidirectional bandwidth in GB/s.
        latency_us: per-transfer fixed latency in microseconds.
    """

    name: str
    bandwidth_gbps: float
    latency_us: float = 10.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0 or self.latency_us < 0:
            raise ConfigurationError("interconnect spec values must be positive")

    def transfer_seconds(self, num_bytes: float, num_transfers: int = 1) -> float:
        """Time to move ``num_bytes`` split across ``num_transfers`` copies."""
        return (
            float(num_bytes) / (self.bandwidth_gbps * 1e9)
            + num_transfers * self.latency_us * 1e-6
        )

    @classmethod
    def pcie1_x16(cls) -> "InterconnectSpec":
        """PCIe 1.0 x16 (~4 GB/s), the paper's default interconnect."""
        return cls("pcie-1.0-x16", bandwidth_gbps=4.0)

    @classmethod
    def pcie4_x16(cls) -> "InterconnectSpec":
        return cls("pcie-4.0-x16", bandwidth_gbps=32.0)

    @classmethod
    def pcie5_x16(cls) -> "InterconnectSpec":
        """PCIe 5.0 x16 (~64 GB/s), used for the Figure 1 transfer estimate."""
        return cls("pcie-5.0-x16", bandwidth_gbps=64.0)


@dataclass(frozen=True)
class StorageSpec:
    """Local storage (NVMe SSD) backing the disk tier of the KV hierarchy.

    Attributes:
        name: label.
        read_gbps: sustained sequential read bandwidth in GB/s.
        write_gbps: sustained sequential write bandwidth in GB/s.
        latency_us: per-operation fixed latency in microseconds (an NVMe
            round-trip is orders of magnitude above a PCIe doorbell, which is
            why disk is strictly the *cold* tier).
    """

    name: str
    read_gbps: float
    write_gbps: float
    latency_us: float = 80.0

    def __post_init__(self) -> None:
        if self.read_gbps <= 0 or self.write_gbps <= 0 or self.latency_us < 0:
            raise ConfigurationError("storage spec values must be positive")

    def read_seconds(self, num_bytes: float, num_ops: int = 1) -> float:
        """Time to read ``num_bytes`` from the device."""
        return float(num_bytes) / (self.read_gbps * 1e9) + num_ops * self.latency_us * 1e-6

    def write_seconds(self, num_bytes: float, num_ops: int = 1) -> float:
        """Time to write ``num_bytes`` to the device."""
        return float(num_bytes) / (self.write_gbps * 1e9) + num_ops * self.latency_us * 1e-6

    @classmethod
    def nvme_gen4(cls) -> "StorageSpec":
        """Consumer PCIe 4.0 NVMe drive (~7/5 GB/s sequential)."""
        return cls("nvme-gen4", read_gbps=7.0, write_gbps=5.0)


@dataclass(frozen=True)
class HardwareSpec:
    """A complete host: GPU + CPU + interconnect + local storage."""

    gpu: GpuSpec
    cpu: CpuSpec
    interconnect: InterconnectSpec
    storage: StorageSpec = field(default_factory=StorageSpec.nvme_gen4)

    @classmethod
    def paper_testbed(cls) -> "HardwareSpec":
        """RTX 4090 + dual Xeon 6330 + PCIe 1.0 x16 (paper §4.1.4)."""
        return cls(GpuSpec.rtx4090(), CpuSpec.dual_xeon_6330(), InterconnectSpec.pcie1_x16())

    @classmethod
    def a100_host(cls) -> "HardwareSpec":
        return cls(GpuSpec.a100_80g(), CpuSpec.dual_xeon_6330(), InterconnectSpec.pcie4_x16())
