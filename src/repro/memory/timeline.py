"""Discrete-event timeline for modelling overlap of compute and transfers.

PQCache's system contribution is *scheduling*: KVCache offload, K-Means
clustering, and PQ-code prefetch all run concurrently with GPU compute so
that only the top-k key/value fetch sits on the decode critical path
(Figure 7).  The :class:`Timeline` here is a small resource-constrained
scheduler: tasks declare which resource they occupy (GPU, CPU, the H2D or
D2H link) and which tasks they depend on; the timeline assigns start/finish
times respecting both resource serialisation and dependencies.

This is intentionally simple — single sample, single stream per resource —
because that is exactly the setting of the paper's latency figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulingError

__all__ = ["Resource", "Task", "Timeline"]


class Resource:
    """Named serial resources used by the scheduler."""

    GPU = "gpu"
    CPU = "cpu"
    H2D = "h2d"   # host-to-device transfers (CPU -> GPU)
    D2H = "d2h"   # device-to-host transfers (GPU -> CPU)
    DISK = "disk"  # NVMe reads/writes (the KV hierarchy's cold tier)

    ALL = (GPU, CPU, H2D, D2H, DISK)


@dataclass
class Task:
    """A unit of work occupying one resource for a duration.

    Attributes:
        name: unique task name.
        resource: one of :class:`Resource`.
        duration: seconds of exclusive occupancy.
        depends_on: names of tasks that must finish before this one starts.
        start: assigned start time (filled by the timeline).
        finish: assigned finish time (filled by the timeline).
    """

    name: str
    resource: str
    duration: float
    depends_on: tuple[str, ...] = ()
    start: float = field(default=0.0, init=False)
    finish: float = field(default=0.0, init=False)


class Timeline:
    """Greedy list scheduler over serial resources with dependencies.

    Tasks are scheduled in submission order: each task starts at the maximum
    of its dependencies' finish times and the time its resource becomes free.
    Submission order therefore encodes priority on a shared resource, which
    matches how CUDA streams serialise work that is enqueued in order.
    """

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}
        self._resource_free: dict[str, float] = {r: 0.0 for r in Resource.ALL}

    # ------------------------------------------------------------- building

    def add(
        self,
        name: str,
        resource: str,
        duration: float,
        depends_on: tuple[str, ...] | list[str] = (),
    ) -> Task:
        """Add and immediately schedule a task.

        Tasks must be added in topological order: every dependency must
        already be scheduled, which also makes dependency *cycles*
        structurally unrepresentable — a cycle would require some task to
        depend on a not-yet-added task, which is rejected here.  The
        self-dependency case (the only cycle expressible with known names)
        is reported explicitly.
        """
        if name in self._tasks:
            raise SchedulingError(f"duplicate task name: {name}")
        if resource not in Resource.ALL:
            raise SchedulingError(f"unknown resource: {resource}")
        if duration < 0:
            raise SchedulingError("duration must be >= 0")
        if name in depends_on:
            raise SchedulingError(f"dependency cycle: {name} depends on itself")
        missing = [dep for dep in depends_on if dep not in self._tasks]
        if missing:
            raise SchedulingError(f"unknown dependencies for {name}: {missing}")

        task = Task(name=name, resource=resource, duration=float(duration),
                    depends_on=tuple(depends_on))
        ready = max(
            (self._tasks[dep].finish for dep in task.depends_on), default=0.0
        )
        start = max(ready, self._resource_free[resource])
        task.start = start
        task.finish = start + task.duration
        self._resource_free[resource] = task.finish
        self._tasks[name] = task
        return task

    # ------------------------------------------------------------ queries

    def __getitem__(self, name: str) -> Task:
        return self._tasks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks.values())

    @property
    def makespan(self) -> float:
        """Finish time of the latest task."""
        return max((t.finish for t in self._tasks.values()), default=0.0)

    def resource_busy_time(self, resource: str) -> float:
        """Total busy time of one resource."""
        return sum(t.duration for t in self._tasks.values() if t.resource == resource)

    def resource_makespan(self, resource: str) -> float:
        """Finish time of the latest task on one resource (0.0 if none).

        The serving engine uses the GPU resource-makespan of a prefill
        timeline as the first-token-ready time: prompt logits exist once the
        last compute task ends, while the CPU/D2H construction tail beyond
        it only gates the first *retrieval* (the paper's TT2T argument).
        """
        return max(
            (t.finish for t in self._tasks.values() if t.resource == resource),
            default=0.0,
        )

    def critical_path(self) -> list[str]:
        """Names of tasks on a longest dependency/resource chain.

        Follows, from the task that finishes last, whichever predecessor
        (dependency or same-resource neighbour) determined its start time.
        """
        if not self._tasks:
            return []
        current = max(self._tasks.values(), key=lambda t: t.finish)
        path = [current.name]
        while True:
            candidates = [self._tasks[d] for d in current.depends_on]
            same_resource = [
                t for t in self._tasks.values()
                if t.resource == current.resource and t.finish <= current.start + 1e-12
                and t.name != current.name
            ]
            blockers = [
                t for t in candidates + same_resource
                if abs(t.finish - current.start) < 1e-9
            ]
            if not blockers:
                break
            current = max(blockers, key=lambda t: t.finish)
            path.append(current.name)
        return list(reversed(path))

    def utilisation(self) -> dict[str, float]:
        """Busy fraction per resource relative to the makespan."""
        makespan = self.makespan
        if makespan <= 0:
            return {r: 0.0 for r in Resource.ALL}
        return {
            r: self.resource_busy_time(r) / makespan for r in Resource.ALL
        }

    def as_records(self) -> list[dict]:
        """Serialisable task records (name, resource, start, finish)."""
        return [
            {
                "name": t.name,
                "resource": t.resource,
                "start": t.start,
                "finish": t.finish,
                "duration": t.duration,
            }
            for t in self._tasks.values()
        ]
