"""PQCacheManager: the paper's core contribution.

The manager owns, for every (layer, KV head) pair, a
:class:`~repro.core.pq.ProductQuantizer` trained on that head's prefilled
keys plus the running list of PQ codes, and answers approximate top-k queries
against the *middle* tokens during decoding (paper §3.1 steps ❷-❺):

* :meth:`PQCacheManager.build` — one-shot PQ construction after prefilling,
  honouring an (optionally adaptive) K-Means iteration budget.
* :meth:`PQCacheManager.build_incremental` / :meth:`PQCacheManager.refine` —
  the chunked-prefill pipeline: codebooks fitted from a sampled sketch of the
  first chunk(s), later chunks stream-encoded on arrival via
  :meth:`append_tokens`, and a final warm-started Lloyd refinement over the
  full key set once the prompt has completely arrived.
* :meth:`PQCacheManager.append_token` / :meth:`append_tokens` — assign codes
  to tokens evicted from the local window using their nearest centroids (no
  re-clustering).
* :meth:`PQCacheManager.approximate_scores` / :meth:`topk_middle` — ADC
  scoring of a decode query against the PQ codes and selection of the top-k
  candidate tokens per head.

Batched decode-path layout
--------------------------
The decode hot path is fully vectorized across KV heads (paper §3.2's
``(h, m, 1, d_m) x (h, m, d_m, 2**b)`` formulation): :meth:`build` stacks the
per-head codebooks of each layer into one ``(h_kv, m, 2**b, sub_dim)`` tensor
and stores all heads' codes in one shared amortised-growth
``(capacity, h_kv, m)`` buffer, so :meth:`approximate_scores`,
:meth:`topk_middle` and :meth:`append_tokens` each issue a single
einsum/gather (:meth:`ProductQuantizer.score_batch` /
:meth:`ProductQuantizer.encode_batch`) instead of ``h_kv`` Python-level PQ
calls.  Top-k ties are broken deterministically by lowest token index (the
same ``(-score, index)`` order as :func:`repro.utils.topk_indices`).

It also tracks the communication/bookkeeping quantities the system section
cares about: PQ code bytes, centroid bytes, and the GPU block cache that
absorbs part of the top-k key/value fetch traffic.  Per-step blocking-byte
estimates use the cache's *per-step* hit rate; the cumulative rate is kept
for reporting only.

Prefix reuse (snapshot / attach)
--------------------------------
The serving engine's shared-prefix cache reuses PQ artifacts across requests
so a cache-hit prompt never re-clusters what an earlier request already
fitted: :meth:`PQCacheManager.snapshot` captures the *pre-refine* state
(sketch-fitted codebooks + every code assigned so far) **by reference** —
nothing is copied; instead the manager flips into copy-on-write mode so a
later :meth:`refine` clones the shared quantizers and a later
:meth:`append_tokens` copies the shared code buffer before mutating.
:meth:`PQCacheManager.attach` seeds a fresh manager from such a snapshot
(sliced to the matched prefix length), likewise copy-on-write.  Snapshots
are refcounted (``attach_count``/``release``; the serving engine balances
every attach with a release at request teardown), so ``attach_count``
always reports the *live* attachments and ``total_attaches`` the lifetime
reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..llm.config import ModelConfig
from ..llm.kvcache import KVCache, TokenSegments
from ..utils import as_rng, topk_indices
from .gpu_cache import BlockGpuCache
from .pq import PQConfig, ProductQuantizer, stack_codebooks

__all__ = [
    "PQCacheConfig",
    "PQCacheManager",
    "PQSnapshot",
    "append_tokens_grouped",
    "topk_middle_grouped",
]


@dataclass(frozen=True)
class PQCacheConfig:
    """Configuration of the PQCache KVCache manager.

    Attributes:
        num_partitions: ``m`` — PQ sub-spaces per head (2 for LongBench,
            4 for InfiniteBench in the paper).
        num_bits: ``b`` — bits per PQ code (6 and 8 respectively).
        max_kmeans_iters: Lloyd iteration budget used when no adaptive
            planner is supplied.
        gpu_cache_tokens: capacity of the block-level GPU cache (0 disables).
        gpu_cache_block: tokens per cache block.
        gpu_cache_policy: ``"lru"`` or ``"lfu"``.
        k_cache_blocks: blocks used to update the GPU cache per retrieval.
        seed: RNG seed for codebook training.
    """

    num_partitions: int = 2
    num_bits: int = 6
    max_kmeans_iters: int = 25
    gpu_cache_tokens: int = 4096
    gpu_cache_block: int = 128
    gpu_cache_policy: str = "lru"
    k_cache_blocks: int = 32
    seed: int = 0

    def pq_config(self, head_dim: int) -> PQConfig:
        """PQ hyper-parameters for a head of dimensionality ``head_dim``."""
        return PQConfig(
            dim=head_dim,
            num_partitions=self.num_partitions,
            num_bits=self.num_bits,
            max_kmeans_iters=self.max_kmeans_iters,
            seed=self.seed,
        )

    def code_bytes_per_token_per_head(self) -> float:
        """PQ code bytes one token contributes per KV head (``m*b/8``)."""
        return self.num_partitions * self.num_bits / 8.0

    def communication_ratio(self, head_dim: int, dtype_bytes: int = 2) -> float:
        """Extra communication relative to raw keys: ``m*b / (8*dtype*d_h)``.

        This is the quantity the paper keeps at 1/128 (LongBench) or 1/64
        (InfiniteBench) — see §4.1.3.
        """
        return self.code_bytes_per_token_per_head() / (dtype_bytes * head_dim)


class _LayerCodeBuffer:
    """Amortised-growth store of one layer's PQ codes for *all* KV heads.

    Backing array has shape ``(capacity, h_kv, m)`` so every head's code for
    a token lives in one contiguous row — a decode step appends one row for
    all heads at once, and the batched ADC kernels gather straight out of the
    shared buffer.  Growing by concatenation would re-copy every existing
    code each time (quadratic in the number of generated tokens); the buffer
    instead doubles its capacity on overflow, making appends amortised O(1),
    and :meth:`view` exposes the live rows without copying.
    """

    def __init__(self, codes: np.ndarray, shared: bool = False) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.uint16)
        if codes.ndim != 3:
            raise ConfigurationError(
                "codes must have shape (n, num_kv_heads, num_partitions)"
            )
        self._buffer = codes
        self._length = codes.shape[0]
        #: copy-on-write guard: the backing array is (or may be) referenced
        #: by a prefix-cache snapshot or another request — the first
        #: :meth:`extend` copies the live rows into a private buffer.
        self._shared = shared

    def __len__(self) -> int:
        return self._length

    def mark_shared(self) -> None:
        """Flag the backing array as externally referenced (COW on extend)."""
        self._shared = True

    @property
    def is_shared(self) -> bool:
        return self._shared

    def extend(self, rows: np.ndarray) -> None:
        """Append token rows, shape ``(n_new, h_kv, m)``."""
        rows = np.asarray(rows, dtype=np.uint16)
        if rows.ndim != 3 or rows.shape[1:] != self._buffer.shape[1:]:
            raise ConfigurationError(
                f"rows must have shape (n, {self._buffer.shape[1]}, "
                f"{self._buffer.shape[2]}), got {rows.shape}"
            )
        n_new = rows.shape[0]
        if n_new == 0:
            return
        capacity = self._buffer.shape[0]
        if self._shared or self._length + n_new > capacity:
            new_capacity = max(2 * capacity, self._length + n_new, 64)
            grown = np.empty(
                (new_capacity,) + self._buffer.shape[1:], dtype=np.uint16
            )
            grown[: self._length] = self._buffer[: self._length]
            self._buffer = grown
            self._shared = False
        self._buffer[self._length : self._length + n_new] = rows
        self._length += n_new

    def view(self) -> np.ndarray:
        """Live rows, shape ``(len(self), h_kv, m)`` — a view, not a copy;
        callers must not mutate or hold it across appends."""
        return self._buffer[: self._length]


@dataclass
class PQSnapshot:
    """Immutable-by-convention capture of a manager's pre-refine PQ state.

    Everything is held *by reference*: the producing manager flips into
    copy-on-write mode when the snapshot is taken, and consumers attach the
    arrays copy-on-write too, so no codes or centroids are duplicated until
    someone actually mutates them (``refine`` clones the quantizers,
    ``append_tokens`` copies the code buffer).

    Attributes:
        quantizers: per-layer, per-head sketch-fitted quantizers.
        codebooks: per-layer stacked ``(h_kv, m, 2**b, sub_dim)`` tensors.
        codes: per-layer ``(num_tokens, h_kv, m)`` code arrays.
        num_tokens: tokens covered by the codes.
        sketch_upto: prompt tokens the codebook fit had seen — a consumer may
            only attach when its shared prefix covers at least this many
            tokens, otherwise its own cold pipeline would have fitted
            different codebooks and decode outputs would diverge.
        fingerprint: hashable configuration key; attach requires an exact
            match (same PQ geometry, seed and sketch schedule).
        attach_count: live references from attached managers (refcount).
        total_attaches: lifetime attach counter for reuse accounting.
        hold_count: live *storage* references (prefix-cache nodes holding the
            snapshot for future consumers) — separate from ``attach_count``
            so "who is using it" and "who is keeping it findable" stay
            independently auditable.  Every :meth:`retain` must be balanced
            by a :meth:`release_hold` when the holder (a cache node) is
            evicted or replaced, or holds leak across evict/re-insert cycles.
    """

    quantizers: list
    codebooks: list
    codes: list
    num_tokens: int
    sketch_upto: int
    fingerprint: object = None
    attach_count: int = 0
    total_attaches: int = 0
    hold_count: int = 0

    def release(self) -> None:
        """Drop one attached-manager reference."""
        if self.attach_count <= 0:
            raise ConfigurationError("PQSnapshot.release without matching attach")
        self.attach_count -= 1

    def retain(self) -> None:
        """Take one storage reference (a cache node now holds the snapshot)."""
        self.hold_count += 1

    def release_hold(self) -> None:
        """Drop one storage reference (the holding node was evicted/replaced)."""
        if self.hold_count <= 0:
            raise ConfigurationError("PQSnapshot.release_hold without matching retain")
        self.hold_count -= 1

    def nbytes(self) -> int:
        """Modelled storage cost of the shareable payload (codes + codebooks).

        PQ codes are ~1/64th of the raw KV bytes they index, which is what
        makes spilling snapshots alongside a cold chain nearly free.
        """
        return int(
            sum(np.asarray(c).nbytes for c in self.codes)
            + sum(np.asarray(c).nbytes for c in self.codebooks)
        )

    def truncated(self, num_tokens: int) -> "PQSnapshot":
        """A view of this snapshot covering only its first ``num_tokens``.

        Everything stays shared by reference (:meth:`PQCacheManager.attach`
        slices the codes it adopts); only the advertised coverage shrinks.
        The prefix cache uses this when a snapshot is found on a *shallow*
        node of a matched chain: its deeper codes belong to the producer's
        diverging suffix and must never reach a consumer whose prompt only
        shares the node's prefix.  Refcounts (attach/hold) live on the view
        independently of the original.
        """
        if not 0 < num_tokens <= self.num_tokens:
            raise ConfigurationError(
                f"truncation must be in (0, {self.num_tokens}], got {num_tokens}"
            )
        if num_tokens == self.num_tokens:
            return self
        return PQSnapshot(
            quantizers=self.quantizers,
            codebooks=self.codebooks,
            codes=self.codes,
            num_tokens=int(num_tokens),
            sketch_upto=self.sketch_upto,
            fingerprint=self.fingerprint,
        )


class PQCacheManager:
    """Per-layer, per-head PQ index over the prefilled keys."""

    def __init__(self, model_config: ModelConfig, config: PQCacheConfig | None = None) -> None:
        self.model_config = model_config
        self.config = config or PQCacheConfig()
        head_dim = model_config.head_dim
        if head_dim % self.config.num_partitions != 0:
            raise ConfigurationError(
                f"head_dim {head_dim} not divisible by num_partitions "
                f"{self.config.num_partitions}"
            )
        self._quantizers: list[list[ProductQuantizer]] = []
        #: per-layer stacked codebooks, each ``(h_kv, m, 2**b, sub_dim)``
        self._codebooks: list[np.ndarray] = []
        #: per-layer shared code buffers, each backing ``(capacity, h_kv, m)``
        self._codes: list[_LayerCodeBuffer] = []
        self._built = False
        #: quantizers are shared with a snapshot — clone before refining
        self._cow_quantizers = False
        #: prompt tokens the codebook fit saw (0 = one-shot full build)
        self.sketch_upto = 0
        self.total_kmeans_iterations = 0
        self.gpu_cache: BlockGpuCache | None = None
        if self.config.gpu_cache_tokens > 0:
            self.gpu_cache = BlockGpuCache(
                capacity_tokens=self.config.gpu_cache_tokens,
                block_size=self.config.gpu_cache_block,
                policy=self.config.gpu_cache_policy,
                k_cache_blocks=self.config.k_cache_blocks,
            )

    # --------------------------------------------------------------- build

    @property
    def is_built(self) -> bool:
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise NotFittedError("PQCacheManager.build must be called first")

    def build(self, kvcache: KVCache, max_iters: int | None = None) -> None:
        """Train PQ codebooks on every layer/head's prefilled keys.

        Args:
            kvcache: cache produced by the prefilling phase.
            max_iters: optional Lloyd iteration cap (e.g. from the adaptive
                planner); defaults to the config's ``max_kmeans_iters``.
        """
        cfg = self.config
        model = self.model_config
        self._quantizers = []
        self._codebooks = []
        self._codes = []
        self._cow_quantizers = False
        self.sketch_upto = 0
        self.total_kmeans_iterations = 0
        iters = cfg.max_kmeans_iters if max_iters is None else int(max_iters)

        for layer_index in range(model.num_layers):
            layer_cache = kvcache[layer_index]
            layer_q: list[ProductQuantizer] = []
            head_codes: list[np.ndarray] = []
            for head in range(model.num_kv_heads):
                pq = ProductQuantizer(cfg.pq_config(model.head_dim))
                codes = pq.fit(layer_cache.keys[head], max_iters=iters)
                self.total_kmeans_iterations += pq.last_fit_iterations
                layer_q.append(pq)
                head_codes.append(codes)
            self._quantizers.append(layer_q)
            # Stack per-head state into the batched decode layout: one
            # (h_kv, m, 2**b, sub_dim) codebook tensor and one shared
            # (capacity, h_kv, m) code buffer per layer.
            self._codebooks.append(stack_codebooks(layer_q))
            self._codes.append(_LayerCodeBuffer(np.stack(head_codes, axis=1)))
        self._built = True

    def build_incremental(
        self,
        kvcache: KVCache,
        upto: int,
        max_iters: int | None = None,
        sample_tokens: int | None = None,
    ) -> None:
        """Fit codebooks from a *sampled sketch* of the first prefilled tokens.

        The chunked prefill pipeline cannot wait for the whole prompt before
        starting PQ construction: codebooks are trained on a deterministic
        sample of the first ``upto`` tokens' keys, then all ``upto`` tokens
        are encoded with them.  Later chunks are streamed in through
        :meth:`append_tokens`, and :meth:`refine` re-optimises the codebooks
        over the full key set once the prompt has fully arrived.

        Args:
            kvcache: cache holding at least ``upto`` prefilled tokens.
            upto: number of leading tokens available so far.
            max_iters: optional Lloyd iteration cap for the sketch fit.
            sample_tokens: sketch size; ``None`` or values >= ``upto`` use
                every available token.
        """
        cfg = self.config
        model = self.model_config
        if upto <= 0:
            raise ConfigurationError("upto must be positive")
        if len(kvcache[0]) < upto:
            raise ConfigurationError(
                f"kvcache holds {len(kvcache[0])} tokens, need {upto}"
            )
        self._quantizers = []
        self._codebooks = []
        self._codes = []
        self._cow_quantizers = False
        self.sketch_upto = int(upto)
        self.total_kmeans_iterations = 0
        iters = cfg.max_kmeans_iters if max_iters is None else int(max_iters)
        rng = as_rng(cfg.seed)
        sketch: np.ndarray | None = None
        if sample_tokens is not None and sample_tokens < upto:
            # One shared token sample across layers/heads: deterministic for
            # the config seed, sorted to keep gathers cache-friendly.
            sketch = np.sort(rng.choice(upto, size=int(sample_tokens), replace=False))

        for layer_index in range(model.num_layers):
            keys = kvcache[layer_index].keys[:, :upto, :]
            layer_q: list[ProductQuantizer] = []
            for head in range(model.num_kv_heads):
                pq = ProductQuantizer(cfg.pq_config(model.head_dim))
                training = keys[head] if sketch is None else keys[head][sketch]
                pq.fit(training, max_iters=iters)
                self.total_kmeans_iterations += pq.last_fit_iterations
                layer_q.append(pq)
            self._quantizers.append(layer_q)
            codebooks = stack_codebooks(layer_q)
            self._codebooks.append(codebooks)
            codes = ProductQuantizer.encode_batch(codebooks, keys)  # (h, n, m)
            self._codes.append(_LayerCodeBuffer(codes.transpose(1, 0, 2)))
        self._built = True

    def refine(
        self,
        kvcache: KVCache,
        max_iters: int | None = None,
        tol: float = 1e-6,
    ) -> None:
        """Re-run Lloyd iterations over every encoded key and re-encode.

        Completes the incremental construction: each (layer, head,
        sub-space) codebook continues from its sketch-fitted centroids over
        the full set of currently-encoded keys, and every stored code is
        refreshed under the updated codebooks — so the index quality matches
        a one-shot :meth:`build` within the tolerance of K-Means local
        optima (asserted by test).

        Args:
            kvcache: cache holding at least as many tokens as are encoded.
            max_iters: optional Lloyd iteration cap for the refinement.
            tol: relative inertia-improvement convergence tolerance.
        """
        self._require_built()
        model = self.model_config
        if self._cow_quantizers:
            # The quantizers are shared with a prefix-cache snapshot (or came
            # from one): refine mutates centroids in place, so clone first.
            self._quantizers = [
                [pq.clone() for pq in layer] for layer in self._quantizers
            ]
            self._cow_quantizers = False
        for layer_index in range(model.num_layers):
            n = len(self._codes[layer_index])
            if len(kvcache[layer_index]) < n:
                raise ConfigurationError(
                    f"kvcache layer {layer_index} holds "
                    f"{len(kvcache[layer_index])} tokens, {n} are encoded"
                )
            keys = kvcache[layer_index].keys[:, :n, :]
            head_codes: list[np.ndarray] = []
            for head, pq in enumerate(self._quantizers[layer_index]):
                head_codes.append(pq.refine(keys[head], max_iters=max_iters, tol=tol))
                self.total_kmeans_iterations += pq.last_refine_iterations
            self._codebooks[layer_index] = stack_codebooks(
                self._quantizers[layer_index]
            )
            self._codes[layer_index] = _LayerCodeBuffer(
                np.stack(head_codes, axis=1)
            )

    # ------------------------------------------------------- prefix reuse

    def snapshot(self, fingerprint: object = None) -> PQSnapshot:
        """Capture the current PQ state for prefix reuse — by reference.

        Intended to be taken at the *pre-refine* point of the incremental
        pipeline (sketch codebooks + streamed codes): that state is a pure
        function of the prompt prefix and the PQ configuration, so any later
        request sharing the prefix reproduces it bit-for-bit by attaching
        instead of re-clustering.  The manager flips into copy-on-write mode:
        a subsequent :meth:`refine` clones the quantizers and a subsequent
        :meth:`append_tokens` copies the shared code buffer, leaving the
        snapshot's arrays untouched.
        """
        self._require_built()
        for buf in self._codes:
            buf.mark_shared()
        self._cow_quantizers = True
        return PQSnapshot(
            quantizers=self._quantizers,
            codebooks=list(self._codebooks),
            codes=[buf.view() for buf in self._codes],
            num_tokens=len(self._codes[0]) if self._codes else 0,
            sketch_upto=self.sketch_upto,
            fingerprint=fingerprint,
        )

    def attach(self, snapshot: PQSnapshot, upto: int | None = None) -> None:
        """Seed this (unbuilt) manager from a prefix-cache snapshot.

        The snapshot's codebooks and the first ``upto`` token codes are
        adopted by reference (copy-on-write on later mutation); the manager
        behaves exactly as if :meth:`build_incremental` had fitted the same
        sketch and streamed the same ``upto`` tokens — minus the K-Means and
        encode work.

        Args:
            snapshot: state captured by :meth:`snapshot`.
            upto: shared-prefix length; defaults to the full snapshot.  Must
                cover at least ``snapshot.sketch_upto`` tokens, otherwise the
                codebooks would encode data outside the shared prefix.
        """
        if self._built:
            raise ConfigurationError("attach requires an unbuilt manager")
        upto = snapshot.num_tokens if upto is None else int(upto)
        if not 0 < upto <= snapshot.num_tokens:
            raise ConfigurationError(
                f"upto must be in (0, {snapshot.num_tokens}], got {upto}"
            )
        if upto < snapshot.sketch_upto:
            raise ConfigurationError(
                f"cannot attach {upto} tokens of a snapshot whose codebooks "
                f"were fitted on {snapshot.sketch_upto} tokens"
            )
        model = self.model_config
        if len(snapshot.quantizers) != model.num_layers or (
            snapshot.quantizers
            and len(snapshot.quantizers[0]) != model.num_kv_heads
        ):
            raise ConfigurationError("snapshot geometry does not match model")
        self._quantizers = snapshot.quantizers
        self._cow_quantizers = True
        self._codebooks = list(snapshot.codebooks)
        self._codes = [
            _LayerCodeBuffer(codes[:upto], shared=True) for codes in snapshot.codes
        ]
        self.sketch_upto = snapshot.sketch_upto
        self._built = True
        snapshot.attach_count += 1
        snapshot.total_attaches += 1

    # -------------------------------------------------------------- update

    def append_tokens(self, layer_index: int, keys: np.ndarray) -> None:
        """Assign PQ codes to new tokens' keys for every head of a layer.

        Called when generated tokens leave the local window (paper §3.4
        lines 3-5 of Algorithm 2): the tokens' keys are encoded with the
        existing centroids — one :meth:`ProductQuantizer.encode_batch` call
        across all KV heads — no re-clustering happens.

        Args:
            layer_index: transformer layer.
            keys: ``(num_kv_heads, n_new, head_dim)`` key vectors of the
                tokens, in ascending token order.
        """
        self._require_built()
        keys = np.asarray(keys, dtype=np.float64)
        h_kv = self.model_config.num_kv_heads
        if keys.ndim != 3 or keys.shape[0] != h_kv:
            raise ConfigurationError(
                f"keys must have shape ({h_kv}, n_new, "
                f"{self.model_config.head_dim}), got {keys.shape}"
            )
        if keys.shape[1] == 0:
            return
        codes = ProductQuantizer.encode_batch(
            self._codebooks[layer_index], keys
        )  # (h_kv, n_new, m)
        self._codes[layer_index].extend(codes.transpose(1, 0, 2))

    def append_token(self, layer_index: int, keys: np.ndarray) -> None:
        """Assign PQ codes to one new token's keys for every head of a layer.

        Thin wrapper over :meth:`append_tokens`.

        Args:
            layer_index: transformer layer.
            keys: ``(num_kv_heads, head_dim)`` key vectors of the token.
        """
        keys = np.asarray(keys, dtype=np.float64)
        self.append_tokens(layer_index, keys[:, None, :])

    def num_codes(self, layer_index: int, head: int = 0) -> int:
        """Number of tokens currently encoded for (layer, head)."""
        self._require_built()
        return len(self._codes[layer_index])

    # --------------------------------------------------------------- query

    def quantizer(self, layer_index: int, head: int) -> ProductQuantizer:
        self._require_built()
        return self._quantizers[layer_index][head]

    def codebooks(self, layer_index: int) -> np.ndarray:
        """Stacked codebooks of a layer: ``(h_kv, m, 2**b, sub_dim)``."""
        self._require_built()
        return self._codebooks[layer_index]

    def layer_codes(self, layer_index: int) -> np.ndarray:
        """All heads' current PQ codes: ``(n_codes, h_kv, m)`` uint16.

        Returns a *view* into the shared amortised-growth buffer — cheap to
        take, but do not mutate it or hold it across :meth:`append_tokens`
        calls.
        """
        self._require_built()
        return self._codes[layer_index].view()

    def codes(self, layer_index: int, head: int) -> np.ndarray:
        """Current PQ codes of (layer, head): ``(n_codes, m)`` uint16.

        A per-head *view* into the shared layer buffer (see
        :meth:`layer_codes`) — do not mutate it or hold it across appends.
        """
        return self.layer_codes(layer_index)[:, head, :]

    def approximate_scores(
        self, layer_index: int, kv_queries: np.ndarray
    ) -> np.ndarray:
        """ADC scores of every encoded token, shape ``(h_kv, n_codes)``.

        One :meth:`ProductQuantizer.score_batch` call over all KV heads.

        Args:
            kv_queries: ``(num_kv_heads, head_dim)`` group-mean queries.
        """
        self._require_built()
        kv_queries = np.asarray(kv_queries, dtype=np.float64)
        codes = self._codes[layer_index].view()  # (n, h_kv, m)
        return ProductQuantizer.score_batch(
            self._codebooks[layer_index], kv_queries, codes.transpose(1, 0, 2)
        )

    def topk_middle(
        self,
        layer_index: int,
        kv_queries: np.ndarray,
        segments: TokenSegments,
        k: int,
    ) -> list[np.ndarray]:
        """Approximate top-k middle-token indices per KV head.

        Tokens outside the middle segment (initial and local tokens) are
        excluded — they are always attended to anyway and never retrieved.
        All heads are scored with one batched ADC gather; ties at the k-th
        score are broken by lowest token index (matching
        :func:`repro.utils.topk_indices`).
        """
        self._require_built()
        middle = segments.middle_indices
        model = self.model_config
        if middle.size == 0 or k <= 0:
            return [np.empty(0, dtype=np.int64) for _ in range(model.num_kv_heads)]

        codes = self._codes[layer_index].view()  # (n, h_kv, m)
        # Only score codes that correspond to middle tokens; codes are
        # aligned with absolute token positions by construction.
        valid = middle[middle < codes.shape[0]]
        if valid.size == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(model.num_kv_heads)]

        kv_queries = np.asarray(kv_queries, dtype=np.float64)
        # The middle segment is a contiguous token range by construction, so
        # the common case is a zero-copy slice of the shared buffer; the
        # fancy-indexed gather only runs for non-contiguous index sets.
        if int(valid[-1]) - int(valid[0]) + 1 == valid.size:
            middle_codes = codes[int(valid[0]) : int(valid[-1]) + 1]
        else:
            middle_codes = codes[valid]
        scores = ProductQuantizer.score_batch(
            self._codebooks[layer_index],
            kv_queries,
            middle_codes.transpose(1, 0, 2),
        )  # (h_kv, n_valid)
        k_eff = min(int(k), valid.size)
        # topk_indices is O(n + k log k) per head (argpartition + stable sort
        # of the boundary candidates) and breaks ties by lowest candidate
        # position, i.e. lowest token index.
        return [
            valid[topk_indices(scores[head], k_eff)]
            for head in range(model.num_kv_heads)
        ]

    def record_fetch(self, token_indices: np.ndarray) -> dict | None:
        """Register a top-k key/value fetch with the GPU block cache.

        Returns the cache lookup result (hit/miss token arrays) or ``None``
        when the GPU cache is disabled.
        """
        if self.gpu_cache is None:
            return None
        return self.gpu_cache.access(token_indices)

    # ---------------------------------------------------------- accounting

    def memory_footprint(self, seq_len: int | None = None) -> dict:
        """Bytes used by PQ codes and centroids across all layers/heads."""
        self._require_built()
        model = self.model_config
        cfg = self.config
        if seq_len is None:
            seq_len = self.num_codes(0)
        codes_bytes = (
            model.num_layers
            * model.num_kv_heads
            * seq_len
            * cfg.code_bytes_per_token_per_head()
        )
        centroid_bytes = (
            model.num_layers
            * model.num_kv_heads
            * cfg.pq_config(model.head_dim).centroid_bytes(model.dtype_bytes)
        )
        raw_kv_bytes = model.kvcache_bytes(seq_len)
        return {
            "codes_bytes": float(codes_bytes),
            "centroid_bytes": float(centroid_bytes),
            "raw_kv_bytes": float(raw_kv_bytes),
            "compression_ratio": float(raw_kv_bytes)
            / max(codes_bytes + centroid_bytes, 1.0),
        }

    def step_communication_bytes(self, seq_len: int, k: int) -> dict:
        """Per-decode-step communication of PQCache for the latency model.

        PQ code prefetch is overlappable (it happens during the previous
        layer's compute); the top-k key/value fetch is blocking but partially
        served by the GPU cache (the caller applies the hit rate).
        """
        model = self.model_config
        cfg = self.config
        codes = (
            model.num_kv_heads * seq_len * cfg.code_bytes_per_token_per_head()
        )
        topk_fetch = k * model.num_kv_heads * 2 * model.head_dim * model.dtype_bytes
        return {"overlappable": float(codes), "blocking": float(topk_fetch)}


# --------------------------------------------------------------------------
# Cross-request grouped collectives for the fused decode round
# --------------------------------------------------------------------------
#
# One engine decode round serves many RUNNING requests, each with its own
# PQCacheManager.  The collectives below are the batch entry points the
# fused decode round dispatches to, and both are bitwise identical to
# looping the per-manager methods.  ``append_tokens_grouped`` concatenates
# same-geometry requests along the *head* axis and issues one compute-bound
# encode kernel per group (stacking heads only adds independent rows —
# encode's batched matmul runs one identically-shaped BLAS call per
# (head, sub-space) slice).  ``topk_middle_grouped`` keeps scoring and top-k
# per member: ADC scoring is a memory-bound table gather whose cost does not
# shrink by stacking heads, so the fused win there is cache locality (top-k
# runs on freshly scored rows) and the shared stage-timing accounting.


def topk_middle_grouped(
    items: "list[tuple[PQCacheManager, int, np.ndarray, TokenSegments, int]]",
    timings: "dict[str, float] | None" = None,
) -> "list[list[np.ndarray]]":
    """Batched :meth:`PQCacheManager.topk_middle` across requests.

    Args:
        items: one ``(manager, layer_index, kv_queries, segments, k)`` tuple
            per request, in engine batch order.
        timings: optional accumulator for host wall-clock stage seconds —
            ``"score"`` (grouped ADC table lookups) and ``"topk"``
            (per-head top-k index extraction) are added into it.

    Returns:
        Per item, exactly what ``manager.topk_middle(layer_index,
        kv_queries, segments, k)`` would return (bitwise).
    """
    results: "list[list[np.ndarray] | None]" = [None] * len(items)
    for pos, (manager, layer_index, kv_queries, segments, k) in enumerate(items):
        manager._require_built()
        h_kv = manager.model_config.num_kv_heads
        middle = segments.middle_indices
        if middle.size == 0 or k <= 0:
            results[pos] = [np.empty(0, dtype=np.int64) for _ in range(h_kv)]
            continue
        codes = manager._codes[layer_index].view()  # (n, h_kv, m)
        valid = middle[middle < codes.shape[0]]
        if valid.size == 0:
            results[pos] = [np.empty(0, dtype=np.int64) for _ in range(h_kv)]
            continue
        # Same contiguous-slice fast path as topk_middle.
        if int(valid[-1]) - int(valid[0]) + 1 == valid.size:
            middle_codes = codes[int(valid[0]) : int(valid[-1]) + 1]
        else:
            middle_codes = codes[valid]
        # Score per member with the per-head 1-D ``take`` kernel, top-k while
        # the member's score rows are still cache-hot.  Concatenating the
        # batch's heads into one ``score_batch_grouped`` call was measured
        # slower at long contexts: the gather is memory-bound either way, and
        # the concatenation adds a multi-megabyte copy of the transposed code
        # views plus strided 2-D gathers over it.
        score_start = perf_counter()
        scores = ProductQuantizer.score_batch(
            manager._codebooks[layer_index],
            np.asarray(kv_queries, dtype=np.float64),
            middle_codes.transpose(1, 0, 2),
        )  # (h_kv, n_valid)
        topk_start = perf_counter()
        k_eff = min(int(k), valid.size)
        results[pos] = [
            valid[topk_indices(scores[head], k_eff)] for head in range(h_kv)
        ]
        if timings is not None:
            timings["score"] = (
                timings.get("score", 0.0) + topk_start - score_start
            )
            timings["topk"] = (
                timings.get("topk", 0.0) + perf_counter() - topk_start
            )
    return results  # type: ignore[return-value]


def append_tokens_grouped(
    items: "list[tuple[PQCacheManager, int, np.ndarray]]",
) -> None:
    """Batched :meth:`PQCacheManager.append_tokens` across requests.

    Args:
        items: one ``(manager, layer_index, keys)`` tuple per request with
            ``keys`` shaped ``(num_kv_heads, n_new, head_dim)``; requests
            with the same ``(n_new, geometry)`` share one
            :meth:`ProductQuantizer.encode_batch` call.  Leaves every
            manager's code buffer bitwise identical to the per-manager loop.
    """
    groups: dict = {}
    for manager, layer_index, keys in items:
        manager._require_built()
        keys = np.asarray(keys, dtype=np.float64)
        h_kv = manager.model_config.num_kv_heads
        if keys.ndim != 3 or keys.shape[0] != h_kv:
            raise ConfigurationError(
                f"keys must have shape ({h_kv}, n_new, "
                f"{manager.model_config.head_dim}), got {keys.shape}"
            )
        if keys.shape[1] == 0:
            continue
        codebooks = manager._codebooks[layer_index]
        key = (keys.shape[1],) + codebooks.shape[1:]
        groups.setdefault(key, []).append((manager, layer_index, codebooks, keys))
    for members in groups.values():
        if len(members) == 1:
            manager, layer_index, codebooks, keys = members[0]
            codes = ProductQuantizer.encode_batch(codebooks, keys)
            manager._codes[layer_index].extend(codes.transpose(1, 0, 2))
            continue
        all_codebooks = np.concatenate([m[2] for m in members], axis=0)
        all_keys = np.concatenate([m[3] for m in members], axis=0)
        codes = ProductQuantizer.encode_batch(all_codebooks, all_keys)
        offset = 0
        for manager, layer_index, codebooks, _ in members:
            h = codebooks.shape[0]
            manager._codes[layer_index].extend(
                codes[offset : offset + h].transpose(1, 0, 2)
            )
            offset += h
