"""PQCacheManager: the paper's core contribution.

The manager owns, for every (layer, KV head) pair, a
:class:`~repro.core.pq.ProductQuantizer` trained on that head's prefilled
keys plus the running list of PQ codes, and answers approximate top-k queries
against the *middle* tokens during decoding (paper §3.1 steps ❷-❺):

* :meth:`PQCacheManager.build` — PQ construction after prefilling, honouring
  an (optionally adaptive) K-Means iteration budget.
* :meth:`PQCacheManager.append_token` — assign codes to a token evicted from
  the local window using its nearest centroids (no re-clustering).
* :meth:`PQCacheManager.approximate_scores` / :meth:`topk_middle` — ADC
  scoring of a decode query against the PQ codes and selection of the top-k
  candidate tokens per head.

It also tracks the communication/bookkeeping quantities the system section
cares about: PQ code bytes, centroid bytes, and the GPU block cache that
absorbs part of the top-k key/value fetch traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..llm.config import ModelConfig
from ..llm.kvcache import KVCache, TokenSegments
from ..utils import topk_indices
from .gpu_cache import BlockGpuCache
from .pq import PQConfig, ProductQuantizer

__all__ = ["PQCacheConfig", "PQCacheManager"]


@dataclass(frozen=True)
class PQCacheConfig:
    """Configuration of the PQCache KVCache manager.

    Attributes:
        num_partitions: ``m`` — PQ sub-spaces per head (2 for LongBench,
            4 for InfiniteBench in the paper).
        num_bits: ``b`` — bits per PQ code (6 and 8 respectively).
        max_kmeans_iters: Lloyd iteration budget used when no adaptive
            planner is supplied.
        gpu_cache_tokens: capacity of the block-level GPU cache (0 disables).
        gpu_cache_block: tokens per cache block.
        gpu_cache_policy: ``"lru"`` or ``"lfu"``.
        k_cache_blocks: blocks used to update the GPU cache per retrieval.
        seed: RNG seed for codebook training.
    """

    num_partitions: int = 2
    num_bits: int = 6
    max_kmeans_iters: int = 25
    gpu_cache_tokens: int = 4096
    gpu_cache_block: int = 128
    gpu_cache_policy: str = "lru"
    k_cache_blocks: int = 32
    seed: int = 0

    def pq_config(self, head_dim: int) -> PQConfig:
        """PQ hyper-parameters for a head of dimensionality ``head_dim``."""
        return PQConfig(
            dim=head_dim,
            num_partitions=self.num_partitions,
            num_bits=self.num_bits,
            max_kmeans_iters=self.max_kmeans_iters,
            seed=self.seed,
        )

    def code_bytes_per_token_per_head(self) -> float:
        """PQ code bytes one token contributes per KV head (``m*b/8``)."""
        return self.num_partitions * self.num_bits / 8.0

    def communication_ratio(self, head_dim: int, dtype_bytes: int = 2) -> float:
        """Extra communication relative to raw keys: ``m*b / (8*dtype*d_h)``.

        This is the quantity the paper keeps at 1/128 (LongBench) or 1/64
        (InfiniteBench) — see §4.1.3.
        """
        return self.code_bytes_per_token_per_head() / (dtype_bytes * head_dim)


class _CodeBuffer:
    """Amortised-growth store of one (layer, head)'s PQ codes.

    Decoding appends one code row per generated token; growing the backing
    array by concatenation would re-copy every existing code each time
    (quadratic in the number of generated tokens).  The buffer instead
    doubles its capacity on overflow, making appends amortised O(1), and
    :meth:`view` exposes the live rows without copying.
    """

    def __init__(self, codes: np.ndarray) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.uint16)
        if codes.ndim != 2:
            raise ConfigurationError("codes must have shape (n, num_partitions)")
        self._buffer = codes
        self._length = codes.shape[0]

    def __len__(self) -> int:
        return self._length

    def append(self, code_row: np.ndarray) -> None:
        """Append one token's code row, shape ``(num_partitions,)``."""
        code_row = np.asarray(code_row, dtype=np.uint16).reshape(-1)
        capacity = self._buffer.shape[0]
        if self._length >= capacity:
            new_capacity = max(2 * capacity, self._length + 1, 64)
            grown = np.empty((new_capacity, self._buffer.shape[1]), dtype=np.uint16)
            grown[: self._length] = self._buffer[: self._length]
            self._buffer = grown
        self._buffer[self._length] = code_row
        self._length += 1

    def view(self) -> np.ndarray:
        """Live rows, shape ``(len(self), num_partitions)`` — a view, not a
        copy; callers must not mutate or hold it across appends."""
        return self._buffer[: self._length]


class PQCacheManager:
    """Per-layer, per-head PQ index over the prefilled keys."""

    def __init__(self, model_config: ModelConfig, config: PQCacheConfig | None = None) -> None:
        self.model_config = model_config
        self.config = config or PQCacheConfig()
        head_dim = model_config.head_dim
        if head_dim % self.config.num_partitions != 0:
            raise ConfigurationError(
                f"head_dim {head_dim} not divisible by num_partitions "
                f"{self.config.num_partitions}"
            )
        self._quantizers: list[list[ProductQuantizer]] = []
        self._codes: list[list[_CodeBuffer]] = []
        self._built = False
        self.total_kmeans_iterations = 0
        self.gpu_cache: BlockGpuCache | None = None
        if self.config.gpu_cache_tokens > 0:
            self.gpu_cache = BlockGpuCache(
                capacity_tokens=self.config.gpu_cache_tokens,
                block_size=self.config.gpu_cache_block,
                policy=self.config.gpu_cache_policy,
                k_cache_blocks=self.config.k_cache_blocks,
            )

    # --------------------------------------------------------------- build

    @property
    def is_built(self) -> bool:
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise NotFittedError("PQCacheManager.build must be called first")

    def build(self, kvcache: KVCache, max_iters: int | None = None) -> None:
        """Train PQ codebooks on every layer/head's prefilled keys.

        Args:
            kvcache: cache produced by the prefilling phase.
            max_iters: optional Lloyd iteration cap (e.g. from the adaptive
                planner); defaults to the config's ``max_kmeans_iters``.
        """
        cfg = self.config
        model = self.model_config
        self._quantizers = []
        self._codes = []
        self.total_kmeans_iterations = 0
        iters = cfg.max_kmeans_iters if max_iters is None else int(max_iters)

        for layer_index in range(model.num_layers):
            layer_cache = kvcache[layer_index]
            layer_q: list[ProductQuantizer] = []
            layer_codes: list[_CodeBuffer] = []
            for head in range(model.num_kv_heads):
                pq = ProductQuantizer(cfg.pq_config(model.head_dim))
                codes = pq.fit(layer_cache.keys[head], max_iters=iters)
                self.total_kmeans_iterations += pq.last_fit_iterations
                layer_q.append(pq)
                layer_codes.append(_CodeBuffer(codes))
            self._quantizers.append(layer_q)
            self._codes.append(layer_codes)
        self._built = True

    # -------------------------------------------------------------- update

    def append_token(self, layer_index: int, keys: np.ndarray) -> None:
        """Assign PQ codes to one new token's keys for every head of a layer.

        Called when a generated token leaves the local window (paper §3.4
        lines 3-5 of Algorithm 2): the token's key is encoded with the
        existing centroids; no re-clustering happens.

        Args:
            layer_index: transformer layer.
            keys: ``(num_kv_heads, head_dim)`` key vectors of the token.
        """
        self._require_built()
        keys = np.asarray(keys, dtype=np.float64)
        for head in range(self.model_config.num_kv_heads):
            pq = self._quantizers[layer_index][head]
            code = pq.encode(keys[head][None, :])
            self._codes[layer_index][head].append(code[0])

    def num_codes(self, layer_index: int, head: int = 0) -> int:
        """Number of tokens currently encoded for (layer, head)."""
        self._require_built()
        return len(self._codes[layer_index][head])

    # --------------------------------------------------------------- query

    def quantizer(self, layer_index: int, head: int) -> ProductQuantizer:
        self._require_built()
        return self._quantizers[layer_index][head]

    def codes(self, layer_index: int, head: int) -> np.ndarray:
        """Current PQ codes of (layer, head): ``(n_codes, m)`` uint16.

        Returns a *view* into the amortised-growth buffer — cheap to take,
        but do not mutate it or hold it across :meth:`append_token` calls.
        """
        self._require_built()
        return self._codes[layer_index][head].view()

    def approximate_scores(
        self, layer_index: int, kv_queries: np.ndarray
    ) -> np.ndarray:
        """ADC scores of every encoded token, shape ``(h_kv, n_codes)``.

        Args:
            kv_queries: ``(num_kv_heads, head_dim)`` group-mean queries.
        """
        self._require_built()
        model = self.model_config
        kv_queries = np.asarray(kv_queries, dtype=np.float64)
        scores = []
        for head in range(model.num_kv_heads):
            pq = self._quantizers[layer_index][head]
            codes = self._codes[layer_index][head].view()
            scores.append(pq.score(kv_queries[head], codes))
        return np.stack(scores, axis=0)

    def topk_middle(
        self,
        layer_index: int,
        kv_queries: np.ndarray,
        segments: TokenSegments,
        k: int,
    ) -> list[np.ndarray]:
        """Approximate top-k middle-token indices per KV head.

        Tokens outside the middle segment (initial and local tokens) are
        excluded — they are always attended to anyway and never retrieved.
        """
        self._require_built()
        middle = segments.middle_indices
        model = self.model_config
        if middle.size == 0 or k <= 0:
            return [np.empty(0, dtype=np.int64) for _ in range(model.num_kv_heads)]

        selected = []
        for head in range(model.num_kv_heads):
            pq = self._quantizers[layer_index][head]
            codes = self._codes[layer_index][head].view()
            # Only score codes that correspond to middle tokens; codes are
            # aligned with absolute token positions by construction.
            valid = middle[middle < codes.shape[0]]
            if valid.size == 0:
                selected.append(np.empty(0, dtype=np.int64))
                continue
            scores = pq.score(kv_queries[head], codes[valid])
            order = topk_indices(scores, min(k, valid.size))
            selected.append(valid[order])
        return selected

    def record_fetch(self, token_indices: np.ndarray) -> dict | None:
        """Register a top-k key/value fetch with the GPU block cache.

        Returns the cache lookup result (hit/miss token arrays) or ``None``
        when the GPU cache is disabled.
        """
        if self.gpu_cache is None:
            return None
        return self.gpu_cache.access(token_indices)

    # ---------------------------------------------------------- accounting

    def memory_footprint(self, seq_len: int | None = None) -> dict:
        """Bytes used by PQ codes and centroids across all layers/heads."""
        self._require_built()
        model = self.model_config
        cfg = self.config
        if seq_len is None:
            seq_len = self.num_codes(0)
        codes_bytes = (
            model.num_layers
            * model.num_kv_heads
            * seq_len
            * cfg.code_bytes_per_token_per_head()
        )
        centroid_bytes = (
            model.num_layers
            * model.num_kv_heads
            * cfg.pq_config(model.head_dim).centroid_bytes(model.dtype_bytes)
        )
        raw_kv_bytes = model.kvcache_bytes(seq_len)
        return {
            "codes_bytes": float(codes_bytes),
            "centroid_bytes": float(centroid_bytes),
            "raw_kv_bytes": float(raw_kv_bytes),
            "compression_ratio": float(raw_kv_bytes)
            / max(codes_bytes + centroid_bytes, 1.0),
        }

    def step_communication_bytes(self, seq_len: int, k: int) -> dict:
        """Per-decode-step communication of PQCache for the latency model.

        PQ code prefetch is overlappable (it happens during the previous
        layer's compute); the top-k key/value fetch is blocking but partially
        served by the GPU cache (the caller applies the hit rate).
        """
        model = self.model_config
        cfg = self.config
        codes = (
            model.num_kv_heads * seq_len * cfg.code_bytes_per_token_per_head()
        )
        topk_fetch = k * model.num_kv_heads * 2 * model.head_dim * model.dtype_bytes
        return {"overlappable": float(codes), "blocking": float(topk_fetch)}
