"""Block-level GPU cache for frequently retrieved key/value pairs.

Paper §3.4: the only decode-phase communication that cannot be overlapped is
fetching the top-k tokens' key/value pairs, because it depends on the PQ
search result.  PQCache therefore keeps a small GPU-resident cache of
*blocks* of tokens (128 tokens per block by default) managed with an LRU or
LFU eviction policy.  On every retrieval the top-``k_cache`` blocks — the
blocks containing the most top-k tokens — are used to update the cache.

The cache here tracks which token blocks are GPU-resident and reports, for a
requested set of token indices, how many bytes must still be fetched over
PCIe.  The latency model in :mod:`repro.memory` turns those bytes into time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["CacheStats", "BlockGpuCache"]


@dataclass
class CacheStats:
    """Running counters of cache behaviour.

    Two hit-rate views are kept deliberately separate:

    * :attr:`hit_rate` — *cumulative* over the cache's lifetime; use it for
      reporting (figures, summaries).
    * :attr:`step_hit_rate` — the hit/miss split of the current decode step
      only: every :meth:`BlockGpuCache.access` since the owner last called
      :meth:`BlockGpuCache.begin_step` (one decode step spans several
      accesses — one per transformer layer).  Use it when estimating *this*
      step's blocking PCIe traffic; scaling per-step byte counts by the
      cumulative rate lets early cold misses (or a long warm streak) leak
      into unrelated steps' estimates.  Without ``begin_step`` calls the
      step counters simply track the cumulative ones.
    """

    lookups: int = 0
    token_hits: int = 0
    token_misses: int = 0
    block_evictions: int = 0
    block_insertions: int = 0
    step_hits: int = 0
    step_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Cumulative fraction of requested tokens that were GPU-resident."""
        total = self.token_hits + self.token_misses
        return self.token_hits / total if total else 0.0

    @property
    def step_hit_rate(self) -> float:
        """Hit fraction of the current step (since ``begin_step``)."""
        total = self.step_hits + self.step_misses
        return self.step_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "token_hits": self.token_hits,
            "token_misses": self.token_misses,
            "block_evictions": self.block_evictions,
            "block_insertions": self.block_insertions,
            "hit_rate": self.hit_rate,
            "step_hit_rate": self.step_hit_rate,
        }


class BlockGpuCache:
    """Block-granular cache of key/value pairs with LRU or LFU eviction.

    Args:
        capacity_tokens: total number of tokens the cache may hold on GPU
            (e.g. 4096 in the paper's experiments).
        block_size: tokens per block (128 in the paper).
        policy: ``"lru"`` or ``"lfu"``.
        k_cache_blocks: number of top blocks used to update the cache per
            retrieval (``k_cache`` in the paper; 32 by default).
    """

    def __init__(
        self,
        capacity_tokens: int,
        block_size: int = 128,
        policy: str = "lru",
        k_cache_blocks: int = 32,
    ) -> None:
        if capacity_tokens < 0:
            raise ConfigurationError("capacity_tokens must be >= 0")
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if policy not in ("lru", "lfu"):
            raise ConfigurationError(f"unknown eviction policy: {policy!r}")
        if k_cache_blocks <= 0:
            raise ConfigurationError("k_cache_blocks must be positive")

        self.capacity_tokens = int(capacity_tokens)
        self.block_size = int(block_size)
        self.policy = policy
        self.k_cache_blocks = int(k_cache_blocks)
        self.capacity_blocks = self.capacity_tokens // self.block_size

        # LRU order is maintained by OrderedDict insertion order; LFU uses
        # the frequency counter with LRU tie-breaking via the same ordering.
        self._blocks: OrderedDict[int, int] = OrderedDict()  # block id -> freq
        self._clock = 0
        self.stats = CacheStats()

    # ----------------------------------------------------------- inspection

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: int) -> bool:
        return int(block_id) in self._blocks

    @property
    def resident_blocks(self) -> list[int]:
        """Block ids currently held on GPU (unspecified order)."""
        return list(self._blocks)

    def block_of(self, token_index: int) -> int:
        """Block id containing ``token_index``."""
        return int(token_index) // self.block_size

    def tokens_to_blocks(self, token_indices: np.ndarray) -> np.ndarray:
        """Unique block ids covering ``token_indices``."""
        token_indices = np.asarray(token_indices, dtype=np.int64)
        return np.unique(token_indices // self.block_size)

    # -------------------------------------------------------------- lookups

    def lookup(self, token_indices: np.ndarray) -> dict:
        """Check which requested tokens are cached, without updating.

        Returns a dict with ``hit_tokens``, ``miss_tokens`` (arrays of token
        indices) and ``miss_blocks`` (block ids that would need fetching).
        """
        token_indices = np.asarray(token_indices, dtype=np.int64)
        if token_indices.size == 0:
            return {
                "hit_tokens": token_indices,
                "miss_tokens": token_indices,
                "miss_blocks": np.empty(0, dtype=np.int64),
            }
        blocks = token_indices // self.block_size
        resident = np.array(
            [int(b) in self._blocks for b in blocks], dtype=bool
        )
        return {
            "hit_tokens": token_indices[resident],
            "miss_tokens": token_indices[~resident],
            "miss_blocks": np.unique(blocks[~resident]),
        }

    def access(self, token_indices: np.ndarray) -> dict:
        """Serve a top-k retrieval and update the cache.

        The update follows the paper: the ``k_cache`` blocks containing the
        most requested tokens are inserted (or refreshed), evicting according
        to the configured policy.  Returns the same dict as :meth:`lookup`
        computed *before* the update, so miss counts reflect actual PCIe
        traffic for this step.
        """
        self._clock += 1
        self.stats.lookups += 1
        result = self.lookup(token_indices)
        hits = int(result["hit_tokens"].size)
        misses = int(result["miss_tokens"].size)
        self.stats.token_hits += hits
        self.stats.token_misses += misses
        self.stats.step_hits += hits
        self.stats.step_misses += misses

        token_indices = np.asarray(token_indices, dtype=np.int64)
        if token_indices.size == 0 or self.capacity_blocks == 0:
            return result

        # Rank blocks by how many of the requested tokens they contain and
        # keep the k_cache most useful ones for the update.
        blocks, counts = np.unique(
            token_indices // self.block_size, return_counts=True
        )
        order = np.argsort(-counts, kind="stable")
        update_blocks = blocks[order][: self.k_cache_blocks]

        for block_id in update_blocks:
            self._touch(int(block_id))
        return result

    def begin_step(self) -> None:
        """Mark the start of a new decode step.

        Resets the per-step hit/miss counters so that
        :attr:`CacheStats.step_hit_rate` covers exactly the accesses of the
        step in progress (one per transformer layer), not just the most
        recent one and not the whole lifetime.
        """
        self.stats.step_hits = 0
        self.stats.step_misses = 0

    # -------------------------------------------------------------- updates

    def _touch(self, block_id: int) -> None:
        """Insert or refresh a block, evicting if necessary."""
        if block_id in self._blocks:
            freq = self._blocks.pop(block_id)
            self._blocks[block_id] = freq + 1
            return

        if len(self._blocks) >= self.capacity_blocks:
            self._evict_one()
        self._blocks[block_id] = 1
        self.stats.block_insertions += 1

    def _evict_one(self) -> None:
        if not self._blocks:
            return
        if self.policy == "lru":
            victim = next(iter(self._blocks))
        else:  # lfu with lru tie-break: earliest-inserted among min frequency
            min_freq = min(self._blocks.values())
            victim = next(
                block for block, freq in self._blocks.items() if freq == min_freq
            )
        del self._blocks[victim]
        self.stats.block_evictions += 1

    def clear(self) -> None:
        """Drop all cached blocks and reset statistics."""
        self._blocks.clear()
        self.stats = CacheStats()

    # ------------------------------------------------------------ accounting

    def miss_bytes(
        self,
        token_indices: np.ndarray,
        bytes_per_token: float,
    ) -> float:
        """PCIe bytes required to serve ``token_indices`` given current state."""
        result = self.lookup(token_indices)
        return float(result["miss_tokens"].size) * float(bytes_per_token)
