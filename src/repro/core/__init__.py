"""Core PQCache algorithms: K-Means, Product Quantization, the PQCache
manager, the adaptive clustering planner, and the GPU block cache."""

from .adaptive import AdaptiveIterationPlanner, ClusteringProfile, ComputeProfile
from .gpu_cache import BlockGpuCache, CacheStats
from .kmeans import KMeansResult, kmeans_assign, kmeans_fit, kmeans_plus_plus_init
from .pq import PQConfig, ProductQuantizer, stack_codebooks
from .pqcache import PQCacheConfig, PQCacheManager

__all__ = [
    "AdaptiveIterationPlanner",
    "ClusteringProfile",
    "ComputeProfile",
    "BlockGpuCache",
    "CacheStats",
    "KMeansResult",
    "kmeans_assign",
    "kmeans_fit",
    "kmeans_plus_plus_init",
    "PQConfig",
    "ProductQuantizer",
    "stack_codebooks",
    "PQCacheConfig",
    "PQCacheManager",
]
