"""Adaptive K-Means iteration budgeting (paper §3.3, Eq. 1-3).

PQ codebook training runs on otherwise-idle CPU cores while the GPU computes
the same transformer layer.  To guarantee that clustering never blocks the
GPU, PQCache fits two simple cost curves from a handful of profiling runs:

* clustering time    ``T_clus(s, T) = alpha1 + beta1 * s * T``      (Eq. 1)
* layer compute time ``T_comp(s)   = alpha2 + beta2 * s + gamma2 * s^2``  (Eq. 2)

and caps the Lloyd iteration count at the ``T_max`` for which the two are
equal (Eq. 3), clipped to a configurable range.  This module implements the
profiling-record container, least-squares fitting of both curves, and the
``T_max`` computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, NotFittedError

__all__ = [
    "ClusteringProfile",
    "ComputeProfile",
    "AdaptiveIterationPlanner",
]


@dataclass(frozen=True)
class ClusteringProfile:
    """One profiling observation of K-Means clustering time.

    Attributes:
        seq_len: prompt length ``s`` used in the run.
        iterations: Lloyd iterations ``T`` executed.
        seconds: measured wall-clock time of the clustering job.
    """

    seq_len: int
    iterations: int
    seconds: float


@dataclass(frozen=True)
class ComputeProfile:
    """One profiling observation of single-layer transformer compute time."""

    seq_len: int
    seconds: float


@dataclass
class AdaptiveIterationPlanner:
    """Fits Eq. 1-2 and produces the iteration cap of Eq. 3.

    Attributes:
        min_iterations: lower clip for the returned budget, so clustering
            never degenerates to pure k-means++ seeding unless forced.
        max_iterations: upper clip, so very long prompts do not run K-Means
            forever just because the GPU is busy.
    """

    min_iterations: int = 1
    max_iterations: int = 60

    _clus_coeffs: tuple[float, float] | None = field(default=None, repr=False)
    _comp_coeffs: tuple[float, float, float] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.min_iterations < 0:
            raise ConfigurationError("min_iterations must be >= 0")
        if self.max_iterations < self.min_iterations:
            raise ConfigurationError("max_iterations must be >= min_iterations")

    # ------------------------------------------------------------- fitting

    def fit_clustering(self, profiles: list[ClusteringProfile]) -> tuple[float, float]:
        """Least-squares fit of ``alpha1 + beta1 * s * T`` to observations."""
        if len(profiles) < 2:
            raise ConfigurationError(
                "need at least 2 clustering profiles to fit Eq. 1"
            )
        st = np.array([p.seq_len * p.iterations for p in profiles], dtype=np.float64)
        y = np.array([p.seconds for p in profiles], dtype=np.float64)
        design = np.stack([np.ones_like(st), st], axis=1)
        coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
        alpha1, beta1 = float(coeffs[0]), float(coeffs[1])
        beta1 = max(beta1, 1e-12)
        self._clus_coeffs = (alpha1, beta1)
        return self._clus_coeffs

    def fit_compute(self, profiles: list[ComputeProfile]) -> tuple[float, float, float]:
        """Least-squares fit of ``alpha2 + beta2*s + gamma2*s^2``."""
        if len(profiles) < 3:
            raise ConfigurationError(
                "need at least 3 compute profiles to fit Eq. 2"
            )
        s = np.array([p.seq_len for p in profiles], dtype=np.float64)
        y = np.array([p.seconds for p in profiles], dtype=np.float64)
        design = np.stack([np.ones_like(s), s, s * s], axis=1)
        coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
        self._comp_coeffs = (float(coeffs[0]), float(coeffs[1]), float(coeffs[2]))
        return self._comp_coeffs

    # ----------------------------------------------------------- prediction

    @property
    def clustering_coefficients(self) -> tuple[float, float]:
        if self._clus_coeffs is None:
            raise NotFittedError("clustering cost model not fitted")
        return self._clus_coeffs

    @property
    def compute_coefficients(self) -> tuple[float, float, float]:
        if self._comp_coeffs is None:
            raise NotFittedError("compute cost model not fitted")
        return self._comp_coeffs

    def predict_clustering_time(self, seq_len: int, iterations: int) -> float:
        """Predicted clustering time for ``seq_len`` and ``iterations`` (Eq. 1)."""
        alpha1, beta1 = self.clustering_coefficients
        return alpha1 + beta1 * float(seq_len) * float(iterations)

    def predict_compute_time(self, seq_len: int) -> float:
        """Predicted single-layer compute time for ``seq_len`` (Eq. 2)."""
        alpha2, beta2, gamma2 = self.compute_coefficients
        s = float(seq_len)
        return alpha2 + beta2 * s + gamma2 * s * s

    def max_iterations_for(self, seq_len: int) -> int:
        """Largest iteration count whose clustering time fits under the GPU
        compute time of the same layer (Eq. 3), clipped to the configured
        range."""
        if seq_len <= 0:
            raise ConfigurationError("seq_len must be positive")
        alpha1, beta1 = self.clustering_coefficients
        alpha2, beta2, gamma2 = self.compute_coefficients
        s = float(seq_len)
        t_max = (gamma2 * s * s + beta2 * s + alpha2 - alpha1) / (beta1 * s)
        t_max = int(np.floor(t_max))
        return int(np.clip(t_max, self.min_iterations, self.max_iterations))

    # -------------------------------------------------------------- helpers

    @classmethod
    def from_device_model(
        cls,
        compute_seconds_fn,
        clustering_seconds_per_point: float,
        clustering_setup_seconds: float = 1e-3,
        seq_lens: tuple[int, ...] = (1024, 4096, 16384, 65536),
        min_iterations: int = 1,
        max_iterations: int = 60,
    ) -> "AdaptiveIterationPlanner":
        """Build a planner from an analytical device model.

        ``compute_seconds_fn(s)`` must return single-layer compute time; the
        clustering curve is synthesised from a per-point-per-iteration cost.
        This is how the latency benchmarks construct planners without real
        hardware profiling.
        """
        planner = cls(min_iterations=min_iterations, max_iterations=max_iterations)
        clus = [
            ClusteringProfile(s, t, clustering_setup_seconds
                              + clustering_seconds_per_point * s * t)
            for s in seq_lens
            for t in (1, 8, 32)
        ]
        comp = [ComputeProfile(s, float(compute_seconds_fn(s))) for s in seq_lens]
        planner.fit_clustering(clus)
        planner.fit_compute(comp)
        return planner
