"""Product Quantization (PQ) for approximate inner-product search over keys.

This is the retrieval core of PQCache (paper §2.2, §3.1).  A
:class:`ProductQuantizer` splits each ``dim``-dimensional key vector into
``m`` contiguous sub-vectors, clusters every sub-space into ``2**b``
centroids, and represents each key by ``m`` small integer codes.  At decode
time a query is scored against all encoded keys with Asymmetric Distance
Computation (ADC): the query is split the same way, a ``(m, 2**b)`` lookup
table of sub-space inner products is built from the centroids, and the
approximate score of a key is the sum of table entries selected by its codes.

The quantizer is storage-agnostic: :class:`repro.core.pqcache.PQCacheManager`
owns the per-layer/per-head instances and the interaction with the memory
hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, DimensionError, NotFittedError
from ..utils import as_rng, check_2d
from .kmeans import kmeans_assign, kmeans_fit

__all__ = ["PQConfig", "ProductQuantizer"]


@dataclass(frozen=True)
class PQConfig:
    """Hyper-parameters of a product quantizer.

    Attributes:
        dim: dimensionality of the vectors being quantized (``d_h``).
        num_partitions: ``m`` — number of sub-spaces.
        num_bits: ``b`` — bits per code; each sub-space has ``2**b`` centroids.
        max_kmeans_iters: Lloyd iteration budget per sub-space (``T``).
        seed: RNG seed used for codebook training.
    """

    dim: int
    num_partitions: int = 2
    num_bits: int = 6
    max_kmeans_iters: int = 25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ConfigurationError("dim must be positive")
        if self.num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        if self.dim % self.num_partitions != 0:
            raise ConfigurationError(
                f"dim ({self.dim}) must be divisible by num_partitions "
                f"({self.num_partitions})"
            )
        if not 1 <= self.num_bits <= 16:
            raise ConfigurationError("num_bits must be in [1, 16]")
        if self.max_kmeans_iters < 0:
            raise ConfigurationError("max_kmeans_iters must be >= 0")

    @property
    def num_centroids(self) -> int:
        """Centroids per sub-space (``2**b``)."""
        return 1 << self.num_bits

    @property
    def sub_dim(self) -> int:
        """Dimensionality of each sub-space (``d_m = d_h / m``)."""
        return self.dim // self.num_partitions

    def code_bytes_per_vector(self) -> float:
        """Storage cost of one encoded vector in bytes (``m * b / 8``)."""
        return self.num_partitions * self.num_bits / 8.0

    def centroid_bytes(self, dtype_bytes: int = 2) -> int:
        """Storage cost of the codebooks (defaults to fp16 like the paper)."""
        return self.num_partitions * self.num_centroids * self.sub_dim * dtype_bytes


class ProductQuantizer:
    """Product quantizer with inner-product ADC scoring.

    Typical usage::

        pq = ProductQuantizer(PQConfig(dim=128, num_partitions=2, num_bits=6))
        codes = pq.fit(keys)               # (s, m) uint16 codes
        scores = pq.score(query, codes)    # (s,) approximate q.k scores
    """

    def __init__(self, config: PQConfig) -> None:
        self.config = config
        self._centroids: np.ndarray | None = None  # (m, 2**b, d_m)

    # ------------------------------------------------------------------ fit

    @property
    def is_fitted(self) -> bool:
        return self._centroids is not None

    @property
    def centroids(self) -> np.ndarray:
        """Codebooks of shape ``(m, 2**b, sub_dim)``."""
        if self._centroids is None:
            raise NotFittedError("ProductQuantizer has not been fitted")
        return self._centroids

    def _split(self, vectors: np.ndarray) -> np.ndarray:
        """Reshape ``(n, dim)`` into ``(m, n, sub_dim)`` sub-vectors."""
        cfg = self.config
        vectors = check_2d(vectors, "vectors")
        if vectors.shape[1] != cfg.dim:
            raise DimensionError(
                f"vectors must have dim {cfg.dim}, got {vectors.shape[1]}"
            )
        n = vectors.shape[0]
        return (
            vectors.reshape(n, cfg.num_partitions, cfg.sub_dim)
            .transpose(1, 0, 2)
            .copy()
        )

    def fit(
        self,
        keys: np.ndarray,
        max_iters: int | None = None,
    ) -> np.ndarray:
        """Train codebooks on ``keys`` and return their codes.

        Args:
            keys: ``(n, dim)`` key vectors from the prefilling phase.
            max_iters: optional override of the Lloyd iteration budget,
                used by the adaptive scheduler.

        Returns:
            ``(n, m)`` array of integer codes (dtype ``uint16``).
        """
        cfg = self.config
        iters = cfg.max_kmeans_iters if max_iters is None else int(max_iters)
        rng = as_rng(cfg.seed)
        sub_vectors = self._split(keys)

        centroids = np.empty(
            (cfg.num_partitions, cfg.num_centroids, cfg.sub_dim), dtype=np.float64
        )
        codes = np.empty((keys.shape[0], cfg.num_partitions), dtype=np.uint16)
        total_iters = 0
        for part in range(cfg.num_partitions):
            result = kmeans_fit(
                sub_vectors[part],
                n_clusters=cfg.num_centroids,
                max_iter=iters,
                seed=rng,
            )
            centroids[part] = result.centroids
            codes[:, part] = result.labels.astype(np.uint16)
            total_iters += result.n_iter

        self._centroids = centroids
        self.last_fit_iterations = total_iters
        return codes

    # --------------------------------------------------------------- encode

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Encode new vectors with the existing codebooks.

        Used when local tokens are evicted from the GPU sliding window and
        must be assigned PQ codes based on their nearest centroids
        (paper §3.1, end of overview).
        """
        centroids = self.centroids
        sub_vectors = self._split(vectors)
        codes = np.empty(
            (vectors.shape[0], self.config.num_partitions), dtype=np.uint16
        )
        for part in range(self.config.num_partitions):
            codes[:, part] = kmeans_assign(
                sub_vectors[part], centroids[part]
            ).astype(np.uint16)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes, shape ``(n, dim)``."""
        centroids = self.centroids
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.config.num_partitions:
            raise DimensionError(
                f"codes must have shape (n, {self.config.num_partitions})"
            )
        parts = [
            centroids[part][codes[:, part].astype(np.int64)]
            for part in range(self.config.num_partitions)
        ]
        return np.concatenate(parts, axis=1)

    # ---------------------------------------------------------------- score

    def lookup_table(self, query: np.ndarray) -> np.ndarray:
        """Inner products between a query's sub-vectors and every centroid.

        Returns a ``(m, 2**b)`` table; this corresponds to the
        ``(h, m, 1, d_m) x (h, m, d_m, 2**b)`` multiplication in §3.2.
        """
        cfg = self.config
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != cfg.dim:
            raise DimensionError(
                f"query must have dim {cfg.dim}, got {query.shape[0]}"
            )
        centroids = self.centroids
        sub_queries = query.reshape(cfg.num_partitions, cfg.sub_dim)
        # (m, 2**b) = sum_d (m, 1, d) * (m, 2**b, d)
        return np.einsum("md,mcd->mc", sub_queries, centroids)

    def score(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate inner products ``q . k_i`` for every encoded key.

        Args:
            query: ``(dim,)`` query vector.
            codes: ``(n, m)`` PQ codes of the candidate keys.

        Returns:
            ``(n,)`` approximate scores.
        """
        table = self.lookup_table(query)
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != self.config.num_partitions:
            raise DimensionError(
                f"codes must have shape (n, {self.config.num_partitions})"
            )
        # Gather-and-reduce: (n, m) codes index into (m, 2**b) table.
        gathered = table[np.arange(self.config.num_partitions)[None, :], codes]
        return gathered.sum(axis=1)

    def reconstruction_error(self, vectors: np.ndarray) -> float:
        """Mean squared reconstruction error of ``vectors`` (diagnostics)."""
        approx = self.decode(self.encode(vectors))
        exact = check_2d(vectors, "vectors")
        return float(np.mean((approx - exact) ** 2))

    # ------------------------------------------------------------ accounting

    def memory_footprint(self, num_vectors: int, dtype_bytes: int = 2) -> dict:
        """Bytes used by codes and centroids for ``num_vectors`` keys."""
        cfg = self.config
        return {
            "codes_bytes": int(np.ceil(cfg.code_bytes_per_vector() * num_vectors)),
            "centroid_bytes": cfg.centroid_bytes(dtype_bytes),
            "raw_bytes": num_vectors * cfg.dim * dtype_bytes,
        }
