"""Product Quantization (PQ) for approximate inner-product search over keys.

This is the retrieval core of PQCache (paper §2.2, §3.1).  A
:class:`ProductQuantizer` splits each ``dim``-dimensional key vector into
``m`` contiguous sub-vectors, clusters every sub-space into ``2**b``
centroids, and represents each key by ``m`` small integer codes.  At decode
time a query is scored against all encoded keys with Asymmetric Distance
Computation (ADC): the query is split the same way, a ``(m, 2**b)`` lookup
table of sub-space inner products is built from the centroids, and the
approximate score of a key is the sum of table entries selected by its codes.

The quantizer is storage-agnostic: :class:`repro.core.pqcache.PQCacheManager`
owns the per-layer/per-head instances and the interaction with the memory
hierarchy.

Batched ADC layout
------------------
The decode hot path scores *all* KV heads of a layer at once instead of
looping over per-head quantizers in Python.  The batched entry points take an
explicit stacked-codebook tensor of shape ``(h, m, 2**b, sub_dim)`` (build it
with :func:`stack_codebooks`):

* :meth:`ProductQuantizer.lookup_table_batch` — ``(h, dim)`` queries →
  ``(h, m, 2**b)`` tables, the paper's §3.2
  ``(h, m, 1, d_m) x (h, m, d_m, 2**b)`` multiplication as one einsum.
* :meth:`ProductQuantizer.score_batch` — gather-and-reduce of ``(h, n, m)``
  codes against those tables in one fancy-indexing pass → ``(h, n)`` scores.
* :meth:`ProductQuantizer.encode_batch` — nearest-centroid assignment of
  ``(h, n, dim)`` vectors → ``(h, n, m)`` codes via one batched ``matmul``.

The per-head methods (:meth:`~ProductQuantizer.lookup_table`,
:meth:`~ProductQuantizer.score`, :meth:`~ProductQuantizer.encode`) are thin
``h == 1`` wrappers over the batched kernels, and the formulations are chosen
so batched and per-head results are *bitwise identical* (same einsum
contraction per output element, same ``matmul`` BLAS path, same reduction
axis lengths) — equivalence tests may compare them exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, DimensionError, NotFittedError
from ..utils import as_rng, check_2d
from .kmeans import kmeans_fit, kmeans_refine

__all__ = ["PQConfig", "ProductQuantizer", "stack_codebooks"]


def stack_codebooks(quantizers: "Sequence[ProductQuantizer]") -> np.ndarray:
    """Stack fitted per-head codebooks into one ``(h, m, 2**b, sub_dim)`` tensor.

    All quantizers must be fitted and share the same :class:`PQConfig`
    geometry; the result feeds the ``*_batch`` kernels.
    """
    if not quantizers:
        raise ConfigurationError("need at least one quantizer to stack")
    shapes = {pq.centroids.shape for pq in quantizers}
    if len(shapes) != 1:
        raise DimensionError(
            f"cannot stack codebooks with mixed shapes: {sorted(shapes)}"
        )
    return np.stack([pq.centroids for pq in quantizers], axis=0)


@dataclass(frozen=True)
class PQConfig:
    """Hyper-parameters of a product quantizer.

    Attributes:
        dim: dimensionality of the vectors being quantized (``d_h``).
        num_partitions: ``m`` — number of sub-spaces.
        num_bits: ``b`` — bits per code; each sub-space has ``2**b`` centroids.
        max_kmeans_iters: Lloyd iteration budget per sub-space (``T``).
        seed: RNG seed used for codebook training.
    """

    dim: int
    num_partitions: int = 2
    num_bits: int = 6
    max_kmeans_iters: int = 25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ConfigurationError("dim must be positive")
        if self.num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        if self.dim % self.num_partitions != 0:
            raise ConfigurationError(
                f"dim ({self.dim}) must be divisible by num_partitions "
                f"({self.num_partitions})"
            )
        if not 1 <= self.num_bits <= 16:
            raise ConfigurationError("num_bits must be in [1, 16]")
        if self.max_kmeans_iters < 0:
            raise ConfigurationError("max_kmeans_iters must be >= 0")

    @property
    def num_centroids(self) -> int:
        """Centroids per sub-space (``2**b``)."""
        return 1 << self.num_bits

    @property
    def sub_dim(self) -> int:
        """Dimensionality of each sub-space (``d_m = d_h / m``)."""
        return self.dim // self.num_partitions

    def code_bytes_per_vector(self) -> float:
        """Storage cost of one encoded vector in bytes (``m * b / 8``)."""
        return self.num_partitions * self.num_bits / 8.0

    def centroid_bytes(self, dtype_bytes: int = 2) -> int:
        """Storage cost of the codebooks (defaults to fp16 like the paper)."""
        return self.num_partitions * self.num_centroids * self.sub_dim * dtype_bytes


class ProductQuantizer:
    """Product quantizer with inner-product ADC scoring.

    Typical usage::

        pq = ProductQuantizer(PQConfig(dim=128, num_partitions=2, num_bits=6))
        codes = pq.fit(keys)               # (s, m) uint16 codes
        scores = pq.score(query, codes)    # (s,) approximate q.k scores
    """

    def __init__(self, config: PQConfig) -> None:
        self.config = config
        self._centroids: np.ndarray | None = None  # (m, 2**b, d_m)

    # ------------------------------------------------------------------ fit

    @property
    def is_fitted(self) -> bool:
        return self._centroids is not None

    def clone(self) -> "ProductQuantizer":
        """Independent copy sharing no mutable state (centroids are copied).

        The copy-on-write path of :class:`~repro.core.pqcache.PQCacheManager`
        uses this before :meth:`refine` mutates centroids that a prefix-cache
        snapshot still references.
        """
        other = ProductQuantizer(self.config)
        if self._centroids is not None:
            other._centroids = self._centroids.copy()
        return other

    @property
    def centroids(self) -> np.ndarray:
        """Codebooks of shape ``(m, 2**b, sub_dim)``."""
        if self._centroids is None:
            raise NotFittedError("ProductQuantizer has not been fitted")
        return self._centroids

    def _split(self, vectors: np.ndarray) -> np.ndarray:
        """Reshape ``(n, dim)`` into ``(m, n, sub_dim)`` sub-vectors."""
        cfg = self.config
        vectors = check_2d(vectors, "vectors")
        if vectors.shape[1] != cfg.dim:
            raise DimensionError(
                f"vectors must have dim {cfg.dim}, got {vectors.shape[1]}"
            )
        n = vectors.shape[0]
        return (
            vectors.reshape(n, cfg.num_partitions, cfg.sub_dim)
            .transpose(1, 0, 2)
            .copy()
        )

    def fit(
        self,
        keys: np.ndarray,
        max_iters: int | None = None,
    ) -> np.ndarray:
        """Train codebooks on ``keys`` and return their codes.

        Args:
            keys: ``(n, dim)`` key vectors from the prefilling phase.
            max_iters: optional override of the Lloyd iteration budget,
                used by the adaptive scheduler.

        Returns:
            ``(n, m)`` array of integer codes (dtype ``uint16``).
        """
        cfg = self.config
        iters = cfg.max_kmeans_iters if max_iters is None else int(max_iters)
        rng = as_rng(cfg.seed)
        sub_vectors = self._split(keys)

        centroids = np.empty(
            (cfg.num_partitions, cfg.num_centroids, cfg.sub_dim), dtype=np.float64
        )
        codes = np.empty((keys.shape[0], cfg.num_partitions), dtype=np.uint16)
        total_iters = 0
        for part in range(cfg.num_partitions):
            result = kmeans_fit(
                sub_vectors[part],
                n_clusters=cfg.num_centroids,
                max_iter=iters,
                seed=rng,
            )
            centroids[part] = result.centroids
            codes[:, part] = result.labels.astype(np.uint16)
            total_iters += result.n_iter

        self._centroids = centroids
        self.last_fit_iterations = total_iters
        return codes

    def refine(
        self,
        keys: np.ndarray,
        max_iters: int | None = None,
        tol: float = 1e-6,
    ) -> np.ndarray:
        """Continue Lloyd iterations from the current codebooks over ``keys``.

        This is the incremental-construction companion of :meth:`fit`: the
        chunked prefill pipeline fits codebooks from a sampled sketch of the
        earliest chunk(s), stream-encodes later chunks as they arrive, and
        finally refines the codebooks over the full key set — reusing the
        sketch's cluster structure instead of re-seeding from scratch.

        Args:
            keys: ``(n, dim)`` key vectors to refine over (typically every
                prefilled key of the head).
            max_iters: optional override of the Lloyd iteration budget.
            tol: relative inertia-improvement convergence tolerance.

        Returns:
            ``(n, m)`` refreshed codes of ``keys`` under the updated
            codebooks (dtype ``uint16``).
        """
        centroids = self.centroids  # raises NotFittedError when unfitted
        cfg = self.config
        iters = cfg.max_kmeans_iters if max_iters is None else int(max_iters)
        sub_vectors = self._split(keys)

        updated = np.empty_like(centroids)
        codes = np.empty((keys.shape[0], cfg.num_partitions), dtype=np.uint16)
        total_iters = 0
        for part in range(cfg.num_partitions):
            result = kmeans_refine(
                sub_vectors[part], centroids[part], max_iter=iters, tol=tol
            )
            updated[part] = result.centroids
            codes[:, part] = result.labels.astype(np.uint16)
            total_iters += result.n_iter

        self._centroids = updated
        self.last_refine_iterations = total_iters
        return codes

    # ------------------------------------------------------ batched kernels

    @staticmethod
    def _check_codebooks(codebooks: np.ndarray) -> np.ndarray:
        codebooks = np.asarray(codebooks, dtype=np.float64)
        if codebooks.ndim != 4:
            raise DimensionError(
                "codebooks must have shape (h, m, num_centroids, sub_dim), "
                f"got {codebooks.shape}"
            )
        return codebooks

    @staticmethod
    def lookup_table_batch(
        codebooks: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """ADC lookup tables for all heads at once.

        Args:
            codebooks: ``(h, m, 2**b, sub_dim)`` stacked codebooks.
            queries: ``(h, dim)`` one query vector per head.

        Returns:
            ``(h, m, 2**b)`` inner-product tables — the §3.2
            ``(h, m, 1, d_m) x (h, m, d_m, 2**b)`` product as one einsum.
        """
        codebooks = ProductQuantizer._check_codebooks(codebooks)
        h, m, _, sub_dim = codebooks.shape
        queries = np.asarray(queries, dtype=np.float64)
        if queries.shape != (h, m * sub_dim):
            raise DimensionError(
                f"queries must have shape ({h}, {m * sub_dim}), "
                f"got {queries.shape}"
            )
        sub_queries = queries.reshape(h, m, sub_dim)
        return np.einsum("hmd,hmcd->hmc", sub_queries, codebooks)

    @staticmethod
    def score_batch(
        codebooks: np.ndarray, queries: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Approximate inner products for all heads' codes in one pass.

        Args:
            codebooks: ``(h, m, 2**b, sub_dim)`` stacked codebooks.
            queries: ``(h, dim)`` one query vector per head.
            codes: ``(h, n, m)`` PQ codes (any integer dtype; views into a
                shared ``(capacity, h, m)`` buffer work unchanged).

        Returns:
            ``(h, n)`` approximate scores.
        """
        tables = ProductQuantizer.lookup_table_batch(codebooks, queries)
        h, m, _ = tables.shape
        codes = np.asarray(codes)
        if codes.ndim != 3 or codes.shape[0] != h or codes.shape[2] != m:
            raise DimensionError(
                f"codes must have shape ({h}, n, {m}), got {codes.shape}"
            )
        # One 1-D ``take`` per (head, sub-space) is ~10x faster than a single
        # broadcast fancy-index over the (h, n, m) code tensor.  For m < 8
        # the per-key reduction is accumulated with sequential in-place adds,
        # which numpy's sum uses too at that length — results stay bitwise
        # identical to the per-head ``gathered.sum(axis=1)``; at m >= 8
        # numpy switches to unrolled accumulators, so we defer to the same
        # ``sum`` reduction to keep exact equality.
        n = codes.shape[1]
        if m < 8:
            scores = np.empty((h, n), dtype=np.float64)
            for head in range(h):
                head_table = tables[head]
                head_codes = codes[head]
                acc = head_table[0].take(head_codes[:, 0])
                for part in range(1, m):
                    acc += head_table[part].take(head_codes[:, part])
                scores[head] = acc
            return scores
        gathered = np.empty((h, n, m), dtype=np.float64)
        for head in range(h):
            head_table = tables[head]
            head_codes = codes[head]
            for part in range(m):
                gathered[head, :, part] = head_table[part].take(
                    head_codes[:, part]
                )
        return gathered.sum(axis=2)

    @staticmethod
    def encode_batch(codebooks: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Nearest-centroid codes for all heads' vectors in one pass.

        Args:
            codebooks: ``(h, m, 2**b, sub_dim)`` stacked codebooks.
            vectors: ``(h, n, dim)`` vectors to encode.

        Returns:
            ``(h, n, m)`` uint16 codes, identical to running
            :func:`~repro.core.kmeans.kmeans_assign` per head and sub-space.
        """
        codebooks = ProductQuantizer._check_codebooks(codebooks)
        h, m, _, sub_dim = codebooks.shape
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 3 or vectors.shape[0] != h or vectors.shape[2] != m * sub_dim:
            raise DimensionError(
                f"vectors must have shape ({h}, n, {m * sub_dim}), "
                f"got {vectors.shape}"
            )
        n = vectors.shape[1]
        sub = vectors.reshape(h, n, m, sub_dim).transpose(0, 2, 1, 3)
        # Same ||x||^2 - 2 x.c + ||c||^2 expansion as kmeans_assign, with the
        # cross term as a batched matmul so results stay bitwise identical to
        # the per-head BLAS path.
        x_sq = np.einsum("hmnd,hmnd->hmn", sub, sub)[..., None]
        c_sq = np.einsum("hmcd,hmcd->hmc", codebooks, codebooks)[:, :, None, :]
        dists = x_sq - 2.0 * (sub @ codebooks.transpose(0, 1, 3, 2)) + c_sq
        np.maximum(dists, 0.0, out=dists)
        return (
            dists.argmin(axis=3).transpose(0, 2, 1).astype(np.uint16)
        )  # (h, n, m)

    # --------------------------------------------------------------- encode

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Encode new vectors with the existing codebooks.

        Used when local tokens are evicted from the GPU sliding window and
        must be assigned PQ codes based on their nearest centroids
        (paper §3.1, end of overview).  Thin ``h == 1`` wrapper over
        :meth:`encode_batch`.
        """
        centroids = self.centroids
        vectors = check_2d(vectors, "vectors")
        if vectors.shape[1] != self.config.dim:
            raise DimensionError(
                f"vectors must have dim {self.config.dim}, got {vectors.shape[1]}"
            )
        return self.encode_batch(centroids[None], vectors[None])[0]

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes, shape ``(n, dim)``."""
        centroids = self.centroids
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.config.num_partitions:
            raise DimensionError(
                f"codes must have shape (n, {self.config.num_partitions})"
            )
        parts = [
            centroids[part][codes[:, part].astype(np.int64)]
            for part in range(self.config.num_partitions)
        ]
        return np.concatenate(parts, axis=1)

    # ---------------------------------------------------------------- score

    def lookup_table(self, query: np.ndarray) -> np.ndarray:
        """Inner products between a query's sub-vectors and every centroid.

        Returns a ``(m, 2**b)`` table; thin ``h == 1`` wrapper over
        :meth:`lookup_table_batch`.
        """
        cfg = self.config
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != cfg.dim:
            raise DimensionError(
                f"query must have dim {cfg.dim}, got {query.shape[0]}"
            )
        return self.lookup_table_batch(self.centroids[None], query[None])[0]

    def score(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate inner products ``q . k_i`` for every encoded key.

        Thin ``h == 1`` wrapper over :meth:`score_batch`.

        Args:
            query: ``(dim,)`` query vector.
            codes: ``(n, m)`` PQ codes of the candidate keys.

        Returns:
            ``(n,)`` approximate scores.
        """
        cfg = self.config
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != cfg.num_partitions:
            raise DimensionError(
                f"codes must have shape (n, {cfg.num_partitions})"
            )
        return self.score_batch(self.centroids[None], query[None], codes[None])[0]

    def reconstruction_error(self, vectors: np.ndarray) -> float:
        """Mean squared reconstruction error of ``vectors`` (diagnostics)."""
        approx = self.decode(self.encode(vectors))
        exact = check_2d(vectors, "vectors")
        return float(np.mean((approx - exact) ** 2))

    # ------------------------------------------------------------ accounting

    def memory_footprint(self, num_vectors: int, dtype_bytes: int = 2) -> dict:
        """Bytes used by codes and centroids for ``num_vectors`` keys."""
        cfg = self.config
        return {
            "codes_bytes": int(np.ceil(cfg.code_bytes_per_vector() * num_vectors)),
            "centroid_bytes": cfg.centroid_bytes(dtype_bytes),
            "raw_bytes": num_vectors * cfg.dim * dtype_bytes,
        }
