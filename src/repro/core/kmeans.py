"""K-Means clustering used for Product Quantization codebook training.

PQCache trains one codebook per (layer, head, sub-space) by running K-Means
over the sub-vectors of the prefilled keys (paper §3.1 step 2).  The paper's
system contribution is an *adaptive* iteration budget (§3.3): clustering runs
on otherwise-idle CPU cores and must finish under the GPU compute time of the
same layer, so the number of Lloyd iterations is capped by a fitted cost
model.  This module provides the clustering primitive with an explicit
``max_iter`` knob; the cost model lives in :mod:`repro.core.adaptive`.

Implementation notes
--------------------
* k-means++ seeding, Lloyd iterations, empty-cluster re-seeding from the
  points furthest from their centroid (distances taken against the *updated*
  centroids of the same iteration, not the stale pre-update ones).
* Convergence is declared only on stable labels or a *non-negative* inertia
  improvement below ``tol`` — a transient inertia increase (possible right
  after reseeding) keeps iterating instead of freezing a worse solution.
* Deterministic for a given ``seed``.
* Handles ``n_points < n_clusters`` gracefully (duplicates centroids), which
  happens for very short prompts or tiny sub-spaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..utils import as_rng, check_2d

__all__ = [
    "KMeansResult",
    "kmeans_fit",
    "kmeans_refine",
    "kmeans_assign",
    "kmeans_plus_plus_init",
]


def _converged(labels_stable: bool, improved: float, inertia: float, tol: float) -> bool:
    """Lloyd stopping rule.

    Convergence requires either stable labels or a *non-negative* inertia
    improvement below the tolerance.  A negative ``improved`` (inertia went
    up, which empty-cluster reseeding can cause transiently) must keep
    iterating — treating it as converged would freeze a worse solution.
    """
    if labels_stable:
        return True
    return 0.0 <= improved <= tol * max(inertia, 1e-12)


def _reseed_targets(
    points: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
    num_empty: int,
) -> np.ndarray:
    """Points that should seed empty clusters: the ones farthest from their
    assigned centroid, with distances measured against the *updated*
    centroids (stale pre-update distances can nominate points that the mean
    update has already pulled close, wasting the reseed)."""
    diffs = points - centroids[labels]
    dist_sq = np.einsum("ij,ij->i", diffs, diffs)
    return np.argsort(-dist_sq, kind="stable")[:num_empty]


@dataclass
class KMeansResult:
    """Outcome of a K-Means run.

    Attributes:
        centroids: ``(n_clusters, dim)`` cluster centres.
        labels: ``(n_points,)`` index of the closest centroid per point.
        inertia: sum of squared distances of points to their centroid.
        n_iter: number of Lloyd iterations actually executed.
        converged: whether the assignment stopped changing before the
            iteration budget was exhausted.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    converged: bool

    @property
    def n_clusters(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def dim(self) -> int:
        return int(self.centroids.shape[1])


def _pairwise_sq_dists(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(n_points, n_clusters)``."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; computed blockwise-free since
    # PQ sub-spaces are small (dim <= 64, clusters <= 256).
    x_sq = np.einsum("ij,ij->i", points, points)[:, None]
    c_sq = np.einsum("ij,ij->i", centroids, centroids)[None, :]
    cross = points @ centroids.T
    dists = x_sq - 2.0 * cross + c_sq
    np.maximum(dists, 0.0, out=dists)
    return dists


def kmeans_plus_plus_init(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportional to squared
    distance from already-chosen centres."""
    points = check_2d(points, "points")
    n_points = points.shape[0]
    n_clusters = min(n_clusters, n_points)

    centroids = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n_points))
    centroids[0] = points[first]
    closest_sq = np.einsum("ij,ij->i", points - centroids[0], points - centroids[0])

    for idx in range(1, n_clusters):
        total = float(closest_sq.sum())
        if total <= 1e-12:
            # All remaining points coincide with an existing centroid;
            # fall back to uniform choice.
            choice = int(rng.integers(n_points))
        else:
            probs = closest_sq / total
            choice = int(rng.choice(n_points, p=probs))
        centroids[idx] = points[choice]
        diff = points - centroids[idx]
        new_sq = np.einsum("ij,ij->i", diff, diff)
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centroids


def kmeans_assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Assign each point to its nearest centroid (labels only)."""
    points = check_2d(points, "points")
    centroids = check_2d(centroids, "centroids")
    dists = _pairwise_sq_dists(points, centroids)
    return np.argmin(dists, axis=1).astype(np.int64)


def kmeans_fit(
    points: np.ndarray,
    n_clusters: int,
    max_iter: int = 25,
    tol: float = 1e-6,
    seed: int | np.random.Generator | None = 0,
) -> KMeansResult:
    """Run k-means++ initialised Lloyd iterations.

    Args:
        points: ``(n_points, dim)`` training vectors.
        n_clusters: number of centroids (``2**b`` in PQ terms).
        max_iter: maximum number of Lloyd iterations.  ``0`` returns the
            k-means++ seeding directly, which is what the adaptive budget
            degenerates to for very short prompts.
        tol: relative inertia improvement below which we declare convergence.
        seed: RNG seed or generator.

    Returns:
        A :class:`KMeansResult`.
    """
    points = check_2d(points, "points")
    if n_clusters <= 0:
        raise ConfigurationError("n_clusters must be positive")
    if max_iter < 0:
        raise ConfigurationError("max_iter must be >= 0")

    rng = as_rng(seed)
    n_points, dim = points.shape

    if n_points <= n_clusters:
        # Degenerate case: every point is its own centroid, remaining slots
        # are filled by repeating points so downstream code always sees
        # exactly ``n_clusters`` rows.
        reps = int(np.ceil(n_clusters / n_points))
        centroids = np.tile(points, (reps, 1))[:n_clusters].copy()
        labels = np.arange(n_points, dtype=np.int64) % n_clusters
        return KMeansResult(centroids, labels, 0.0, 0, True)

    centroids = kmeans_plus_plus_init(points, n_clusters, rng)
    return _lloyd(points, centroids, max_iter, tol)


def kmeans_refine(
    points: np.ndarray,
    centroids: np.ndarray,
    max_iter: int = 25,
    tol: float = 1e-6,
) -> KMeansResult:
    """Continue Lloyd iterations from explicit initial centroids.

    This is the refinement primitive of the chunked-prefill PQ pipeline:
    codebooks fitted on a sampled sketch of the first chunk(s) are later
    re-optimised over the full key set without re-seeding, so the sketch
    build's cluster structure is reused instead of thrown away.

    Args:
        points: ``(n_points, dim)`` training vectors (the full set).
        centroids: ``(n_clusters, dim)`` starting centroids (e.g. from a
            sketch-based :func:`kmeans_fit`); not mutated.
        max_iter: maximum number of additional Lloyd iterations.  ``0``
            returns the assignment under the given centroids unchanged.
        tol: relative inertia improvement below which we declare convergence.

    Returns:
        A :class:`KMeansResult` (``n_iter`` counts only refinement iterations).
    """
    points = check_2d(points, "points")
    centroids = check_2d(centroids, "centroids").copy()
    if points.shape[1] != centroids.shape[1]:
        raise ConfigurationError(
            f"points dim {points.shape[1]} does not match centroids dim "
            f"{centroids.shape[1]}"
        )
    if max_iter < 0:
        raise ConfigurationError("max_iter must be >= 0")
    return _lloyd(points, centroids, max_iter, tol)


def _lloyd(
    points: np.ndarray,
    centroids: np.ndarray,
    max_iter: int,
    tol: float,
) -> KMeansResult:
    """Lloyd iterations from given starting centroids (mutates ``centroids``)."""
    n_points = points.shape[0]
    n_clusters = centroids.shape[0]
    dists = _pairwise_sq_dists(points, centroids)
    labels = np.argmin(dists, axis=1)
    inertia = float(dists[np.arange(n_points), labels].sum())

    n_iter = 0
    converged = max_iter == 0
    for n_iter in range(1, max_iter + 1):
        # Update step: mean of assigned points; empty clusters re-seeded from
        # the points currently worst represented.
        counts = np.bincount(labels, minlength=n_clusters).astype(np.float64)
        sums = np.zeros_like(centroids)
        np.add.at(sums, labels, points)
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty, None]

        empty = np.flatnonzero(~nonempty)
        if empty.size:
            worst = _reseed_targets(points, centroids, labels, empty.size)
            centroids[empty[: worst.size]] = points[worst]

        dists = _pairwise_sq_dists(points, centroids)
        new_labels = np.argmin(dists, axis=1)
        new_inertia = float(dists[np.arange(n_points), new_labels].sum())

        labels_stable = bool(np.array_equal(new_labels, labels))
        labels = new_labels
        improved = inertia - new_inertia
        inertia = new_inertia
        if _converged(labels_stable, improved, inertia, tol):
            converged = True
            break

    return KMeansResult(
        centroids=centroids,
        labels=labels.astype(np.int64),
        inertia=inertia,
        n_iter=n_iter,
        converged=converged,
    )
