"""Exception hierarchy for the PQCache reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied (bad shapes, ratios, ...)."""


class DimensionError(ReproError):
    """An array argument has an unexpected shape or dimensionality."""


class NotFittedError(ReproError):
    """An estimator (quantizer, index, cost model) was used before fitting."""


class CapacityError(ReproError):
    """A memory tier or cache was asked to hold more than its capacity."""


class SchedulingError(ReproError):
    """The overlap scheduler was given an inconsistent event sequence."""


class WorkloadError(ReproError):
    """A synthetic workload could not be generated with the given parameters."""
