"""Pool-pressure handling: reservation, preemption, swap, and spill billing.

:class:`PoolPressureMixin` holds every escalation the engine runs when a
bounded block pool cannot supply an allocation-bearing step — evict/spill
cold prefix-cache chains, release retained finished outputs, materialise
swapped requests' pins, preempt younger victims (swap or recompute), degrade
parked requests, resume swapped chains, and settle the simulated clock for
all of the resulting PCIe/NVMe traffic.  The behaviour is documented in
detail on :class:`~repro.serve.InferenceEngine`, which mixes this in; the
split keeps the engine module focused on the admit/prefill/decode loop.

The mixin expects its host to provide the engine's attributes: ``model``,
``scheduler``, ``latency``, ``metrics``, ``block_allocator``, ``swap_space``,
``prefix_cache``, ``proactive_swap_free_fraction``, ``_states``,
``_final_outputs``, ``_spill_settled``, and
``victim_log`` (``None``, or a list that successful claimant→victim
preemptions are appended to as ``(claimant_priority, claimant_seq,
victim_priority, victim_seq)`` tuples — the QoS fuzz suite's inversion
witness).
"""

from __future__ import annotations

from ..errors import CapacityError
from ..llm.kvcache import BlockTable, PagedKVCache
from .request import RequestStatus
from .state import RequestState

__all__ = ["PoolPressureMixin"]


class PoolPressureMixin:
    """Pool-pressure escalation ladder shared by the serving engine."""

    # ------------------------------------------------------ QoS ordering

    @staticmethod
    def _may_preempt(claimant: RequestState, victim: RequestState) -> bool:
        """Whether ``claimant`` is entitled to take ``victim``'s blocks.

        Entitlement is lexicographic (priority class descending, submission
        order ascending): a claimant may victimise any strictly
        lower-priority request regardless of age, and same-class requests
        submitted after it.  This preserves the age-rule liveness proof
        *within* each class — the oldest request of the top class outranks
        everyone, so it always completes, then the next, and so on down the
        classes; no preemption cycle is possible.
        """
        if victim.priority != claimant.priority:
            return victim.priority < claimant.priority
        return victim.seq > claimant.seq

    def _outranked_by_active(self, state: RequestState) -> bool:
        """Whether some active request is entitled to finish before ``state``.

        The park condition: when true, ``state``'s unmet demand is not yet
        infeasible — the outranking request will free blocks by finishing.
        Only the top-ranked claimant may raise :class:`CapacityError`.
        """
        return any(
            other.priority > state.priority
            or (other.priority == state.priority and other.seq < state.seq)
            for other in self._states.values()
        )

    def _record_preemption_class(self, victim: RequestState) -> None:
        """Bump the per-class/per-tenant preemption buckets for one victim."""
        self.metrics.class_bucket(victim.priority).preemptions += 1
        self.metrics.tenant_bucket(victim.tenant).preemptions += 1

    # --------------------------------------------------- pool pressure

    def _block_nbytes(self) -> int:
        """Modelled bytes of one pool block at the model's dtype width."""
        assert self.block_allocator is not None
        return self.block_allocator.block_nbytes(self.model.config.dtype_bytes)

    def _append_blocks_needed(self, state: RequestState, num_tokens: int) -> int:
        """Pool blocks an append of ``num_tokens`` will allocate.

        Mirrors :meth:`PagedKVCache._write_blocks` exactly: new tail blocks
        as the write range crosses block boundaries, plus one copy-on-write
        clone when the partially-filled tail block is shared with another
        holder (the prefix cache or a forked request).
        """
        assert state.paged is not None
        allocator = state.paged.allocator
        block = allocator.block_size
        cur = len(state.paged)
        table = state.paged.table.block_ids
        needed = -(-(cur + num_tokens) // block) - len(table)
        if cur % block != 0 and len(table) > cur // block:
            if allocator.refcount(table[cur // block]) > 1:
                needed += 1
        return max(needed, 0)

    def _ensure_blocks(self, state: RequestState, needed: int) -> bool:
        """Reserve ``needed`` free pool blocks for ``state``'s next write.

        Escalation order under pressure: (1) evict/spill cold prefix-cache
        chains, (2) release the pool references of retained *finished*
        outputs, oldest first (their assembled mirrors stay readable, and
        blocks the prefix cache shares become evictable on the next pass),
        (3) preempt victim requests submitted *after* ``state``
        (``victim_policy`` order among them, skipping requests that hold no
        pool blocks).  Victim eligibility is :meth:`_may_preempt`:
        strictly lower priority classes first, then same-class requests
        submitted after ``state`` — the per-class age restriction is the
        progress guarantee: the top-ranked active request can take blocks
        from everyone, so it always completes, then the next, and so on —
        two requests can never preempt each other back and forth without
        anybody finishing.

        Returns ``False`` when the demand cannot be met but an *outranking*
        request (higher class, or older in the same class) is still active
        (the caller parks ``state``; the outranking request will free blocks
        by finishing).  Raises :class:`~repro.errors.CapacityError` when
        ``state`` is the top-ranked active request and its demand exceeds
        the pool even with everything else preempted and spilled — genuine
        infeasibility.
        """
        allocator = self.block_allocator
        if (
            needed <= 0
            or allocator is None
            or allocator.capacity_blocks is None
        ):
            return True
        exclude: list[RequestState] = [state]
        while True:
            available = allocator.num_available
            assert available is not None
            if available >= needed:
                return True
            if self.prefix_cache is not None:
                freed = self.prefix_cache.evict(needed - available)
                self._settle_spill_traffic()
                if freed > 0:
                    continue
            if self._reclaim_retained_blocks():
                continue
            if self._materialize_swapped_pins(exclude=state):
                continue
            victim = None
            while True:
                candidate = self.scheduler.pick_victim(exclude=tuple(exclude))
                if candidate is None:
                    break
                exclude.append(candidate)
                if (
                    self._may_preempt(state, candidate)
                    and candidate.paged is not None
                    and candidate.paged.table.block_ids
                    and not candidate.paged.table.released
                ):
                    victim = candidate
                    break
            if victim is None:
                if self._degrade_swapped_to_recompute(exclude=state):
                    continue
                if self._outranked_by_active(state):
                    return False
                raise CapacityError(
                    f"KV pool cannot supply {needed} blocks for request "
                    f"{state.request.request_id!r}: "
                    f"{allocator.num_allocated}/{allocator.capacity_blocks} "
                    "blocks in use with nothing left to evict or preempt"
                )
            if not self._preempt_victim(victim):
                continue  # victim unswappable right now; try the next one
            if self.victim_log is not None:
                self.victim_log.append(
                    (state.priority, state.seq, victim.priority, victim.seq)
                )

    def _proactive_swap_out(self) -> int:
        """Swap out low-priority running requests ahead of waiting work.

        Runs at the start of a step, before admission: when the pool's free
        fraction has dropped below the engine's live
        ``proactive_swap_free_fraction`` (seeded from
        :attr:`SchedulerConfig.proactive_swap_free_fraction`; the opt-in
        SLO tuner may move it at runtime) and the waiting
        queue holds *strictly higher-priority* work than some running
        request, the lowest-priority (then youngest) block-holding running
        request is swap-preempted — idle-but-unfinished background work
        yields its blocks before the interactive burst has to stall on a
        reactive mid-allocation preemption.  Swap-only by design: recompute
        would burn the very compute the high-priority work wants.  Stops
        when the threshold is met, no eligible victim remains, or the swap
        tiers are full.  Returns the number of requests swapped out.
        """
        threshold = self.proactive_swap_free_fraction
        allocator = self.block_allocator
        if (
            threshold is None
            or allocator is None
            or allocator.capacity_blocks is None
            or self.swap_space is None
        ):
            return 0
        swapped = 0
        while True:
            available = allocator.num_available
            assert available is not None
            if available / allocator.capacity_blocks >= threshold:
                break
            waiting = self.scheduler.waiting_items()
            if not waiting:
                break
            top_waiting = max(item.priority for item in waiting)
            victims = [
                item
                for item in self.scheduler.running_items()
                if item.priority < top_waiting
                and item.paged is not None
                and item.paged.table.block_ids
                and not item.paged.table.released
            ]
            if not victims:
                break
            victim = min(victims, key=lambda it: (it.priority, -it.seq))
            if not self._preempt_swap(victim):
                break  # tiers full — reactive preemption will handle the rest
            swapped += 1
            self.metrics.proactive_swap_outs += 1
            self.metrics.class_bucket(victim.priority).proactive_swap_outs += 1
            self.metrics.tenant_bucket(victim.tenant).proactive_swap_outs += 1
        return swapped

    def _reclaim_retained_blocks(self) -> bool:
        """Release one retained finished output's pool references.

        Finished work is the cheapest thing to reclaim under pressure: the
        output's assembled per-layer mirrors stay fully readable (the same
        contract as :meth:`release`), only the shared pool references are
        dropped.  Oldest retained output first; one at a time so the caller
        re-checks availability (a released block shared with the prefix
        cache merely becomes evictable/spillable on the next pass).
        """
        for output in self._final_outputs.values():
            kvcache = output.prefill.kvcache if output.prefill is not None else None
            if isinstance(kvcache, PagedKVCache) and not kvcache.released:
                kvcache.release()
                return True
        return False

    def _materialize_swapped_pins(
        self, exclude: "RequestState | None" = None
    ) -> bool:
        """Copy one swapped request's pinned shared blocks into the tiers.

        A swap-preempted request normally keeps *shared* blocks GPU-resident
        by reference (no copy, sharing preserved on resume).  Under extreme
        pressure those pins can stand between an older request and the pool:
        dropping them — after copying the contents down the hierarchy — lets
        the other holder (typically the prefix cache) evict or spill the
        blocks on the next escalation pass.  One handle at a time; the
        copied bytes are billed like any swap-out.  ``exclude`` protects the
        request the reservation is *for* — materialising its own handle
        mid-resume would grow the very allocation it is reserving.
        """
        if self.swap_space is None:
            return False
        # Lowest priority class first (stable within a class — see
        # _degrade_swapped_to_recompute for the rationale).
        for state in sorted(self._states.values(), key=lambda s: s.priority):
            if state is exclude:
                continue
            handle = state.swap_handle
            if handle is None or not handle.pinned_blocks:
                continue
            stats = self.swap_space.stats
            wire_before = stats.swapped_out_wire_bytes
            demoted_wire_before = stats.demoted_wire_bytes
            moved = self.swap_space.materialize_pins(handle)
            block_bytes = self._block_nbytes()
            nbytes = float(moved * block_bytes)
            wire = float(stats.swapped_out_wire_bytes - wire_before)
            demoted_wire = float(
                stats.demoted_wire_bytes - demoted_wire_before
            )
            if handle.tier == "disk":
                demoted_wire += wire
            if wire > 0.0 or demoted_wire > 0.0:
                # Bill every transfer that actually landed — including
                # demotions a materialisation forced before running out of
                # tier room (moved can be 0 with demoted bytes > 0).  The
                # links carry the codec's wire bytes; the fresh encodes of
                # the materialised pins are a CPU stage ahead of the D2H.
                encode_flops = handle.codec.encode_flops(nbytes)
                seconds = self.latency.swap_out_seconds(
                    wire, demoted_wire, encode_flops
                )
                self.metrics.clock += seconds
                self.metrics.swap_seconds += seconds
                self.metrics.codec_encode_seconds += (
                    self.latency.codec_seconds(encode_flops)
                )
            if moved == 0:
                continue
            self.metrics.swap_out_blocks += moved
            self.metrics.swap_out_bytes += nbytes
            self.metrics.swap_out_wire_bytes += wire
            state.metrics.swap_out_bytes += nbytes
            state.metrics.swap_seconds += seconds
            return True
        return False

    def _preempt_victim(self, victim: RequestState) -> bool:
        """Preempt one running request according to the configured mode.

        Recompute requires the victim's policy to be rebuildable from its
        spec and its prompt to be re-runnable through the model; victims
        that fail either condition (instance-wrapped policies, precomputed
        prefills, selection-hook observers that must not fire twice) are
        swapped instead.  When the swap tiers cannot absorb the chain the
        victim falls back to recompute if it can; a victim that can be
        neither swapped nor recomputed right now is left running and
        ``False`` is returned (the caller tries another victim).
        """
        mode = self.scheduler.config.preemption_mode
        recomputable = self._recomputable(victim)
        if mode == "recompute" and recomputable:
            self._preempt_recompute(victim)
            return True
        if self._preempt_swap(victim):
            return True
        if recomputable:
            # Swap tiers full: dropping and replaying still relieves the pool.
            self._preempt_recompute(victim)
            return True
        return False

    def _preempt_swap(self, victim: RequestState) -> bool:
        """Swap a victim's block chain to the CPU tier and park the request.

        The chain contents are copied into the swap space (cold CPU entries
        cascading to disk), the pool references are dropped, and the request
        moves to the front of the waiting queue in the ``SWAPPED`` state;
        re-admission restores the chain bitwise via :meth:`_resume_swapped`.
        The simulated clock is charged the D2H transfer plus any demotion
        writes the swap-out forced.  Returns ``False`` — with the victim
        untouched on the GPU, and any partial demotions still charged —
        when the swap tiers cannot absorb the chain.
        """
        assert (
            self.block_allocator is not None
            and self.swap_space is not None
            and victim.paged is not None
        )
        stats = self.swap_space.stats
        demoted_wire_before = stats.demoted_wire_bytes
        try:
            handle = self.swap_space.swap_out(
                self.block_allocator, victim.paged.table.block_ids, tier="cpu"
            )
        except CapacityError:
            demoted_wire = float(
                stats.demoted_wire_bytes - demoted_wire_before
            )
            if demoted_wire > 0.0:
                # Demotions that did land before the failure really moved
                # bytes to disk; bill them even though the swap-out aborted.
                seconds = self.latency.swap_out_seconds(0.0, demoted_wire)
                self.metrics.clock += seconds
                self.metrics.swap_seconds += seconds
            return False
        victim.paged.table.release()
        victim.swap_handle = handle
        victim.resume_status = victim.status
        victim.status = RequestStatus.SWAPPED
        self.scheduler.preempt(victim)

        # Only the *stored* positions moved bytes — shared blocks stayed
        # GPU-resident under their pins and cost nothing to park.  Metrics
        # count logical (pre-codec) bytes so raw-vs-lossless runs stay
        # counter-identical; the clock is charged the codec's wire bytes
        # plus its encode stage.
        block_bytes = self._block_nbytes()
        nbytes = float(handle.stored_blocks * block_bytes)
        wire = float(handle.stored_wire_nbytes)
        demoted_wire = float(stats.demoted_wire_bytes - demoted_wire_before)
        encode_flops = handle.codec.encode_flops(nbytes)
        seconds = self.latency.swap_out_seconds(wire, demoted_wire,
                                                encode_flops)
        self.metrics.clock += seconds
        self.metrics.preemptions += 1
        self.metrics.preemptions_swap += 1
        self.metrics.swap_out_blocks += handle.stored_blocks
        self.metrics.swap_out_bytes += nbytes
        self.metrics.swap_out_wire_bytes += wire
        self.metrics.swap_seconds += seconds
        self.metrics.codec_encode_seconds += (
            self.latency.codec_seconds(encode_flops)
        )
        victim.metrics.preemptions += 1
        victim.metrics.swap_out_bytes += nbytes
        victim.metrics.swap_seconds += seconds
        self._record_preemption_class(victim)
        return True

    @staticmethod
    def _recomputable(state: RequestState) -> bool:
        """Whether a request can be rebuilt + replayed deterministically."""
        spec = state.request.policy_spec
        return (
            (spec is None or spec.supports_rebuild)
            and state.request.prefill is None
            and state.request.selection_hook is None
        )

    @staticmethod
    def _strip_for_recompute(state: RequestState) -> int:
        """Drop a request's KV and policy state ahead of a recompute restart.

        Returns the number of already-processed tokens being thrown away.
        The generated tokens are kept for the deterministic replay.
        """
        thrown_away = len(state.paged) if state.paged is not None else 0
        if state.policy is not None:
            state.policy.release_prefix()
            state.policy = None
        if state.paged is not None:
            state.paged.release()
            state.paged = None
        state.prefill = None
        state.prefill_state = None
        state.cached_prefix = 0
        state.prefix_acc = None
        state.acc_capture = 0
        state.construction_tail = 0.0
        state.chunk_lens = []
        state.chunk_seconds = 0.0
        state.num_decoded = 0
        state.step_logits = []
        state.selections = []
        state.status = RequestStatus.PREEMPTED
        return thrown_away

    def _preempt_recompute(self, victim: RequestState) -> None:
        """Drop a victim's KV and policy state; it will recompute on resume.

        The generated tokens are kept: after re-prefilling (its own cached
        chain usually makes that a prefix hit) the request replays them
        through the ordinary decode path, reproducing logits and selections
        bit for bit before new tokens are generated.
        """
        assert victim.paged is not None
        thrown_away = self._strip_for_recompute(victim)
        self.scheduler.preempt(victim)
        self.metrics.preemptions += 1
        self.metrics.preemptions_recompute += 1
        victim.metrics.preemptions += 1
        victim.metrics.recomputed_tokens += thrown_away
        self._record_preemption_class(victim)

    def _degrade_swapped_to_recompute(
        self, exclude: "RequestState | None" = None
    ) -> bool:
        """Demote one parked ``SWAPPED`` request to recompute-on-resume.

        The last escalation rung before giving up: when the swap tiers have
        no room to materialise pins, a parked request's pinned shared blocks
        can stand between an older request and the pool.  Discarding the
        handle releases the pins (the prefix cache regains the power to
        spill those blocks) and frees the tier room its stored copies held;
        the request — already in the waiting queue — restarts through the
        deterministic recompute/replay path instead of a swap-in.
        """
        if self.swap_space is None:
            return False
        # Lowest priority class first (stable within a class, so untagged
        # traffic keeps the pre-QoS submission-order scan): a parked
        # high-priority request should not lose its bitwise restore while a
        # low-priority handle could be sacrificed instead.
        states = sorted(self._states.values(), key=lambda s: s.priority)
        for state in states:
            if (
                state is exclude
                or state.swap_handle is None
                or not self._recomputable(state)
            ):
                continue
            self.swap_space.discard(state.swap_handle)
            state.swap_handle = None
            thrown_away = self._strip_for_recompute(state)
            # A degradation is a preemption event of its own (the request is
            # preempted a second time, in the other mode), so the per-mode
            # counters keep summing to the total.
            self.metrics.preemptions += 1
            self.metrics.preemptions_recompute += 1
            state.metrics.preemptions += 1
            state.metrics.recomputed_tokens += thrown_away
            self._record_preemption_class(state)
            return True
        return False

    def _resume_swapped(self, state: RequestState) -> bool:
        """Swap a re-admitted request's chain back into the pool.

        When an older request owns the pool, the request stays swapped and
        parks at the *back* of the waiting queue (the older requests get a
        chance to finish and free blocks first).  A chain whose demand
        genuinely exceeds the pool — no older request left to defer to —
        surfaces as a :class:`~repro.errors.CapacityError` from the
        reservation.
        """
        assert (
            state.swap_handle is not None
            and self.swap_space is not None
            and self.block_allocator is not None
            and state.paged is not None
        )
        handle = state.swap_handle
        # Pinned positions need no allocation — their blocks never left.
        try:
            reserved = self._ensure_blocks(state, handle.stored_blocks)
        except CapacityError:
            # Even as the oldest request the chain cannot come back — often
            # because its *own* pinned shared blocks (a prompt chain the
            # prefix cache fully indexed) are what fills the pool.  Degrade
            # to recompute: dropping the pins lets the cache spill those
            # blocks, and the deterministic replay restarts the request.  A
            # genuinely-too-big request still fails: its recompute prefill
            # raises the same CapacityError at the first chunk.
            if not self._recomputable(state):
                raise
            self.swap_space.discard(handle)
            state.swap_handle = None
            thrown_away = self._strip_for_recompute(state)
            self.metrics.preemptions += 1
            self.metrics.preemptions_recompute += 1
            state.metrics.preemptions += 1
            state.metrics.recomputed_tokens += thrown_away
            self._record_preemption_class(state)
            self.scheduler.preempt(state)
            return False
        if not reserved:
            # An older request owns the pool: stay swapped, park at the back
            # of the queue so others can finish and free blocks first.
            self.scheduler.preempt(state, requeue_front=False)
            return False
        was_on_disk = handle.tier == "disk"
        stored = handle.stored_blocks
        wire = float(handle.stored_wire_nbytes)
        codec = handle.codec
        new_ids = self.swap_space.swap_in(handle, self.block_allocator)
        state.paged.table = BlockTable(self.block_allocator, new_ids)
        state.swap_handle = None
        state.status = state.resume_status

        block_bytes = self._block_nbytes()
        nbytes = float(stored * block_bytes)
        disk_wire = wire if was_on_disk else 0.0
        decode_flops = codec.decode_flops(nbytes)
        seconds = self.latency.swap_in_seconds(wire, disk_wire, decode_flops)
        self.metrics.clock += seconds
        self.metrics.swap_in_blocks += stored
        self.metrics.swap_in_bytes += nbytes
        self.metrics.swap_in_wire_bytes += wire
        self.metrics.swap_seconds += seconds
        self.metrics.codec_decode_seconds += (
            self.latency.codec_seconds(decode_flops)
        )
        state.metrics.swap_in_bytes += nbytes
        state.metrics.swap_seconds += seconds
        return True

    def _settle_spill_traffic(self) -> None:
        """Charge prefix-cache spill/restore transfers to the clock.

        Spills happen inside the allocator's eviction hook and restores
        inside prefix lookups, so the engine settles their PCIe/NVMe time
        from the cache's stat deltas: spilled KV crosses D2H then the disk
        write; restored KV is read from disk and crosses H2D; artifact
        payloads (accumulated scores, PQ snapshots) ride the disk leg only.
        """
        if self.prefix_cache is None or self.block_allocator is None:
            return
        stats = self.prefix_cache.stats
        seen = self._spill_settled
        out_blocks = stats.spilled_blocks - seen["out_blocks"]
        in_blocks = stats.restored_blocks - seen["in_blocks"]
        out_payload = stats.spilled_payload_bytes - seen["out_payload"]
        in_payload = stats.restored_payload_bytes - seen["in_payload"]
        out_wire = stats.spilled_wire_bytes - seen["out_wire"]
        in_wire = stats.restored_wire_bytes - seen["in_wire"]
        if not (out_blocks or in_blocks or out_payload or in_payload):
            return
        seen["out_blocks"] = stats.spilled_blocks
        seen["in_blocks"] = stats.restored_blocks
        seen["out_payload"] = stats.spilled_payload_bytes
        seen["in_payload"] = stats.restored_payload_bytes
        seen["out_wire"] = stats.spilled_wire_bytes
        seen["in_wire"] = stats.restored_wire_bytes
        block_bytes = self._block_nbytes()
        codec = self.prefix_cache.spill_codec
        if codec is None and self.swap_space is not None:
            codec = self.swap_space.codec
        seconds = 0.0
        if out_blocks or out_payload:
            kv_bytes = float(out_blocks * block_bytes)
            kv_wire = float(out_wire)
            encode_flops = (
                codec.encode_flops(kv_bytes) if codec is not None else 0.0
            )
            seconds += self.latency.swap_out_seconds(
                kv_wire, kv_wire + float(out_payload), encode_flops
            )
            self.metrics.spill_out_bytes += kv_bytes + float(out_payload)
            self.metrics.spill_out_wire_bytes += kv_wire + float(out_payload)
            self.metrics.codec_encode_seconds += (
                self.latency.codec_seconds(encode_flops)
            )
        if in_blocks or in_payload:
            kv_bytes = float(in_blocks * block_bytes)
            kv_wire = float(in_wire)
            decode_flops = (
                codec.decode_flops(kv_bytes) if codec is not None else 0.0
            )
            seconds += self.latency.swap_in_seconds(
                kv_wire, kv_wire + float(in_payload), decode_flops
            )
            self.metrics.spill_in_bytes += kv_bytes + float(in_payload)
            self.metrics.spill_in_wire_bytes += kv_wire + float(in_payload)
            self.metrics.codec_decode_seconds += (
                self.latency.codec_seconds(decode_flops)
            )
        self.metrics.clock += seconds
        self.metrics.swap_seconds += seconds
