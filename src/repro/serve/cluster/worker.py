"""One serving replica of the cluster: an engine wired into the directory.

A :class:`Worker` *is* an :class:`~repro.serve.InferenceEngine` — same
pool/scheduler/clock/prefix-cache core, same byte-identical admit → prefill
→ decode loop — plus a worker id, a fingerprint-directory publisher hooked
onto its prefix cache, and the load signal the router balances on.  Keeping
the worker a plain engine subclass is what makes the cluster's byte-identity
invariant structural: placement decides *which* engine runs a request, and
every engine runs it identically.
"""

from __future__ import annotations

import math

from ...llm.model import TransformerLM
from ..engine import InferenceEngine
from .directory import FingerprintDirectory

__all__ = ["Worker"]


class Worker(InferenceEngine):
    """A cluster replica: one engine publishing its prefix residency.

    Args:
        worker_id: stable index of this replica in the fleet.
        model: shared transformer substrate (weights are read-only, so all
            workers can share one instance).
        directory: fleet fingerprint directory to publish prefix-cache
            residency events into; ``None`` runs the worker unpublished
            (the router then sees it as always-cold).
        **engine_kwargs: forwarded to :class:`~repro.serve.InferenceEngine`
            (scheduler config, pool bounds, prefix caching, swap tiers...).
    """

    def __init__(
        self,
        worker_id: int,
        model: TransformerLM,
        directory: "FingerprintDirectory | None" = None,
        **engine_kwargs,
    ) -> None:
        super().__init__(model, **engine_kwargs)
        self.worker_id = worker_id
        self.directory = directory
        if directory is not None and self.prefix_cache is not None:
            self.prefix_cache.observer = directory.publisher(worker_id)

    @property
    def load(self) -> int:
        """Queued plus active requests — the router's balancing signal."""
        return self.num_waiting + self.num_running

    def load_at_or_above(self, priority: int) -> int:
        """Queued plus active requests of priority class >= ``priority``.

        The router's per-class load signal: work *below* the incoming
        request's class does not delay it (the QoS scheduler admits over it
        and preempts it under pressure), so only same-or-higher-class
        occupancy counts when balancing a tagged request.
        """
        return sum(
            1
            for item in (
                self.scheduler.waiting_items() + self.scheduler.running_items()
            )
            if item.priority >= priority
        )

    def _scheduled_deadlines(self) -> "list[float]":
        """Absolute deadlines of every scheduled (waiting or running) request."""
        return [
            item.deadline_time
            for item in (
                self.scheduler.waiting_items() + self.scheduler.running_items()
            )
            if item.deadline_time is not None
        ]

    def deadline_backlog(self, before_slack: "float | None" = None) -> int:
        """Scheduled deadline-tagged requests — the router's EDF signal.

        With ``before_slack`` (an incoming request's *relative* deadline),
        count only those whose remaining slack is strictly smaller: the
        requests EDF would order ahead of the incoming one on this worker.
        ``None`` counts every deadline-tagged scheduled request.
        """
        clock = self.metrics.clock
        return sum(
            1
            for deadline_time in self._scheduled_deadlines()
            if before_slack is None or deadline_time - clock < before_slack
        )

    @property
    def nearest_deadline_slack(self) -> float:
        """Seconds until this worker's most urgent scheduled deadline.

        ``inf`` when no scheduled request carries a deadline (negative when
        a scheduled deadline has already passed) — the router's slack
        tie-break prefers the worker that can best absorb urgent work.
        """
        deadlines = self._scheduled_deadlines()
        if not deadlines:
            return math.inf
        return min(deadlines) - self.metrics.clock

    def describe(self) -> dict:
        """Per-worker reporting row (hit rates, load, clock)."""
        return {
            "worker_id": self.worker_id,
            "load": self.load,
            "clock": self.metrics.clock,
            "requests_finished": self.metrics.requests_finished,
            "prefix_cache_hit_rate": self.metrics.prefix_cache_hit_rate,
            "prefix_token_hit_rate": self.metrics.prefix_token_hit_rate,
        }
