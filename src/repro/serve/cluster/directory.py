"""Shared prefix-fingerprint directory of a worker fleet.

The directory is the cluster's only cross-worker view of cached prefixes:
every worker's :class:`~repro.serve.PrefixCache` publishes its residency
transitions (insert / spill / restore / evict) through a
:class:`DirectoryPublisher` observer, keyed by the same chain hashes the
cache indexes on (``H(key_{i-1}, tokens_i)``, see
:func:`~repro.serve.prefix_cache.chain_block_keys`).  The router can then
score candidate workers by longest-matching-prefix coverage without ever
touching worker internals — it hashes the incoming prompt with the public
helper and reads coverage off the directory.

Entries carry a residency status per ``(key, worker)``:

* ``"resident"`` — the block is in the worker's GPU pool; routing there
  attaches it for free.
* ``"spilled"`` — the block is parked on the worker's disk tier; routing
  there triggers a local NVMe restore, and ``migrate_on_miss`` routing may
  instead ship the chain to a less-loaded worker.

The directory is a plain in-process index: workers publish synchronously,
and correctness never depends on it — a stale or empty directory only
degrades routing quality (requests land on colder workers), never bytes,
because every placement runs the same deterministic engine code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["FingerprintDirectory", "DirectoryPublisher", "PrefixCoverage"]

RESIDENT = "resident"
SPILLED = "spilled"


@dataclass
class PrefixCoverage:
    """One worker's leading-prefix coverage of a prompt's chain keys.

    Attributes:
        resident_blocks: consecutive leading blocks resident in the
            worker's GPU pool — the reuse a request attaches at zero cost.
        known_blocks: consecutive leading blocks the worker holds in *any*
            tier (resident or spilled); the excess over ``resident_blocks``
            would come back through a disk restore or a migration.
    """

    resident_blocks: int = 0
    known_blocks: int = 0


class DirectoryPublisher:
    """Observer adapter binding one worker's cache events to the directory.

    Installed as ``PrefixCache.observer``; each hook forwards the node's
    chain key with this worker's id and the resulting residency status.
    """

    def __init__(self, directory: "FingerprintDirectory", worker_id: int) -> None:
        self.directory = directory
        self.worker_id = worker_id

    def on_insert(self, key: bytes) -> None:
        self.directory.record(key, self.worker_id, RESIDENT)

    def on_restore(self, key: bytes) -> None:
        self.directory.record(key, self.worker_id, RESIDENT)

    def on_spill(self, key: bytes) -> None:
        self.directory.record(key, self.worker_id, SPILLED)

    def on_evict(self, key: bytes) -> None:
        self.directory.drop(key, self.worker_id)


class FingerprintDirectory:
    """Cluster-wide index: chain key → per-worker residency status."""

    def __init__(self) -> None:
        self._entries: dict[bytes, dict[int, str]] = {}
        #: lifetime event counters, for reporting
        self.events = {"insert": 0, "spill": 0, "restore": 0, "evict": 0}

    def __len__(self) -> int:
        """Number of distinct chain keys known to the fleet."""
        return len(self._entries)

    def publisher(self, worker_id: int) -> DirectoryPublisher:
        """Observer for one worker's cache (install as its ``observer``)."""
        return DirectoryPublisher(self, worker_id)

    # ------------------------------------------------------------- updates

    def record(self, key: bytes, worker_id: int, status: str) -> None:
        """Publish a block's residency on one worker."""
        entry = self._entries.setdefault(key, {})
        previous = entry.get(worker_id)
        entry[worker_id] = status
        if previous is None:
            self.events["insert"] += 1
        elif status == SPILLED and previous == RESIDENT:
            self.events["spill"] += 1
        elif status == RESIDENT and previous == SPILLED:
            self.events["restore"] += 1

    def drop(self, key: bytes, worker_id: int) -> None:
        """Remove one worker's claim on a block (eviction)."""
        entry = self._entries.get(key)
        if entry is None or worker_id not in entry:
            return
        del entry[worker_id]
        self.events["evict"] += 1
        if not entry:
            del self._entries[key]

    # ------------------------------------------------------------- queries

    def status(self, key: bytes, worker_id: int) -> "str | None":
        """Residency of one block on one worker (``None`` = not held)."""
        return self._entries.get(key, {}).get(worker_id)

    def holders(self, key: bytes) -> dict[int, str]:
        """All workers holding a block, with their residency status."""
        return dict(self._entries.get(key, {}))

    def coverage(self, keys: Sequence[bytes]) -> dict[int, PrefixCoverage]:
        """Per-worker leading-prefix coverage of an ordered key chain.

        Walks the prompt's chain keys in order and, for every worker that
        holds at least the first block, counts how many *consecutive
        leading* blocks it holds resident and in any tier.  Consecutive
        matters: a worker holding blocks {0, 2} of a prompt covers one
        block, not two — block 1's KV is missing, so prefill must resume
        there anyway.  A spilled block ends the resident streak but not the
        known streak (the chain is still whole on that worker's tiers).
        """
        covered: dict[int, PrefixCoverage] = {}
        resident_alive: set[int] = set()
        known_alive: set[int] = set()
        for index, key in enumerate(keys):
            holders = self._entries.get(key)
            if not holders:
                break
            if index == 0:
                for worker_id in holders:
                    covered[worker_id] = PrefixCoverage()
                    known_alive.add(worker_id)
                    if holders[worker_id] == RESIDENT:
                        resident_alive.add(worker_id)
            else:
                known_alive &= set(holders)
                resident_alive &= {
                    w for w, status in holders.items() if status == RESIDENT
                }
            for worker_id in known_alive:
                covered[worker_id].known_blocks = index + 1
            for worker_id in resident_alive:
                covered[worker_id].resident_blocks = index + 1
            if not known_alive:
                break
        return covered

    def describe(self) -> dict:
        return {"keys": len(self), **self.events}
