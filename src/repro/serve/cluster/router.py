"""Placement policies: which worker serves an incoming request.

The router is pure decision logic: given a prompt, the fleet's load
signals, and the shared :class:`~repro.serve.cluster.FingerprintDirectory`,
it returns a :class:`Placement` — it never touches a worker's internals and
never affects *what* a request computes, only *where* (and therefore on
whose simulated clock) it runs.

Policies:

* ``round_robin`` — cycle through workers in submission order; the
  baseline that scatters conversation turns and turns prefix-cache wins
  back into cold prefills.
* ``least_loaded`` — the worker with the fewest queued + active requests
  (ties to the lowest id).
* ``cache_aware`` — the worker whose cache holds the longest *resident*
  leading prefix of the prompt (by directory coverage); ties break toward
  the least-loaded worker, then the lowest id.  On a full resident miss it
  falls back to least-loaded; with ``migrate_on_miss``, a spilled chain on
  some worker's disk tier is shipped to the fallback target first (unless
  the owner *is* the target — restoring locally is strictly cheaper).
* ``edf_aware`` — deadline-pressure balancing for EDF fleets: the worker
  holding the fewest deadline-tagged requests the incoming one would queue
  behind (its *nearest-deadline backlog*), then the worker with the most
  slack to its own most urgent deadline, then per-class load, then the
  lowest id.  Workers without the deadline signals (plain engines) compare
  as zero-backlog / infinite-slack, degrading to least-loaded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ...errors import ConfigurationError
from ..prefix_cache import chain_block_keys
from .directory import FingerprintDirectory

__all__ = ["Router", "Placement", "ROUTING_POLICIES"]

ROUTING_POLICIES = ("round_robin", "least_loaded", "cache_aware", "edf_aware")


@dataclass
class Placement:
    """One routing decision, with the evidence it was made on.

    Attributes:
        worker_id: the chosen worker.
        policy: the policy that produced the decision.
        matched_tokens: directory-resident leading-prefix tokens on the
            chosen worker at decision time (0 for load-only placements).
        migrate_from: owner of a spilled chain to ship to ``worker_id``
            before submission, or ``None``.
        migrate_tokens: leading-prefix tokens the migration would cover.
    """

    worker_id: int
    policy: str
    matched_tokens: int = 0
    migrate_from: "int | None" = None
    migrate_tokens: int = 0


class Router:
    """Pluggable placement over a worker fleet.

    Args:
        policy: one of :data:`ROUTING_POLICIES`.
        migrate_on_miss: under ``cache_aware``, ship a spilled matching
            chain from its owning worker to the fallback target instead of
            ignoring it (the frontend executes and bills the transfer).
        hash_fn: chain hash used to fingerprint prompts; must equal the
            workers' :class:`~repro.serve.PrefixCache` hash so router keys
            and published keys agree.  ``None`` uses the default hash.
    """

    def __init__(
        self,
        policy: str = "cache_aware",
        migrate_on_miss: bool = False,
        hash_fn=None,
    ) -> None:
        if policy not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {policy!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        self.policy = policy
        self.migrate_on_miss = migrate_on_miss
        self.hash_fn = hash_fn
        self._next = 0

    # ------------------------------------------------------------- placing

    def place(
        self,
        prompt_ids: Sequence[int],
        workers: Sequence,
        directory: "FingerprintDirectory | None" = None,
        block_size: "int | None" = None,
        priority: "int | None" = None,
        deadline: "float | None" = None,
    ) -> Placement:
        """Choose a worker for one request.

        Args:
            prompt_ids: the request's prompt tokens.
            workers: fleet members exposing ``worker_id`` and ``load``.
            directory: the fleet fingerprint directory (``cache_aware``
                treats ``None`` as an empty directory).
            block_size: the workers' KV block size, needed to fingerprint
                the prompt; ``None`` disables coverage scoring (cache-aware
                degrades to least-loaded).
            priority: the request's QoS priority class.  When set and the
                workers expose ``load_at_or_above`` (the cluster
                :class:`Worker` does), load comparisons count only
                same-or-higher-class occupancy — lower-class work does not
                delay a tagged request, so it should not repel it either.
                ``None`` (or plain engines) keeps the total-load signal.
            deadline: the request's *relative* deadline in seconds, if any.
                ``edf_aware`` uses it to count only the scheduled requests
                the incoming one would actually queue behind under EDF
                (those with less remaining slack); ``None`` counts every
                deadline-tagged request.
        """
        if not workers:
            raise ConfigurationError("cannot place a request on zero workers")
        if self.policy == "round_robin":
            worker = workers[self._next % len(workers)]
            self._next += 1
            return Placement(worker.worker_id, self.policy)
        if self.policy == "least_loaded":
            return Placement(
                self._least_loaded(workers, priority).worker_id, self.policy
            )
        if self.policy == "edf_aware":
            return Placement(
                self._least_deadline_pressed(
                    workers, priority, deadline
                ).worker_id,
                self.policy,
            )
        return self._place_cache_aware(
            prompt_ids, workers, directory, block_size, priority
        )

    @staticmethod
    def _load(worker, priority: "int | None") -> int:
        """The balancing signal: per-class load when available and asked."""
        if priority is not None and hasattr(worker, "load_at_or_above"):
            return worker.load_at_or_above(priority)
        return worker.load

    @classmethod
    def _least_loaded(cls, workers: Sequence, priority: "int | None" = None):
        return min(workers, key=lambda w: (cls._load(w, priority), w.worker_id))

    @classmethod
    def _least_deadline_pressed(
        cls,
        workers: Sequence,
        priority: "int | None",
        deadline: "float | None",
    ):
        """EDF-pressure balancing: fewest deadline-tagged requests ahead of
        the incoming one, then most slack to the worker's nearest deadline,
        then per-class load, then the lowest id."""

        def rank(worker):
            if hasattr(worker, "deadline_backlog"):
                backlog = worker.deadline_backlog(before_slack=deadline)
            else:
                backlog = 0
            slack = getattr(worker, "nearest_deadline_slack", math.inf)
            return (backlog, -slack, cls._load(worker, priority), worker.worker_id)

        return min(workers, key=rank)

    def _place_cache_aware(
        self,
        prompt_ids: Sequence[int],
        workers: Sequence,
        directory: "FingerprintDirectory | None",
        block_size: "int | None",
        priority: "int | None" = None,
    ) -> Placement:
        covered = {}
        if directory is not None and block_size is not None:
            keys = chain_block_keys(prompt_ids, block_size, self.hash_fn)
            if keys:
                covered = directory.coverage(keys)
        by_id = {worker.worker_id: worker for worker in workers}
        # Rank candidates that hold a resident prefix: longest match first,
        # then lightest load, then lowest id (the deterministic tie-break).
        best = None
        best_rank = None
        for worker_id, coverage in covered.items():
            worker = by_id.get(worker_id)
            if worker is None or coverage.resident_blocks == 0:
                continue
            rank = (
                -coverage.resident_blocks,
                self._load(worker, priority),
                worker.worker_id,
            )
            if best_rank is None or rank < best_rank:
                best, best_rank = worker, rank
        if best is not None:
            matched = covered[best.worker_id].resident_blocks * block_size
            return Placement(best.worker_id, self.policy, matched_tokens=matched)

        # Resident miss: fall back to least-loaded.  A *spilled* chain on
        # some worker's disk tier can still be put to work: with
        # migrate_on_miss the frontend ships it to the fallback target —
        # unless that target already owns it (its own match would restore
        # the chain locally, skipping the PCIe round trip).
        target = self._least_loaded(workers, priority)
        placement = Placement(target.worker_id, self.policy)
        if self.migrate_on_miss and covered:
            owner_id, coverage = min(
                covered.items(),
                key=lambda item: (
                    -item[1].known_blocks,
                    by_id[item[0]].load if item[0] in by_id else 0,
                    item[0],
                ),
            )
            if (
                coverage.known_blocks > 0
                and owner_id in by_id
                and owner_id != target.worker_id
            ):
                placement.migrate_from = owner_id
                placement.migrate_tokens = coverage.known_blocks * block_size
        return placement
