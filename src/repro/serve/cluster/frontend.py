"""Cluster frontend: N workers, one router, one fingerprint directory.

:class:`ClusterFrontend` is the fleet-level serving surface: it owns ``N``
:class:`~repro.serve.cluster.Worker` replicas (each a full
:class:`~repro.serve.InferenceEngine` with its own block pool, swap tiers,
prefix cache, and simulated clock), routes every submitted request through a
:class:`~repro.serve.cluster.Router`, and aggregates per-worker
:class:`~repro.serve.EngineMetrics` into fleet metrics
(counters sum, clocks take the max — parallel replicas overlap in wall
time).

The load-bearing invariant is **byte-identity**: placement changes only the
clock, never the bytes.  Every worker runs the same deterministic engine
code over the same shared substrate weights, so a request's tokens and
logits are identical whichever worker serves it — and identical to a
single-worker (or single-engine) run under the same per-request policy
config.  Routing quality therefore only moves latency: cache-aware
placement lands conversation turns on the worker already holding their
prefix, round-robin scatters them into cold prefills.

Migration (``migrate_on_miss``): when cache-aware routing misses every
resident chain but some worker holds a *spilled* match on its disk tier,
the frontend ships that chain to the routed worker — exported off the
owner's NVMe (:meth:`~repro.serve.PrefixCache.export_chain`), imported
bitwise into the target's pool
(:meth:`~repro.serve.PrefixCache.import_chain`), and billed to the target's
clock as an NVMe-read → PCIe-H2D timeline
(:meth:`~repro.memory.LatencyModel.migration_timeline`), *after* the
request's arrival is stamped so its TTFT honestly includes the transfer it
waited on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ...errors import ConfigurationError
from ...llm.kvcodec import KVBlockCodec, get_codec
from ...llm.model import TransformerLM
from ..metrics import EngineMetrics
from ..request import Request, RequestOutput
from .directory import FingerprintDirectory
from .router import Placement, Router
from .worker import Worker

__all__ = ["ClusterFrontend", "ClusterMetrics"]


@dataclass
class ClusterMetrics:
    """Fleet-level migration counters (per-worker engines bill their own
    swap/spill traffic; these cover only cross-worker chain transfers).

    ``migrated_kv_bytes``/``migrated_disk_bytes`` are *logical* (modelled
    raw) sizes; the ``*_wire_bytes`` twins are what actually crossed the
    links after the migration codec — their quotient is the achieved
    compression ratio on the migration path.

    ``routed_by_class`` counts routing decisions per QoS priority class
    (``{priority: requests}``); the per-class serving outcomes live in the
    merged workers' ``EngineMetrics.per_class`` buckets (see
    :meth:`ClusterFrontend.fleet_metrics`).
    """

    migrations: int = 0
    migrated_blocks: int = 0
    migrated_kv_bytes: float = 0.0
    migrated_disk_bytes: float = 0.0
    migrated_kv_wire_bytes: float = 0.0
    migrated_disk_wire_bytes: float = 0.0
    migration_seconds: float = 0.0
    routed_by_class: dict = field(default_factory=dict)

    @property
    def migration_compression_ratio(self) -> float:
        """Achieved logical/wire ratio on migrated KV (1.0 for raw)."""
        if self.migrated_kv_wire_bytes <= 0.0:
            return 1.0
        return self.migrated_kv_bytes / self.migrated_kv_wire_bytes

    def as_dict(self) -> dict:
        return {
            "migrations": self.migrations,
            "migrated_blocks": self.migrated_blocks,
            "migrated_kv_bytes": self.migrated_kv_bytes,
            "migrated_disk_bytes": self.migrated_disk_bytes,
            "migrated_kv_wire_bytes": self.migrated_kv_wire_bytes,
            "migrated_disk_wire_bytes": self.migrated_disk_wire_bytes,
            "migration_compression_ratio": self.migration_compression_ratio,
            "migration_seconds": self.migration_seconds,
            "routed_by_class": dict(sorted(self.routed_by_class.items())),
        }


class ClusterFrontend:
    """Serving front-end over a fleet of engine replicas.

    Args:
        model: shared transformer substrate; weights are read-only, so one
            instance backs every worker.
        num_workers: replica count.
        placement: routing policy (see
            :data:`~repro.serve.cluster.ROUTING_POLICIES`).
        migrate_on_miss: ship spilled matching chains to the routed worker
            under cache-aware placement (billed, see module docstring).
        migration_codec: KV codec (name or
            :class:`~repro.llm.kvcodec.KVBlockCodec` instance) applied to
            GPU-resident blocks of a migrated chain; spilled blocks travel
            in their parked encoded form either way.  Defaults to the
            lossless ``"byteplane"``; migration is an opt-in lossy surface,
            so ``"int8"``/``"int4"``/``"int4-outlier"`` are accepted and
            restore within their declared per-element error bound on the
            importing worker.
        **worker_kwargs: forwarded to every
            :class:`~repro.serve.InferenceEngine` (scheduler config, pool
            bounds, swap tiers...).  ``enable_prefix_caching`` defaults to
            ``True`` here — cache-aware routing is the cluster's point —
            but can be passed explicitly to turn it off.
    """

    def __init__(
        self,
        model: TransformerLM,
        num_workers: int = 2,
        placement: str = "cache_aware",
        migrate_on_miss: bool = False,
        migration_codec: "str | KVBlockCodec | None" = "byteplane",
        **worker_kwargs,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        worker_kwargs.setdefault("enable_prefix_caching", True)
        self.model = model
        self.migration_codec = get_codec(
            migration_codec, model.config.dtype_bytes
        )
        self.directory = FingerprintDirectory()
        self.router = Router(placement, migrate_on_miss=migrate_on_miss)
        self.workers: list[Worker] = [
            Worker(index, model, directory=self.directory, **worker_kwargs)
            for index in range(num_workers)
        ]
        self.metrics = ClusterMetrics()
        #: request id → worker id, for output/abort routing
        self._assignment: dict[str, int] = {}
        #: routing decisions in submission order (introspection / tests)
        self.placements: list[Placement] = []

    # -------------------------------------------------------------- intake

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def block_size(self) -> "int | None":
        allocator = self.workers[0].block_allocator
        return allocator.block_size if allocator is not None else None

    def submit(self, request: Request) -> str:
        """Route and enqueue one request; returns its id."""
        if request.request_id in self._assignment:
            raise ConfigurationError(
                f"duplicate request id {request.request_id!r}"
            )
        placement = self.router.place(
            request.prompt_ids,
            self.workers,
            directory=self.directory,
            block_size=self.block_size,
            priority=request.qos.priority,
            deadline=request.qos.deadline,
        )
        self.placements.append(placement)
        self.metrics.routed_by_class[request.qos.priority] = (
            self.metrics.routed_by_class.get(request.qos.priority, 0) + 1
        )
        worker = self.workers[placement.worker_id]
        worker.submit(request)
        self._assignment[request.request_id] = placement.worker_id
        if placement.migrate_from is not None:
            # After submit: the request's arrival is stamped on the target's
            # clock first, so the migration it waits on lands in its TTFT.
            self._migrate(placement, request.prompt_ids)
        return request.request_id

    #: alias matching the engine vocabulary
    add_request = submit

    def worker_of(self, request_id: str) -> Worker:
        """The worker a request was placed on."""
        try:
            return self.workers[self._assignment[request_id]]
        except KeyError:
            raise ConfigurationError(
                f"request {request_id!r} was never submitted to this cluster"
            ) from None

    # ----------------------------------------------------------- migration

    def _migrate(self, placement: Placement, prompt_ids) -> None:
        """Ship a spilled chain from its owner to the routed worker.

        Export reads the chain in wire form (spilled blocks ship their
        parked encoded payloads straight off the owner's NVMe — no decode
        on the source, and the parked copy stays valid; resident blocks are
        encoded through the migration codec); import decodes each block
        exactly once into the target's pool, truncating gracefully under
        capacity pressure.  The transfer is billed to the *target* clock as
        an encode ∥ NVMe-read → PCIe-H2D → decode timeline carrying wire
        bytes; the logical counters keep the pre-codec sizes.
        """
        source = self.workers[placement.migrate_from]
        target = self.workers[placement.worker_id]
        if source.prefix_cache is None or target.prefix_cache is None:
            return
        exported = source.prefix_cache.export_chain(
            prompt_ids, codec=self.migration_codec
        )
        if exported is None or not exported.nodes:
            return  # the directory was stale; nothing to ship
        target.prefix_cache.import_chain(exported)
        block_bytes = target._block_nbytes()
        kv_bytes = float(exported.num_blocks * block_bytes)
        disk_bytes = (
            float(exported.disk_blocks * block_bytes)
            + float(exported.payload_nbytes())
        )
        kv_wire = float(exported.kv_wire_nbytes)
        disk_wire = (
            float(exported.disk_wire_nbytes)
            + float(exported.payload_nbytes())
        )
        encode_flops = self.migration_codec.encode_flops(
            exported.resident_logical_nbytes
        )
        seconds = target.latency.migration_seconds(
            kv_wire, disk_wire, encode_flops, exported.decode_flops()
        )
        target.metrics.clock += seconds
        target.metrics.swap_seconds += seconds
        self.metrics.migrations += 1
        self.metrics.migrated_blocks += exported.num_blocks
        self.metrics.migrated_kv_bytes += kv_bytes
        self.metrics.migrated_disk_bytes += disk_bytes
        self.metrics.migrated_kv_wire_bytes += kv_wire
        self.metrics.migrated_disk_wire_bytes += disk_wire
        self.metrics.migration_seconds += seconds

    # ------------------------------------------------------------- serving

    @property
    def has_unfinished(self) -> bool:
        return any(worker.has_unfinished for worker in self.workers)

    def step(self) -> list[RequestOutput]:
        """Advance every worker with pending work by one engine step."""
        outputs: list[RequestOutput] = []
        for worker in self.workers:
            if worker.has_unfinished:
                outputs.extend(worker.step())
        return outputs

    def run(
        self, requests: "Iterable[Request] | None" = None
    ) -> dict[str, RequestOutput]:
        """Submit ``requests`` (if given), drain the fleet, return finals."""
        if requests is not None:
            for request in requests:
                self.submit(request)
        finals: dict[str, RequestOutput] = {}
        while self.has_unfinished:
            for output in self.step():
                if output.finished:
                    finals[output.request_id] = output
        return finals

    def abort(self, request_id: str) -> RequestOutput:
        """Cancel an unfinished request on whichever worker holds it."""
        return self.worker_of(request_id).abort(request_id)

    def final_output(self, request_id: str) -> RequestOutput:
        """Final output of a finished request."""
        return self.worker_of(request_id).final_output(request_id)

    def release(self, request_id: str) -> None:
        """Drop a finished request's retained output on its worker."""
        self.worker_of(request_id).release(request_id)

    # ----------------------------------------------------------- reporting

    def fleet_metrics(self) -> EngineMetrics:
        """Fleet-aggregated engine counters.

        Per-worker snapshots merged into a fresh instance: counters sum,
        the clock takes the max (replicas run in parallel — the fleet
        makespan is the slowest worker, not the sum).
        """
        merged = EngineMetrics()
        for worker in self.workers:
            merged.merge(worker.metrics.snapshot())
        return merged

    def describe(self) -> dict:
        return {
            "num_workers": self.num_workers,
            "placement": self.router.policy,
            "migrate_on_miss": self.router.migrate_on_miss,
            "fleet": self.fleet_metrics().as_dict(),
            "migration": self.metrics.as_dict(),
            "directory": self.directory.describe(),
            "workers": [worker.describe() for worker in self.workers],
        }
