"""Multi-worker serving cluster over the single-engine stack.

PR 1–5 built one engine; this package scales it out: ``N``
:class:`Worker` replicas (each a full
:class:`~repro.serve.InferenceEngine`) behind a :class:`ClusterFrontend`,
with a :class:`Router` choosing placements (``round_robin`` /
``least_loaded`` / ``cache_aware``) and a shared
:class:`FingerprintDirectory` that workers publish their prefix-chain
residency into.  Cache-aware routing lands conversation turns on the
worker already holding their prefix; ``migrate_on_miss`` ships spilled
chains between workers' tiers, billed as NVMe+PCIe timeline traffic.
Placement changes only the simulated clock — tokens and logits are
byte-identical to a single-worker run for every policy and worker count.

Typical use::

    from repro.serve.cluster import ClusterFrontend

    cluster = ClusterFrontend(model, num_workers=4, placement="cache_aware")
    cluster.submit(request)
    finals = cluster.run()
    print(cluster.fleet_metrics().as_dict())
"""

from .directory import DirectoryPublisher, FingerprintDirectory, PrefixCoverage
from .frontend import ClusterFrontend, ClusterMetrics
from .router import ROUTING_POLICIES, Placement, Router
from .worker import Worker

__all__ = [
    "ClusterFrontend",
    "ClusterMetrics",
    "DirectoryPublisher",
    "FingerprintDirectory",
    "Placement",
    "PrefixCoverage",
    "ROUTING_POLICIES",
    "Router",
    "Worker",
]
