"""Per-request and engine-level serving metrics.

All timestamps live on the engine's *simulated* clock, which is advanced by
the analytical latency model (:class:`repro.memory.LatencyModel`) as requests
are prefilled and decoded: the NumPy substrate cannot measure realistic GPU
wall-clock itself, but the same runs can still be accounted in the paper's
hardware terms (TTFT, TPOT, PCIe bytes).
"""

from __future__ import annotations

import math
from dataclasses import MISSING, dataclass, field, fields, replace

from ..errors import ConfigurationError

__all__ = ["RequestMetrics", "EngineMetrics", "QoSClassMetrics", "QuantileDigest"]


class QuantileDigest:
    """Bounded-memory streaming quantile sketch (DDSketch-style log buckets).

    Values map to logarithmically-spaced buckets with growth factor
    ``gamma = (1 + relative_error) / (1 - relative_error)``, so any reported
    quantile lies within ``relative_error`` (relative) of a true sample
    value.  Bucket counts are plain additive integers, which is what makes
    the fleet semantics exact:

    * :meth:`merge` sums counts per bucket — merging two digests equals the
      digest of the concatenated streams (the same guarantee the flat
      engine counters give);
    * :meth:`snapshot` returns a detached copy safe to retain while the
      live digest keeps observing;
    * :meth:`reset` zeroes in place for windowed reporting, and
      :meth:`delta` subtracts an earlier snapshot bucket-by-bucket to read
      a window's quantiles without resetting the cumulative stream.

    Memory is bounded by ``max_buckets``: under pressure the lowest two
    buckets collapse (DDSketch's policy), degrading only the extreme low
    tail — never the memory bound and never the upper quantiles that TTFT /
    TPOT SLOs are written against.
    """

    __slots__ = ("relative_error", "max_buckets", "_gamma", "_gamma_log",
                 "_counts", "_zero", "count", "total", "_min", "_max")

    #: values at or below this floor land in the zero bucket
    _FLOOR = 1e-12

    def __init__(self, relative_error: float = 0.01,
                 max_buckets: int = 512) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ConfigurationError("relative_error must be in (0, 1)")
        if max_buckets < 2:
            raise ConfigurationError("max_buckets must be >= 2")
        self.relative_error = relative_error
        self.max_buckets = max_buckets
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._gamma_log = math.log(self._gamma)
        self._counts: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------ observe

    def observe(self, value: "float | None") -> None:
        """Fold one sample in (``None`` is ignored for optional metrics)."""
        if value is None:
            return
        value = float(value)
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value <= self._FLOOR:
            self._zero += 1
            return
        index = math.ceil(math.log(value) / self._gamma_log)
        self._counts[index] = self._counts.get(index, 0) + 1
        if len(self._counts) > self.max_buckets:
            self._collapse()

    def _collapse(self) -> None:
        """Fold the lowest bucket into its neighbour (memory bound)."""
        low, second = sorted(self._counts)[:2]
        self._counts[second] += self._counts.pop(low)

    def __eq__(self, other: object) -> bool:
        """Value equality: same grid, same bucket contents.  Two digests
        fed identical observation streams compare equal — the property
        the fused-vs-looped engine-metrics identity checks lean on."""
        if not isinstance(other, QuantileDigest):
            return NotImplemented
        return (
            self.relative_error == other.relative_error
            and self.max_buckets == other.max_buckets
            and self._counts == other._counts
            and self._zero == other._zero
            and self.count == other.count
            and self.total == other.total
            and self._min == other._min
            and self._max == other._max
        )

    __hash__ = None  # mutable value type

    # ----------------------------------------------------------- quantiles

    @property
    def mean(self) -> "float | None":
        if self.count == 0:
            return None
        return self.total / self.count

    def quantile(self, q: float) -> "float | None":
        """The ``q``-quantile (nearest-rank: ``sorted[round(q*(n-1))]``,
        i.e. ``numpy.percentile(..., method="nearest")``), within the
        digest's relative error.  ``None`` on an empty digest."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        rank = round(q * (self.count - 1))
        cum = self._zero
        if cum > rank:
            return max(min(0.0, self._max), self._min)
        for index in sorted(self._counts):
            cum += self._counts[index]
            if cum > rank:
                estimate = (
                    2.0 * math.exp(index * self._gamma_log)
                    / (1.0 + self._gamma)
                )
                return max(self._min, min(self._max, estimate))
        return self._max  # pragma: no cover — rank < count always lands

    def percentile(self, p: float) -> "float | None":
        """:meth:`quantile` with ``p`` in percent (``p99 = percentile(99)``)."""
        return self.quantile(p / 100.0)

    # ------------------------------------------------ snapshot/merge/reset

    def snapshot(self) -> "QuantileDigest":
        """Detached point-in-time copy."""
        copy = QuantileDigest(self.relative_error, self.max_buckets)
        copy._counts = dict(self._counts)
        copy._zero = self._zero
        copy.count = self.count
        copy.total = self.total
        copy._min = self._min
        copy._max = self._max
        return copy

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold ``other`` in bucket-by-bucket (returns ``self``)."""
        if other.relative_error != self.relative_error:
            raise ConfigurationError(
                "cannot merge digests with different relative_error "
                "(their bucket grids disagree)"
            )
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._zero += other._zero
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        while len(self._counts) > self.max_buckets:
            self._collapse()
        return self

    def delta(self, earlier: "QuantileDigest | None") -> "QuantileDigest":
        """The window since an ``earlier`` snapshot of *this* stream.

        Bucket counts subtract exactly (they are additive), so windowed
        quantiles carry the same error bound as cumulative ones; the
        window inherits the cumulative stream's min/max (clamp bounds
        only).  ``None`` returns a snapshot of the full stream.
        """
        if earlier is None:
            return self.snapshot()
        if earlier.relative_error != self.relative_error:
            raise ConfigurationError(
                "delta requires snapshots of the same digest stream"
            )
        window = QuantileDigest(self.relative_error, self.max_buckets)
        for index, count in self._counts.items():
            remaining = count - earlier._counts.get(index, 0)
            if remaining > 0:
                window._counts[index] = remaining
        window._zero = max(self._zero - earlier._zero, 0)
        window.count = max(self.count - earlier.count, 0)
        window.total = self.total - earlier.total
        window._min = self._min
        window._max = self._max
        return window

    def reset(self) -> None:
        """Zero in place (windowed-reporting support)."""
        self._counts.clear()
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


@dataclass
class RequestMetrics:
    """Serving metrics of one request (simulated seconds, modelled bytes).

    Attributes:
        arrival_time: simulated clock when the request was submitted.
        prefill_start: clock when prefill began (admission).
        first_token_time: clock when the first token became available.
        finish_time: clock when the request finished.
        prefill_seconds: simulated prefill makespan (the policy's method
            profile decides whether PQ clustering / offload overlap it).
        decode_seconds: simulated decode service time accumulated so far.
        num_prompt_tokens: prompt length.
        num_generated_tokens: tokens emitted (0 in teacher-forcing mode).
        prefill_chunks: prefill chunks executed (1 for monolithic prefill).
        decode_steps: decode rounds executed.
        attended_tokens: sum over decode steps of the mean number of cache
            tokens attended per layer/head — divide by ``decode_steps`` for
            the per-step average.
        comm_overlappable_bytes: modelled CPU→GPU traffic that can hide
            behind compute (PQ-code prefetch, block representatives).
        comm_blocking_bytes: modelled traffic on the critical path (top-k
            key/value fetches), accumulated over decode steps.
        cached_prefix_tokens: prompt tokens served from the shared-prefix
            cache (0 when prefix caching is off or the lookup missed);
            these tokens incur no prefill compute or clustering cost.
        preemptions: times this request was preempted under pool pressure.
        swap_out_bytes: modelled bytes this request's KV moved GPU→CPU/disk
            when it was swap-preempted.
        swap_in_bytes: modelled bytes restored on resume.
        swap_seconds: simulated transfer time of this request's own
            swap-out/swap-in events (also folded into the engine clock, so
            it shows up in every later request's queueing delay).
        recomputed_tokens: prompt + generated tokens re-processed because of
            recompute-preemption (0 under swap preemption).
        priority: the request's QoS priority class (0 = default best-effort;
            see :class:`~repro.serve.RequestQoS`).
        tenant: the request's tenant label (``"default"`` when untagged).
        deadline: *absolute* deadline on the engine's simulated clock
            (``arrival_time`` + the QoS-relative deadline), or ``None`` for
            best-effort requests without one.
    """

    arrival_time: float = 0.0
    prefill_start: float | None = None
    first_token_time: float | None = None
    finish_time: float | None = None
    prefill_seconds: float = 0.0
    decode_seconds: float = 0.0
    num_prompt_tokens: int = 0
    num_generated_tokens: int = 0
    prefill_chunks: int = 0
    decode_steps: int = 0
    attended_tokens: float = 0.0
    comm_overlappable_bytes: float = 0.0
    comm_blocking_bytes: float = 0.0
    cached_prefix_tokens: int = 0
    preemptions: int = 0
    swap_out_bytes: float = 0.0
    swap_in_bytes: float = 0.0
    swap_seconds: float = 0.0
    recomputed_tokens: int = 0
    priority: int = 0
    tenant: str = "default"
    deadline: float | None = None

    # ------------------------------------------------------------- derived

    @property
    def ttft(self) -> float | None:
        """Time-to-first-token: arrival → first token (queueing included)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float | None:
        """Time-per-output-token: mean simulated decode service time."""
        if self.decode_steps == 0:
            return None
        return self.decode_seconds / self.decode_steps

    @property
    def e2e_seconds(self) -> float | None:
        """End-to-end latency: arrival → finish (simulated)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def mean_attended_tokens(self) -> float:
        """Average cache tokens attended per decode step (per layer/head)."""
        if self.decode_steps == 0:
            return 0.0
        return self.attended_tokens / self.decode_steps

    def snapshot(self) -> "RequestMetrics":
        """Point-in-time copy, safe to retain while the request keeps running."""
        return replace(self)

    def as_dict(self) -> dict:
        return {
            "ttft": self.ttft,
            "tpot": self.tpot,
            "e2e_seconds": self.e2e_seconds,
            "prefill_seconds": self.prefill_seconds,
            "decode_seconds": self.decode_seconds,
            "num_prompt_tokens": self.num_prompt_tokens,
            "num_generated_tokens": self.num_generated_tokens,
            "prefill_chunks": self.prefill_chunks,
            "decode_steps": self.decode_steps,
            "mean_attended_tokens": self.mean_attended_tokens,
            "comm_overlappable_bytes": self.comm_overlappable_bytes,
            "comm_blocking_bytes": self.comm_blocking_bytes,
            "cached_prefix_tokens": self.cached_prefix_tokens,
            "preemptions": self.preemptions,
            "swap_out_bytes": self.swap_out_bytes,
            "swap_in_bytes": self.swap_in_bytes,
            "swap_seconds": self.swap_seconds,
            "recomputed_tokens": self.recomputed_tokens,
            "priority": self.priority,
            "tenant": self.tenant,
            "deadline": self.deadline,
        }


@dataclass
class QoSClassMetrics:
    """Aggregate counters of one priority class (or one tenant).

    The engine keeps one instance per priority class in
    ``EngineMetrics.per_class`` and one per tenant in
    ``EngineMetrics.per_tenant``; both follow the same snapshot/merge
    semantics as the flat engine counters (integer counters sum; the
    :attr:`ttft` / :attr:`tpot` :class:`QuantileDigest` streams merge
    bucket-by-bucket, which is equally exact).  Use :attr:`mean_ttft` /
    :attr:`mean_tpot` for the means and ``bucket.ttft.percentile(99)``
    etc. for tail latency — the digests are bounded-memory, so per-class
    p99s are available on long-running engines and across fleet merges
    without retaining per-request samples.
    """

    requests_submitted: int = 0
    requests_finished: int = 0
    requests_aborted: int = 0
    requests_shed: int = 0
    deadline_misses: int = 0
    preemptions: int = 0
    proactive_swap_outs: int = 0
    generated_tokens: int = 0
    ttft: QuantileDigest = field(default_factory=QuantileDigest)
    tpot: QuantileDigest = field(default_factory=QuantileDigest)

    @property
    def mean_ttft(self) -> float | None:
        return self.ttft.mean

    @property
    def mean_tpot(self) -> float | None:
        return self.tpot.mean

    def observe_finish(self, request: "RequestMetrics") -> None:
        """Fold one finished request's latency stats into this bucket."""
        self.ttft.observe(request.ttft)
        self.tpot.observe(request.tpot)
        self.generated_tokens += request.num_generated_tokens

    def snapshot(self) -> "QoSClassMetrics":
        copy = replace(self)
        copy.ttft = self.ttft.snapshot()
        copy.tpot = self.tpot.snapshot()
        return copy

    def merge(self, other: "QoSClassMetrics") -> "QoSClassMetrics":
        """Fold ``other`` in (counters sum, digests merge — returns ``self``)."""
        for spec in fields(self):
            mine = getattr(self, spec.name)
            if isinstance(mine, QuantileDigest):
                mine.merge(getattr(other, spec.name))
            else:
                setattr(self, spec.name, mine + getattr(other, spec.name))
        return self

    def as_dict(self) -> dict:
        return {
            "requests_submitted": self.requests_submitted,
            "requests_finished": self.requests_finished,
            "requests_aborted": self.requests_aborted,
            "requests_shed": self.requests_shed,
            "deadline_misses": self.deadline_misses,
            "preemptions": self.preemptions,
            "proactive_swap_outs": self.proactive_swap_outs,
            "generated_tokens": self.generated_tokens,
            "mean_ttft": self.mean_ttft,
            "mean_tpot": self.mean_tpot,
            "ttft": self.ttft.as_dict(),
            "tpot": self.tpot.as_dict(),
        }


@dataclass
class EngineMetrics:
    """Aggregate counters of one :class:`~repro.serve.InferenceEngine`.

    The ``prefix_cache_*`` counters cover the shared-prefix cache (all zero
    when ``enable_prefix_caching`` is off) at the *reuse* level: lookups
    performed, lookups whose match was actually attached, prompt tokens
    actually served from cached blocks, and total prompt tokens that went
    through the lookup path.  The cache's own
    :class:`~repro.serve.PrefixCacheStats` counts raw index matches, which
    can exceed these when a policy's constraints cap the reuse.

    Counters are *snapshotable and mergeable* so a fleet of engines can be
    aggregated: :meth:`snapshot` returns a frozen point-in-time copy,
    :meth:`merge` folds another instance in (counters sum; ``clock`` takes
    the max, because parallel engines' clocks overlap in wall time — the
    fleet makespan is the slowest worker, not the sum), and :meth:`reset`
    zeroes the instance in place for windowed reporting.

    ``steps`` vs ``decode_rounds`` under fused decode batching
    ----------------------------------------------------------
    ``steps`` counts :meth:`~repro.serve.InferenceEngine.step` calls — one
    per scheduler tick regardless of how many requests it served.
    ``decode_rounds`` counts *per-request* decode rounds: one fused
    multi-request round still increments ``decode_rounds`` once per
    participating request, exactly like the per-request loop, so dashboards
    and rate formulas built on it do not shift when ``decode_batching``
    toggles.  The fused path's own shape is reported separately by
    ``decode_batch_rounds`` (fused rounds executed) and
    ``decode_batch_requests`` (members across them; their ratio is the mean
    batch size), plus the ``decode_batch_size_*`` histogram buckets.

    The ``decode_*_seconds`` stage counters are *host wall-clock* seconds
    (``time.perf_counter``), not simulated latency-model seconds: they break
    one decode round into ADC scoring, top-k selection, K/V gather,
    attention + dense compute, and policy maintenance (PQ appends /
    codebook refreshes), so regressions in a specific decode stage are
    visible without profiling.  ``decode_select_seconds`` is the total time
    inside policy selection hooks and is a superset of the score and top-k
    stages (policies that cannot split their selection report only the
    total).
    """

    clock: float = 0.0
    steps: int = 0
    requests_submitted: int = 0
    requests_finished: int = 0
    requests_aborted: int = 0
    prefills: int = 0
    prefill_chunks: int = 0
    decode_rounds: int = 0
    generated_tokens: int = 0
    prefix_cache_queries: int = 0
    prefix_cache_hits: int = 0
    prefix_cache_hit_tokens: int = 0
    prefix_prompt_tokens: int = 0
    #: preemption / tiered-KV counters (all zero without a bounded pool):
    #: requests preempted per mode, blocks and modelled bytes moved between
    #: the GPU pool and the CPU/disk swap tiers, prefix chains spilled to or
    #: restored from the disk tier, and the simulated seconds the clock
    #: charged for all of that traffic.
    preemptions: int = 0
    preemptions_swap: int = 0
    preemptions_recompute: int = 0
    #: QoS accounting (all zero/empty without tagged traffic): requests
    #: refused by admission control, the subset of those shed for a missed
    #: or provably-unmeetable deadline (``finish_reason="deadline"``; every
    #: deadline miss also counts in ``requests_shed``), proactive swap-outs
    #: of idle low-priority work, SLO-tuner knob adjustments, and
    #: per-priority-class / per-tenant counter buckets (see
    #: :class:`QoSClassMetrics`; dict values merge per key, counters sum).
    requests_shed: int = 0
    deadline_misses: int = 0
    slo_tunings: int = 0
    proactive_swap_outs: int = 0
    per_class: dict = field(default_factory=dict)
    per_tenant: dict = field(default_factory=dict)
    swap_out_blocks: int = 0
    swap_in_blocks: int = 0
    swap_out_bytes: float = 0.0
    swap_in_bytes: float = 0.0
    spill_out_bytes: float = 0.0
    spill_in_bytes: float = 0.0
    swap_seconds: float = 0.0
    #: KV-codec accounting: the ``*_bytes`` counters above are *logical*
    #: (modelled raw size — identical between raw-tier and lossless-codec
    #: runs); the ``*_wire_bytes`` ones are what actually crossed the
    #: PCIe/NVMe links after encoding, and the ``codec_*_seconds`` are the
    #: simulated CPU time of the encode/decode stages billed to the clock.
    swap_out_wire_bytes: float = 0.0
    swap_in_wire_bytes: float = 0.0
    spill_out_wire_bytes: float = 0.0
    spill_in_wire_bytes: float = 0.0
    codec_encode_seconds: float = 0.0
    codec_decode_seconds: float = 0.0
    #: fused decode-round observability (all zero when decode batching is
    #: off): rounds / members / batch-size histogram, host wall-clock stage
    #: breakdown, and PQ drift-refresh accounting (``pq_refresh_seconds`` is
    #: *simulated* clustering time billed to the clock, unlike the
    #: ``decode_*_seconds`` wall-clock stages).
    decode_batch_rounds: int = 0
    decode_batch_requests: int = 0
    decode_batch_size_1: int = 0
    decode_batch_size_2_4: int = 0
    decode_batch_size_5_8: int = 0
    decode_batch_size_9_16: int = 0
    decode_batch_size_17_plus: int = 0
    decode_select_seconds: float = 0.0
    decode_score_seconds: float = 0.0
    decode_topk_seconds: float = 0.0
    decode_gather_seconds: float = 0.0
    decode_attention_seconds: float = 0.0
    decode_maintenance_seconds: float = 0.0
    pq_refreshes: int = 0
    pq_refresh_seconds: float = 0.0

    def observe_decode_batch(self, batch_size: int) -> None:
        """Record one fused decode round over ``batch_size`` requests."""
        if batch_size <= 0:
            return
        self.decode_batch_rounds += 1
        self.decode_batch_requests += batch_size
        if batch_size == 1:
            self.decode_batch_size_1 += 1
        elif batch_size <= 4:
            self.decode_batch_size_2_4 += 1
        elif batch_size <= 8:
            self.decode_batch_size_5_8 += 1
        elif batch_size <= 16:
            self.decode_batch_size_9_16 += 1
        else:
            self.decode_batch_size_17_plus += 1

    # ------------------------------------------------------- QoS buckets

    def class_bucket(self, priority: int) -> QoSClassMetrics:
        """The (auto-created) per-priority-class counter bucket."""
        bucket = self.per_class.get(priority)
        if bucket is None:
            bucket = self.per_class[priority] = QoSClassMetrics()
        return bucket

    def tenant_bucket(self, tenant: str) -> QoSClassMetrics:
        """The (auto-created) per-tenant counter bucket."""
        bucket = self.per_tenant.get(tenant)
        if bucket is None:
            bucket = self.per_tenant[tenant] = QoSClassMetrics()
        return bucket

    # -------------------------------------------------- snapshot / merge

    def snapshot(self) -> "EngineMetrics":
        """Point-in-time copy (the live instance keeps accumulating).

        The per-class/per-tenant buckets are copied bucket-by-bucket so the
        snapshot stays frozen while the live instance keeps counting.
        """
        copy = replace(self)
        copy.per_class = {k: v.snapshot() for k, v in self.per_class.items()}
        copy.per_tenant = {k: v.snapshot() for k, v in self.per_tenant.items()}
        return copy

    def merge(self, other: "EngineMetrics") -> "EngineMetrics":
        """Fold ``other``'s counters into this instance (returns ``self``).

        Every counter is summed; ``clock`` takes the maximum, since two
        engines running in parallel overlap in wall time — a fleet's
        aggregated clock is its slowest worker's.  The per-class/per-tenant
        dicts merge per key (each bucket's counters sum).  Merge snapshots
        (or deltas of snapshots) when aggregating live engines so a counter
        is never folded in twice.
        """
        for spec in fields(self):
            if spec.name == "clock":
                self.clock = max(self.clock, other.clock)
            elif spec.name in ("per_class", "per_tenant"):
                ours = getattr(self, spec.name)
                for key, bucket in getattr(other, spec.name).items():
                    if key in ours:
                        ours[key].merge(bucket)
                    else:
                        ours[key] = bucket.snapshot()
            else:
                value = getattr(self, spec.name) + getattr(other, spec.name)
                setattr(self, spec.name, value)
        return self

    def reset(self) -> None:
        """Zero every counter in place (windowed-reporting support)."""
        for spec in fields(self):
            if spec.default_factory is not MISSING:  # type: ignore[misc]
                setattr(self, spec.name, spec.default_factory())  # type: ignore[misc]
            else:
                setattr(self, spec.name, spec.default)

    # ------------------------------------------------------------ derived

    @property
    def requests_per_second(self) -> float:
        """Finished requests per simulated second."""
        if self.clock <= 0.0:
            return 0.0
        return self.requests_finished / self.clock

    @property
    def tokens_per_second(self) -> float:
        """Emitted tokens per simulated second."""
        if self.clock <= 0.0:
            return 0.0
        return self.generated_tokens / self.clock

    @property
    def mean_decode_batch_size(self) -> float:
        """Average RUNNING requests served per fused decode round."""
        if self.decode_batch_rounds == 0:
            return 0.0
        return self.decode_batch_requests / self.decode_batch_rounds

    @property
    def decode_batch_size_histogram(self) -> dict:
        """Fused-round batch sizes bucketed as ``{label: rounds}``."""
        return {
            "1": self.decode_batch_size_1,
            "2-4": self.decode_batch_size_2_4,
            "5-8": self.decode_batch_size_5_8,
            "9-16": self.decode_batch_size_9_16,
            "17+": self.decode_batch_size_17_plus,
        }

    @property
    def swap_compression_ratio(self) -> float:
        """Achieved logical/wire ratio on the preemption swap path (1.0 raw)."""
        wire = self.swap_out_wire_bytes + self.swap_in_wire_bytes
        if wire <= 0.0:
            return 1.0
        return (self.swap_out_bytes + self.swap_in_bytes) / wire

    @property
    def spill_compression_ratio(self) -> float:
        """Achieved logical/wire ratio on the prefix spill path (1.0 raw)."""
        wire = self.spill_out_wire_bytes + self.spill_in_wire_bytes
        if wire <= 0.0:
            return 1.0
        return (self.spill_out_bytes + self.spill_in_bytes) / wire

    @property
    def prefix_cache_hit_rate(self) -> float:
        """Fraction of prefix-cache lookups that matched at least one block."""
        if self.prefix_cache_queries == 0:
            return 0.0
        return self.prefix_cache_hits / self.prefix_cache_queries

    @property
    def prefix_token_hit_rate(self) -> float:
        """Fraction of looked-up prompt tokens served from cached blocks."""
        if self.prefix_prompt_tokens == 0:
            return 0.0
        return self.prefix_cache_hit_tokens / self.prefix_prompt_tokens

    def as_dict(self) -> dict:
        return {
            "clock": self.clock,
            "steps": self.steps,
            "requests_submitted": self.requests_submitted,
            "requests_finished": self.requests_finished,
            "requests_aborted": self.requests_aborted,
            "prefills": self.prefills,
            "prefill_chunks": self.prefill_chunks,
            "decode_rounds": self.decode_rounds,
            "generated_tokens": self.generated_tokens,
            "requests_per_second": self.requests_per_second,
            "tokens_per_second": self.tokens_per_second,
            "prefix_cache_queries": self.prefix_cache_queries,
            "prefix_cache_hits": self.prefix_cache_hits,
            "prefix_cache_hit_tokens": self.prefix_cache_hit_tokens,
            "prefix_cache_hit_rate": self.prefix_cache_hit_rate,
            "prefix_token_hit_rate": self.prefix_token_hit_rate,
            "preemptions": self.preemptions,
            "preemptions_swap": self.preemptions_swap,
            "preemptions_recompute": self.preemptions_recompute,
            "requests_shed": self.requests_shed,
            "deadline_misses": self.deadline_misses,
            "slo_tunings": self.slo_tunings,
            "proactive_swap_outs": self.proactive_swap_outs,
            "per_class": {k: v.as_dict() for k, v in sorted(self.per_class.items())},
            "per_tenant": {k: v.as_dict() for k, v in sorted(self.per_tenant.items())},
            "swap_out_blocks": self.swap_out_blocks,
            "swap_in_blocks": self.swap_in_blocks,
            "swap_out_bytes": self.swap_out_bytes,
            "swap_in_bytes": self.swap_in_bytes,
            "spill_out_bytes": self.spill_out_bytes,
            "spill_in_bytes": self.spill_in_bytes,
            "swap_out_wire_bytes": self.swap_out_wire_bytes,
            "swap_in_wire_bytes": self.swap_in_wire_bytes,
            "spill_out_wire_bytes": self.spill_out_wire_bytes,
            "spill_in_wire_bytes": self.spill_in_wire_bytes,
            "swap_compression_ratio": self.swap_compression_ratio,
            "spill_compression_ratio": self.spill_compression_ratio,
            "codec_encode_seconds": self.codec_encode_seconds,
            "codec_decode_seconds": self.codec_decode_seconds,
            "swap_seconds": self.swap_seconds,
            "decode_batch_rounds": self.decode_batch_rounds,
            "decode_batch_requests": self.decode_batch_requests,
            "mean_decode_batch_size": self.mean_decode_batch_size,
            "decode_batch_size_histogram": self.decode_batch_size_histogram,
            "decode_select_seconds": self.decode_select_seconds,
            "decode_score_seconds": self.decode_score_seconds,
            "decode_topk_seconds": self.decode_topk_seconds,
            "decode_gather_seconds": self.decode_gather_seconds,
            "decode_attention_seconds": self.decode_attention_seconds,
            "decode_maintenance_seconds": self.decode_maintenance_seconds,
            "pq_refreshes": self.pq_refreshes,
            "pq_refresh_seconds": self.pq_refresh_seconds,
        }
