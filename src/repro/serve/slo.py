"""Opt-in SLO feedback loop: tune serving knobs toward per-class TTFT targets.

:class:`SLOTuner` closes the loop between the engine's per-class streaming
TTFT quantile digests (:class:`~repro.serve.QuantileDigest`) and the two
knobs that buy interactive latency under contention:

* the engine's live ``proactive_swap_free_fraction`` — raised when a
  targeted class misses its TTFT target (low-priority running work yields
  pool blocks earlier), relaxed back toward the configured
  :class:`~repro.serve.SchedulerConfig` baseline once every targeted class
  has comfortable margin;
* the scheduler's ``tenant_weights`` overrides — tenants observed serving a
  violating class get a larger weighted-fair share of the chunked-prefill
  budget (the frozen per-request QoS declarations stay untouched).

The loop reads *windowed* quantiles: every ``adjust_every`` engine steps it
takes the digest delta since its previous mark, so one bad burst does not
haunt the controller forever and recovery is observable.  Tuning is
scheduling-only by construction — both knobs steer ordering and budget
shares, never what a request computes, so the engine's byte-identity
invariant is untouched.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .metrics import QuantileDigest

__all__ = ["SLOTuner"]


class SLOTuner:
    """Feedback controller from per-class TTFT quantiles to serving knobs.

    Attach via ``InferenceEngine(..., slo_tuner=SLOTuner({2: 0.002}))``: the
    engine feeds it every finished request (:meth:`observe`) and calls
    :meth:`on_step` once per productive step.  Every ``adjust_every`` steps
    the tuner compares each targeted class's windowed TTFT quantile against
    its target:

    * any violation → *tighten*: raise the engine's proactive swap-out
      threshold by ``fraction_step`` (capped at ``max_free_fraction``) and
      multiply the violating classes' tenants' weight overrides by
      ``weight_gain`` (capped at ``max_weight_gain`` over the declared
      base weight);
    * every targeted class at or under ``relax_margin`` of its target →
      *relax*: walk the threshold back toward the configured baseline and
      decay the weight overrides, removing them once they reach the base.

    Every adjustment bumps ``EngineMetrics.slo_tunings`` and appends a
    record to :attr:`history`.

    Args:
        ttft_targets: ``{priority_class: target_ttft_seconds}`` — classes
            absent from the mapping are never tuned against.
        quantile: which TTFT quantile must meet the target (default p90).
        adjust_every: engine steps between control decisions.
        min_samples: minimum finished requests in a class's window before
            its quantile is trusted (smaller windows are skipped).
        fraction_step: additive step applied to the proactive threshold.
        max_free_fraction: cap on the tuned proactive threshold.
        weight_gain: multiplicative boost per tighten round on the weight
            overrides of tenants serving a violating class.
        max_weight_gain: cap on the cumulative boost multiplier.
        relax_margin: relax only when every measured class sits at or under
            ``relax_margin * target`` — hysteresis so the controller does
            not oscillate around the target.
    """

    def __init__(
        self,
        ttft_targets: dict,
        quantile: float = 0.9,
        adjust_every: int = 8,
        min_samples: int = 4,
        fraction_step: float = 0.1,
        max_free_fraction: float = 0.95,
        weight_gain: float = 1.5,
        max_weight_gain: float = 8.0,
        relax_margin: float = 0.5,
    ) -> None:
        if not ttft_targets:
            raise ConfigurationError("ttft_targets must name at least one class")
        if any(target <= 0 for target in ttft_targets.values()):
            raise ConfigurationError("TTFT targets must be > 0 seconds")
        if not 0.0 < quantile <= 1.0:
            raise ConfigurationError("quantile must be in (0, 1]")
        if adjust_every <= 0:
            raise ConfigurationError("adjust_every must be positive")
        if min_samples <= 0:
            raise ConfigurationError("min_samples must be positive")
        if fraction_step <= 0:
            raise ConfigurationError("fraction_step must be positive")
        if not 0.0 < max_free_fraction <= 1.0:
            raise ConfigurationError("max_free_fraction must be in (0, 1]")
        if weight_gain <= 1.0:
            raise ConfigurationError("weight_gain must be > 1")
        if max_weight_gain < weight_gain:
            raise ConfigurationError("max_weight_gain must be >= weight_gain")
        if not 0.0 < relax_margin <= 1.0:
            raise ConfigurationError("relax_margin must be in (0, 1]")
        self.ttft_targets = {int(k): float(v) for k, v in ttft_targets.items()}
        self.quantile = quantile
        self.adjust_every = adjust_every
        self.min_samples = min_samples
        self.fraction_step = fraction_step
        self.max_free_fraction = max_free_fraction
        self.weight_gain = weight_gain
        self.max_weight_gain = max_weight_gain
        self.relax_margin = relax_margin
        self._steps = 0
        #: per-class digest snapshots marking the last consumed window
        self._marks: dict[int, QuantileDigest] = {}
        #: which tenants have been observed finishing work in which class
        self._class_tenants: dict[int, set] = {}
        #: largest declared weight seen per tenant (the boost base)
        self._base_weights: dict[str, float] = {}
        #: current cumulative boost multiplier per tenant (>= 1.0)
        self._boosts: dict[str, float] = {}
        #: one record per control decision that moved a knob
        self.history: list[dict] = []

    # -------------------------------------------------------- engine hooks

    def observe(self, item) -> None:
        """Record a finished request's class ↔ tenant association.

        The engine calls this for every normally-finished request; the
        tuner only needs the QoS coordinates (duck-typed like the
        scheduler's item protocol), not the latency — latency arrives
        through the engine's per-class digests.
        """
        priority = int(getattr(item, "priority", 0))
        tenant = str(getattr(item, "tenant", "default"))
        weight = float(getattr(item, "weight", 1.0))
        self._class_tenants.setdefault(priority, set()).add(tenant)
        self._base_weights[tenant] = max(
            self._base_weights.get(tenant, 0.0), weight
        )

    def on_step(self, engine) -> None:
        """Control tick — called by the engine once per productive step."""
        self._steps += 1
        if self._steps % self.adjust_every:
            return
        violations: list[tuple[int, float, float]] = []
        measured: list[tuple[int, float, float]] = []
        for priority in sorted(self.ttft_targets):
            bucket = engine.metrics.per_class.get(priority)
            if bucket is None:
                continue
            window = bucket.ttft.delta(self._marks.get(priority))
            if window.count < self.min_samples:
                continue
            self._marks[priority] = bucket.ttft.snapshot()
            observed = window.quantile(self.quantile)
            assert observed is not None  # count >= min_samples > 0
            target = self.ttft_targets[priority]
            measured.append((priority, observed, target))
            if observed > target:
                violations.append((priority, observed, target))
        if violations:
            self._tighten(engine, violations)
        elif measured and all(
            observed <= target * self.relax_margin
            for _, observed, target in measured
        ):
            self._relax(engine, measured)

    # ------------------------------------------------------- control moves

    def _apply_boost(self, engine, tenant: str, multiplier: float) -> bool:
        """Set one tenant's weight override to ``base * multiplier``.

        A multiplier of 1.0 removes the override entirely, handing the
        weighted-fair split back to the requests' declared weights.
        Returns whether anything changed.
        """
        if multiplier <= 1.0:
            if self._boosts.pop(tenant, None) is None:
                return False
            engine.scheduler.tenant_weights.pop(tenant, None)
            return True
        if self._boosts.get(tenant) == multiplier:
            return False
        self._boosts[tenant] = multiplier
        base = self._base_weights.get(tenant, 1.0)
        engine.scheduler.tenant_weights[tenant] = base * multiplier
        return True

    def _tighten(self, engine, violations) -> None:
        changed = False
        current = engine.proactive_swap_free_fraction or 0.0
        raised = min(self.max_free_fraction, current + self.fraction_step)
        if raised > current:
            engine.proactive_swap_free_fraction = raised
            changed = True
        for priority, _observed, _target in violations:
            for tenant in sorted(self._class_tenants.get(priority, ())):
                boost = min(
                    self._boosts.get(tenant, 1.0) * self.weight_gain,
                    self.max_weight_gain,
                )
                changed = self._apply_boost(engine, tenant, boost) or changed
        self._record(engine, "tighten", violations, changed)

    def _relax(self, engine, measured) -> None:
        changed = False
        baseline = engine.scheduler.config.proactive_swap_free_fraction
        current = engine.proactive_swap_free_fraction
        if current is not None and current != baseline:
            floor = baseline if baseline is not None else 0.0
            lowered = max(floor, current - self.fraction_step)
            engine.proactive_swap_free_fraction = (
                None if baseline is None and lowered <= 0.0 else lowered
            )
            changed = True
        for tenant in sorted(self._boosts):
            decayed = self._boosts[tenant] / self.weight_gain
            if decayed < 1.0 + 1e-12:
                decayed = 1.0
            changed = self._apply_boost(engine, tenant, decayed) or changed
        if changed:
            self._record(engine, "relax", measured, changed)

    def _record(self, engine, action: str, classes, changed: bool) -> None:
        if changed:
            engine.metrics.slo_tunings += 1
        self.history.append({
            "step": self._steps,
            "action": action,
            "changed": changed,
            "classes": [
                {"priority": p, "observed": o, "target": t}
                for p, o, t in classes
            ],
            "proactive_swap_free_fraction": engine.proactive_swap_free_fraction,
            "tenant_weights": dict(engine.scheduler.tenant_weights),
        })
