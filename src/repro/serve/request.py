"""Request-centric data model of the serving engine.

A :class:`Request` bundles everything one sequence needs to travel through
the engine: the prompt, the sampling parameters, and a :class:`PolicySpec`
describing which KVCache policy to instantiate for it.  The engine answers
with :class:`RequestOutput` objects — one per engine step that touched the
request — carrying the newly streamed tokens and, once the request finishes,
the full per-step logits/selections payload that the legacy
:func:`repro.llm.greedy_generate` wrapper repackages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

import numpy as np

from ..baselines.base import KVCachePolicy, SelectionBudget
from ..baselines.registry import POLICY_NAMES, build_policy
from ..errors import ConfigurationError
from ..llm.generation import StepSelections
from ..llm.model import PrefillResult
from .metrics import RequestMetrics

__all__ = [
    "SamplingParams",
    "PolicySpec",
    "Request",
    "RequestQoS",
    "RequestStatus",
    "RequestOutput",
    "SelectionHook",
]

#: called from inside the per-layer selector with
#: ``(layer_index, query, cache, selected)`` where ``selected`` is already
#: normalised to per-KV-head index arrays (or ``None`` for full attention) —
#: the eval harness uses this to record
#: :class:`~repro.eval.metrics.StepObservation` objects.
SelectionHook = Callable[[int, np.ndarray, object, object], None]

_REQUEST_COUNTER = itertools.count()


def _next_request_id() -> str:
    return f"req-{next(_REQUEST_COUNTER)}"


@dataclass(frozen=True)
class SamplingParams:
    """Per-request decoding parameters (greedy decoding throughout).

    Attributes:
        max_new_tokens: number of tokens to generate.
        forbidden_ids: token ids never emitted (masked to ``-inf``).
        stop_token_ids: ids that terminate the request early; the stop token
            is included in the output but not decoded further.
        observation_window: trailing-query window for prefill aggregates.
    """

    max_new_tokens: int = 16
    forbidden_ids: tuple[int, ...] = ()
    stop_token_ids: tuple[int, ...] = ()
    observation_window: int = 32

    def __post_init__(self) -> None:
        if self.max_new_tokens <= 0:
            raise ConfigurationError("max_new_tokens must be positive")
        if self.observation_window <= 0:
            raise ConfigurationError("observation_window must be positive")


@dataclass(frozen=True)
class RequestQoS:
    """Per-request quality-of-service tags (multi-tenant serving).

    QoS steers *scheduling only*: admission order, chunked-prefill budget
    shares, victim selection under pool pressure, proactive swap-out, and
    load shedding.  It never changes what a request computes — tokens and
    logits stay byte-identical to an uncontended run of the same request
    (the engine's load-bearing invariant).

    Attributes:
        priority: priority class; higher is more important.  Admission is
            ordered by class (FCFS within a class), and under pool pressure
            victims are preferred from strictly lower classes — the age-rule
            liveness argument holds *within* each class, so the oldest
            request of the top class always completes.
        tenant: tenant label; per-tenant metrics are keyed on it and the
            chunked-prefill token budget is split weighted-fair *across*
            tenants (max-min within each tenant).
        weight: this tenant's fair-share weight in the chunked-prefill
            split (> 0); requests of one tenant should declare the same
            weight (the largest declared weight wins per step).
        deadline: optional completion deadline in *relative* simulated
            seconds from submit (> 0), resolved against the engine's clock
            at submit time.  Within a priority class, deadline-tagged
            requests are admitted earliest-deadline-first ahead of the
            FCFS tail of untagged requests; when the scheduler's
            ``shed_missed_deadlines`` knob is on, a request still waiting
            past its deadline (or provably unable to meet it) is shed with
            ``finish_reason="deadline"``.
    """

    priority: int = 0
    tenant: str = "default"
    weight: float = 1.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigurationError("tenant must be a non-empty string")
        if self.weight <= 0:
            raise ConfigurationError("weight must be > 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be > 0 seconds (or None)")


class PolicySpec:
    """Recipe for building one fresh :class:`KVCachePolicy` per request.

    Policies are stateful (PQ codebooks, retained sets, GPU-cache stats), so
    requests must never share an instance; the engine calls :meth:`build`
    exactly once per request.  Three construction styles are supported:

    * :meth:`named` — canonical registry name + budget + options (the normal
      serving path, e.g. ``PolicySpec.named("pqcache", budget)``),
    * :meth:`from_factory` — an arbitrary zero-arg callable,
    * :meth:`from_instance` — wrap an already-built policy (single use; this
      is what the legacy ``greedy_generate(policy=...)`` signature needs).
    """

    def __init__(
        self,
        name: str | None = None,
        budget: SelectionBudget | None = None,
        options: dict | None = None,
        factory: Callable[[], KVCachePolicy] | None = None,
    ) -> None:
        if name is not None and factory is not None:
            raise ConfigurationError("PolicySpec takes a name or a factory, not both")
        if name is not None and budget is None:
            raise ConfigurationError("a named PolicySpec requires a budget")
        # Fail at request-creation time, not mid-serving after the request
        # was already admitted into a batch slot.
        if name is not None and name not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown policy {name!r}; valid names: {', '.join(POLICY_NAMES)}"
            )
        self.name = name
        self.budget = budget
        self.options = dict(options or {})
        self._factory = factory
        self._instance: KVCachePolicy | None = None
        self._instance_used = False

    # ------------------------------------------------------------ builders

    @classmethod
    def named(cls, name: str, budget: SelectionBudget, **options) -> "PolicySpec":
        """Spec resolved through :func:`repro.baselines.build_policy`."""
        return cls(name=name, budget=budget, options=options)

    @classmethod
    def from_factory(cls, factory: Callable[[], KVCachePolicy]) -> "PolicySpec":
        """Spec around an arbitrary policy factory."""
        return cls(factory=factory)

    @classmethod
    def from_instance(cls, policy: KVCachePolicy) -> "PolicySpec":
        """Single-use spec wrapping an existing policy instance."""
        spec = cls()
        spec._instance = policy
        return spec

    @property
    def supports_rebuild(self) -> bool:
        """Whether :meth:`build` can be called again for the *same* request.

        Recompute-preemption discards a request's policy state and rebuilds
        it from the spec on resume.  Named and factory specs produce a fresh
        equivalent policy every time; an instance-wrapping spec cannot (the
        instance is stateful and single-use), so the engine swaps such
        requests instead of recomputing them.
        """
        return self._instance is None

    def build(self) -> KVCachePolicy:
        """Construct (or hand over) the policy for one request."""
        if self._instance is not None:
            if self._instance_used:
                raise ConfigurationError(
                    "PolicySpec.from_instance is single-use: policies are "
                    "stateful and cannot serve two requests"
                )
            self._instance_used = True
            return self._instance
        if self._factory is not None:
            return self._factory()
        if self.name is not None:
            assert self.budget is not None
            return build_policy(self.name, self.budget, **self.options)
        raise ConfigurationError("empty PolicySpec cannot build a policy")

    def describe(self) -> dict:
        return {"name": self.name, "options": dict(self.options)}


class RequestStatus(Enum):
    """Lifecycle of a request inside the engine.

    ``WAITING → PREFILLING → RUNNING → FINISHED``: a request admitted into a
    batch slot first prefills its prompt (one monolithic step, or several
    chunks under chunked prefill — it stays ``PREFILLING`` between chunks),
    then decodes (``RUNNING``) until it finishes.  Under KV-pool pressure
    the engine may *preempt* a prefilling or running request: ``SWAPPED``
    means its blocks were copied to the CPU/disk swap tier and will be
    restored bitwise when the request is re-admitted; ``PREEMPTED``
    (recompute mode) means its blocks were dropped and the request will
    re-prefill its prompt and deterministically replay its generated tokens.
    Both states sit in the waiting queue and re-enter through admission.
    :meth:`InferenceEngine.abort` can finish a request early from any
    non-finished state (see ``docs/serving.md``).
    """

    WAITING = "waiting"
    PREFILLING = "prefilling"
    RUNNING = "running"
    SWAPPED = "swapped"
    PREEMPTED = "preempted"
    FINISHED = "finished"


@dataclass
class Request:
    """One generation request submitted to the :class:`InferenceEngine`.

    Attributes:
        prompt_ids: prompt token ids (non-empty).
        sampling: greedy-decoding parameters.
        policy_spec: KVCache policy recipe, or ``None`` for full attention.
        request_id: unique id; auto-assigned when omitted.
        forced_decode_ids: teacher-forcing mode — decode exactly these tokens
            instead of sampling (the evaluation harness feeds probe tokens
            this way); no tokens are *generated* in this mode.
        prefill: optional precomputed prefill result (e.g. a clone of a
            shared prefill); the engine skips its own prefill when set.
        selection_hook: optional observer called at every per-layer selection.
        qos: priority/tenant tags (see :class:`RequestQoS`); the default is
            a single best-effort class, which reproduces the pre-QoS FCFS
            scheduler exactly.
    """

    prompt_ids: list[int]
    sampling: SamplingParams = field(default_factory=SamplingParams)
    policy_spec: PolicySpec | None = None
    request_id: str = field(default_factory=_next_request_id)
    forced_decode_ids: list[int] | None = None
    prefill: PrefillResult | None = None
    selection_hook: SelectionHook | None = None
    qos: RequestQoS = field(default_factory=RequestQoS)

    def __post_init__(self) -> None:
        self.prompt_ids = [int(t) for t in self.prompt_ids]
        if not self.prompt_ids:
            raise ConfigurationError("prompt_ids must be non-empty")
        if self.forced_decode_ids is not None:
            self.forced_decode_ids = [int(t) for t in self.forced_decode_ids]
            if not self.forced_decode_ids:
                raise ConfigurationError("forced_decode_ids must be non-empty")


@dataclass
class RequestOutput:
    """Streamed (and final) output of one request.

    The engine emits one output per step that touched the request; only the
    final output (``finished=True``) carries the heavyweight ``logits`` /
    ``selections`` / ``prefill`` payload.

    Attributes:
        request_id: id of the originating request.
        new_token_ids: tokens first emitted during this engine step.
        token_ids: all tokens emitted so far (prompt excluded).
        finished: whether the request completed this step.
        finish_reason: ``"length"``, ``"stop"``, ``"aborted"``, ``"shed"``
            (refused by admission control), ``"deadline"`` (missed or
            provably-unmeetable deadline) or ``None`` while running.
        metrics: per-request serving metrics (TTFT, TPOT, bytes moved, ...).
        logits: ``(steps, vocab)`` per-decode-step logits (final output only).
        selections: per-step :data:`~repro.llm.StepSelections` (final only).
        prefill: the request's prefill result (final output only).
    """

    request_id: str
    new_token_ids: list[int]
    token_ids: list[int]
    finished: bool
    finish_reason: str | None
    metrics: RequestMetrics
    logits: np.ndarray | None = None
    selections: list[StepSelections] | None = None
    prefill: PrefillResult | None = None
