"""Fused decode-round plan: one batched model step over all RUNNING requests.

:class:`DecodeBatch` is the engine's working plan for a *fused* decode round:
it collects every decoding request's input token, KVCache and policy into one
structure, builds the :data:`~repro.llm.BatchSelector` that dispatches each
layer's selections to cross-request grouped policy kernels
(:meth:`~repro.baselines.base.KVCachePolicy.select_batch`), and captures the
per-request bookkeeping (``step_selections``, attended-token counts) that the
engine's billing phase consumes afterwards.

The plan exists so :class:`~repro.serve.InferenceEngine` can run one
:meth:`~repro.llm.TransformerLM.decode_step_batch` call per engine step
instead of one :meth:`~repro.llm.TransformerLM.decode_step` call per request,
while keeping tokens, logits, selections and metrics byte-identical to the
per-request loop:

* per-request state is fully isolated (each request owns its KVCache and
  policy), so running the round layer-major across requests instead of
  request-major cannot change any request's arithmetic;
* grouped policy kernels are contractually bitwise equal to looping the
  per-request hooks (see :meth:`KVCachePolicy.select_batch`);
* the selector bookkeeping below replicates the per-request selector closure
  of the looped path exactly, including the convention that a request with
  neither a policy nor a selection hook records *no* per-layer selections
  (its ``selections`` entry stays an empty list, and the engine substitutes
  the full-attention attended count after the round).

Requests are grouped by *policy class* (order of first occurrence) so each
class's ``select_batch`` / ``on_decode_step_batch`` override sees every
same-class request at once — that is where the cross-request kernel fusion
(grouped ADC scoring, grouped sort-dedup assembly, grouped PQ encoding)
happens.  Stage wall-clock seconds accumulate into :attr:`DecodeBatch.timings`
(keys ``"select"``, ``"score"``, ``"topk"``, ``"gather"``, ``"attention"``,
``"maintenance"``) for :class:`~repro.serve.EngineMetrics`'s decode-round
breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..baselines.base import KVCachePolicy
from ..llm.generation import StepSelections
from ..llm.kvcache import KVCache
from ..llm.model import BatchSelector
from .state import RequestState

__all__ = ["DecodeBatch", "DecodeMember"]


@dataclass
class DecodeMember:
    """One request's slot in a fused decode round."""

    state: RequestState
    #: token this round processes (the request's last emitted/forced token)
    token: int
    cache: KVCache
    policy: KVCachePolicy | None
    #: optional per-layer observer from the request (test instrumentation)
    hook: object | None
    #: whether the looped path would build a selector closure for this
    #: request — exactly ``policy is not None or hook is not None``; members
    #: without one record no selections and attend to everything
    needs_selector: bool
    #: per-layer normalised selections, as the looped selector records them
    step_selections: StepSelections = field(default_factory=list)
    #: per-layer attended-token counts (empty for selector-less members)
    attended: list[float] = field(default_factory=list)


class DecodeBatch:
    """Plan and per-layer dispatch state of one fused decode round."""

    def __init__(self, members: list[DecodeMember], num_kv_heads: int) -> None:
        self.members = members
        self.num_kv_heads = num_kv_heads
        #: host wall-clock seconds per stage, accumulated across layers
        self.timings: dict[str, float] = {}
        #: positions grouped by policy class, in order of first occurrence —
        #: the unit at which the grouped policy kernels fuse requests
        self.policy_groups: list[tuple[type, list[int]]] = []
        groups: dict[type, list[int]] = {}
        for pos, member in enumerate(members):
            if member.policy is None:
                continue
            cls = type(member.policy)
            if cls not in groups:
                groups[cls] = []
                self.policy_groups.append((cls, groups[cls]))
            groups[cls].append(pos)

    @classmethod
    def plan(
        cls, states: "list[RequestState]", num_kv_heads: int
    ) -> "DecodeBatch":
        """Collect the round's members from the scheduler's decode set."""
        members = []
        for state in states:
            assert state.prefill is not None
            policy = state.policy
            hook = state.request.selection_hook
            members.append(
                DecodeMember(
                    state=state,
                    token=state.next_input_token(),
                    cache=state.prefill.kvcache,
                    policy=policy,
                    hook=hook,
                    needs_selector=policy is not None or hook is not None,
                )
            )
        return cls(members, num_kv_heads)

    @property
    def tokens(self) -> list[int]:
        return [member.token for member in self.members]

    @property
    def caches(self) -> "list[KVCache]":
        return [member.cache for member in self.members]

    def build_selector(self) -> BatchSelector | None:
        """Batch selector replicating the looped path's per-request closure.

        Returns ``None`` when no member carries a policy or a hook — the
        model then runs full attention for the whole round, exactly as
        ``decode_step(..., selector=None)`` would per request.
        """
        if not any(member.needs_selector for member in self.members):
            return None
        members = self.members
        num_kv_heads = self.num_kv_heads
        timings = self.timings

        def selector(
            layer_index: int,
            queries: "list[np.ndarray]",
            kvcaches: "list[KVCache]",
        ):
            start = perf_counter()
            raw: list = [None] * len(members)
            for policy_cls, positions in self.policy_groups:
                chosen = policy_cls.select_batch(
                    layer_index,
                    [
                        (members[p].policy, queries[p], kvcaches[p])
                        for p in positions
                    ],
                    timings=timings,
                )
                for p, selection in zip(positions, chosen):
                    raw[p] = selection
            for p, member in enumerate(members):
                if not member.needs_selector:
                    # The looped path passes selector=None for this request:
                    # no selections are recorded, attention is unrestricted.
                    continue
                chosen = raw[p]
                if chosen is None:
                    normalised = None
                    member.attended.append(float(len(kvcaches[p][layer_index])))
                elif isinstance(chosen, (list, tuple)):
                    normalised = [np.asarray(c, dtype=np.int64) for c in chosen]
                    member.attended.append(
                        float(np.mean([c.size for c in normalised]))
                    )
                else:
                    arr = np.asarray(chosen, dtype=np.int64)
                    normalised = [arr] * num_kv_heads
                    member.attended.append(float(arr.size))
                if member.hook is not None:
                    member.hook(layer_index, queries[p], kvcaches[p], normalised)
                member.step_selections.append(normalised)
            timings["select"] = (
                timings.get("select", 0.0) + perf_counter() - start
            )
            return raw

        return selector

    def run_policy_updates(self) -> None:
        """Post-append policy maintenance, fused per policy class.

        The grouped equivalent of calling ``policy.on_decode_step(cache)``
        per request: each class's :meth:`KVCachePolicy.on_decode_step_batch`
        sees all its requests at once (PQCache shares one encode call per
        layer across them).  Wall-clock lands in ``timings["maintenance"]``.
        """
        start = perf_counter()
        for policy_cls, positions in self.policy_groups:
            policy_cls.on_decode_step_batch(
                [
                    (self.members[p].policy, self.members[p].cache)
                    for p in positions
                ]
            )
        self.timings["maintenance"] = (
            self.timings.get("maintenance", 0.0) + perf_counter() - start
        )
