"""Engine-internal per-request mutable state.

:class:`RequestState` is the engine's working record of one submitted
:class:`~repro.serve.Request`: scheduling status, the policy instance, the
(possibly partial) prefill, paged-KV/prefix bookkeeping, swap-preemption
handles, generated tokens, per-step logits/selections, and the request's
:class:`~repro.serve.RequestMetrics`.  It lives in its own module so the
cluster layer (:mod:`repro.serve.cluster`) and the pool-pressure mixin
(:mod:`repro.serve.pressure`) can name it without importing the full engine.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import KVCachePolicy
from ..llm.generation import StepSelections
from ..llm.kvcache import PagedKVCache, SwappedBlocks
from ..llm.model import PrefillResult, PrefillState
from .metrics import RequestMetrics
from .request import Request, RequestStatus

__all__ = ["RequestState"]


class RequestState:
    """Engine-internal mutable state of one request."""

    def __init__(self, request: Request, arrival_time: float, seq: int = 0) -> None:
        self.request = request
        #: submission order — the engine's preemption priority: a request may
        #: only victimise requests submitted after it, which guarantees the
        #: oldest active request always progresses (no preemption livelock).
        self.seq = seq
        self.status = RequestStatus.WAITING
        self.policy: KVCachePolicy | None = None
        self.prefill: PrefillResult | None = None
        self.prefill_state: PrefillState | None = None
        self.chunk_lens: list[int] = []
        self.chunk_seconds: float = 0.0
        self.method: str = "full"
        #: paged-KV state (prefix caching only)
        self.paged: PagedKVCache | None = None
        self.cached_prefix = 0
        self.prefix_acc: list[np.ndarray] | None = None
        self.acc_capture = 0
        #: construction time (refine & friends) extending past the last
        #: compute task — charged after the first token is stamped, since it
        #: only gates the first retrieval (TT2T), not the first token.
        self.construction_tail = 0.0
        #: swap-preemption state: the parked chain handle and the status to
        #: restore once the blocks are swapped back in
        self.swap_handle: SwappedBlocks | None = None
        self.resume_status = RequestStatus.RUNNING
        self.generated: list[int] = []
        self.step_logits: list[np.ndarray] = []
        self.selections: list[StepSelections] = []
        self.num_decoded = 0
        self.finish_reason: str | None = None
        qos_deadline = request.qos.deadline
        #: absolute deadline on the engine's simulated clock, resolved at
        #: submit (arrival + the QoS-relative deadline); ``None`` when the
        #: request carries no deadline.  Part of the scheduler's duck-typed
        #: item protocol (EDF ordering / miss shedding key off it).
        self.deadline_time: float | None = (
            None if qos_deadline is None else arrival_time + float(qos_deadline)
        )
        self.metrics = RequestMetrics(
            arrival_time=arrival_time,
            num_prompt_tokens=len(request.prompt_ids),
            priority=request.qos.priority,
            tenant=request.qos.tenant,
            deadline=self.deadline_time,
        )
        forbidden = np.asarray(request.sampling.forbidden_ids, dtype=np.int64)
        self._forbidden = forbidden
        self._stop_ids = frozenset(request.sampling.stop_token_ids)

    # ------------------------------------------------------------- helpers

    @property
    def forced(self) -> list[int] | None:
        return self.request.forced_decode_ids

    # QoS passthroughs — the scheduler's and pressure ladder's duck-typed
    # protocol (``item.priority`` / ``item.tenant`` / ``item.weight``).

    @property
    def qos(self):
        return self.request.qos

    @property
    def priority(self) -> int:
        return self.request.qos.priority

    @property
    def tenant(self) -> str:
        return self.request.qos.tenant

    @property
    def weight(self) -> float:
        return self.request.qos.weight

    @property
    def finished(self) -> bool:
        return self.status == RequestStatus.FINISHED

    @property
    def remaining_prefill_tokens(self) -> int:
        """Prompt tokens still to prefill (the scheduler's chunk protocol).

        Cache-hit tokens are excluded: a request resumed from a shared
        prefix only demands chunk budget for its divergent suffix.
        """
        if self.prefill is not None or self.request.prefill is not None:
            return 0
        if self.prefill_state is not None:
            return self.prefill_state.remaining_tokens
        return len(self.request.prompt_ids) - self.cached_prefix

    def pick_token(self, logits: np.ndarray) -> int:
        """Masked greedy argmax — the same rule the legacy loop used."""
        if self._forbidden.size:
            logits = logits.copy()
            logits[self._forbidden] = -np.inf
        return int(np.argmax(logits))

    def is_stop(self, token: int) -> bool:
        return token in self._stop_ids

    def next_input_token(self) -> int:
        """Token the next decode round must process."""
        if self.forced is not None:
            return self.forced[self.num_decoded]
        return self.generated[self.num_decoded]

    def stacked_logits(self, vocab_size: int) -> np.ndarray:
        if not self.step_logits:
            return np.zeros((0, vocab_size))
        return np.stack(self.step_logits, axis=0)
