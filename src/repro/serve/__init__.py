"""Request-centric serving engine with continuous batching.

This package is the serving front-end of the reproduction: it turns the
single-sequence policy stack (model substrate + KVCache policies) into an
engine that admits concurrent :class:`Request` objects, interleaves their
decode rounds, streams tokens incrementally, and accounts simulated
wall-clock through the analytical latency models.  With
``enable_prefix_caching=True`` requests draw their KVCache from a shared
paged block pool and the :class:`PrefixCache` reuses common prompt prefixes
— KV blocks, accumulated-score snapshots and PQ artifacts — across requests
(see ``docs/architecture.md``).

Typical use::

    from repro.serve import InferenceEngine, PolicySpec, Request, SamplingParams

    engine = InferenceEngine(model, enable_prefix_caching=True)
    engine.submit(Request(prompt_ids=prompt,
                          sampling=SamplingParams(max_new_tokens=16),
                          policy_spec=PolicySpec.named("pqcache", budget)))
    for output in engine.stream():
        ...  # output.new_token_ids arrive as they are generated
"""

from ..llm.generation import StepSelections
from .cluster import (
    ClusterFrontend,
    ClusterMetrics,
    FingerprintDirectory,
    Placement,
    Router,
    Worker,
)
from .engine import InferenceEngine
from .metrics import EngineMetrics, QoSClassMetrics, QuantileDigest, RequestMetrics
from .prefix_cache import (
    ExportedChain,
    ExportedChainNode,
    PrefixCache,
    PrefixCacheStats,
    PrefixMatch,
    chain_block_keys,
)
from .request import (
    PolicySpec,
    Request,
    RequestOutput,
    RequestQoS,
    RequestStatus,
    SamplingParams,
    SelectionHook,
)
from .scheduler import ContinuousBatchingScheduler, SchedulerConfig, SchedulingDecision
from .slo import SLOTuner

__all__ = [
    "InferenceEngine",
    "ClusterFrontend",
    "ClusterMetrics",
    "FingerprintDirectory",
    "Placement",
    "Router",
    "Worker",
    "EngineMetrics",
    "QoSClassMetrics",
    "QuantileDigest",
    "RequestMetrics",
    "SLOTuner",
    "PrefixCache",
    "PrefixCacheStats",
    "PrefixMatch",
    "ExportedChain",
    "ExportedChainNode",
    "chain_block_keys",
    "PolicySpec",
    "Request",
    "RequestOutput",
    "RequestQoS",
    "RequestStatus",
    "SamplingParams",
    "SelectionHook",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "SchedulingDecision",
    "StepSelections",
]
