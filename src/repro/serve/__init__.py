"""Request-centric serving engine with continuous batching.

This package is the serving front-end of the reproduction: it turns the
single-sequence policy stack (model substrate + KVCache policies) into an
engine that admits concurrent :class:`Request` objects, interleaves their
decode rounds, streams tokens incrementally, and accounts simulated
wall-clock through the analytical latency models.

Typical use::

    from repro.serve import InferenceEngine, PolicySpec, Request, SamplingParams

    engine = InferenceEngine(model)
    engine.submit(Request(prompt_ids=prompt,
                          sampling=SamplingParams(max_new_tokens=16),
                          policy_spec=PolicySpec.named("pqcache", budget)))
    for output in engine.stream():
        ...  # output.new_token_ids arrive as they are generated
"""

from ..llm.generation import StepSelections
from .engine import InferenceEngine
from .metrics import EngineMetrics, RequestMetrics
from .request import (
    PolicySpec,
    Request,
    RequestOutput,
    RequestStatus,
    SamplingParams,
    SelectionHook,
)
from .scheduler import ContinuousBatchingScheduler, SchedulerConfig, SchedulingDecision

__all__ = [
    "InferenceEngine",
    "EngineMetrics",
    "RequestMetrics",
    "PolicySpec",
    "Request",
    "RequestOutput",
    "RequestStatus",
    "SamplingParams",
    "SelectionHook",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "SchedulingDecision",
    "StepSelections",
]
