"""Continuous-batching scheduler.

The scheduler owns the waiting queue and the running batch.  Each engine step
asks it for a :class:`SchedulingDecision`: which waiting requests to admit
(prefill) this step and which running requests get a decode round.  Admission
is FCFS and a request holds its batch slot until it finishes — the classic
continuous-batching discipline (Orca/vLLM style): slots freed by finished
requests are refilled on the very next step instead of waiting for the whole
batch to drain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, List, TypeVar

from ..errors import ConfigurationError

__all__ = ["SchedulerConfig", "SchedulingDecision", "ContinuousBatchingScheduler"]

T = TypeVar("T")


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the continuous-batching scheduler.

    Attributes:
        max_batch_size: maximum concurrently running (decode) requests.
        max_prefills_per_step: admission cap per engine step; prefills are
            long, so bounding them keeps decode rounds of already-running
            requests from starving (vLLM's ``max_num_seqs`` analogue).
    """

    max_batch_size: int = 8
    max_prefills_per_step: int = 2

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.max_prefills_per_step <= 0:
            raise ConfigurationError("max_prefills_per_step must be positive")


@dataclass
class SchedulingDecision(Generic[T]):
    """What one engine step should do.

    Attributes:
        admitted: requests moving waiting → running this step (to prefill).
        decodes: running requests (including just-admitted ones) that get a
            decode round this step.
    """

    admitted: List[T]
    decodes: List[T]


class ContinuousBatchingScheduler(Generic[T]):
    """FCFS admission + run-to-completion batch slots."""

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()
        self._waiting: Deque[T] = deque()
        self._running: List[T] = []

    # ------------------------------------------------------------- queues

    @property
    def num_waiting(self) -> int:
        return len(self._waiting)

    @property
    def num_running(self) -> int:
        return len(self._running)

    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    def submit(self, item: T) -> None:
        """Enqueue a request for admission."""
        self._waiting.append(item)

    def finish(self, item: T) -> None:
        """Release the batch slot of a finished request."""
        self._running.remove(item)

    # ----------------------------------------------------------- schedule

    def schedule(self) -> SchedulingDecision[T]:
        """Admit waiting requests into free slots, then decode the batch."""
        admitted: List[T] = []
        while (
            self._waiting
            and len(self._running) < self.config.max_batch_size
            and len(admitted) < self.config.max_prefills_per_step
        ):
            item = self._waiting.popleft()
            self._running.append(item)
            admitted.append(item)
        return SchedulingDecision(admitted=admitted, decodes=list(self._running))
