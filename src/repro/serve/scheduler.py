"""Continuous-batching scheduler with optional chunked prefill.

The scheduler owns the waiting queue and the running batch.  Each engine step
asks it for a :class:`SchedulingDecision`: which waiting requests to admit,
how many prefill tokens each partially-prefilled request may process this
step, and which running requests get a decode round.  Admission is FCFS and a
request holds its batch slot until it finishes — the classic
continuous-batching discipline (Orca/vLLM style): slots freed by finished
requests are refilled on the very next step instead of waiting for the whole
batch to drain.

Chunked prefill (vLLM-style) is enabled by setting
``max_prefill_chunk_tokens``: instead of prefilling an admitted prompt in one
monolithic step — which head-of-line-blocks every other request for the whole
prompt's makespan — each step hands out at most that many prompt tokens,
split max-min fairly across the batch's ``PREFILLING`` requests (short
prompts complete first, long prompts soak up the leftover budget).  Items
scheduled in chunked mode must expose a ``remaining_prefill_tokens``
attribute (the engine's per-request state does).

The scheduler is storage-agnostic: under the engine's paged-KV/prefix-cache
mode a request's ``remaining_prefill_tokens`` already excludes the tokens
served from the shared-prefix cache, so cache-hit requests demand chunk
budget (and clock) only for their divergent suffix — the scheduler charges
zero prefill work for cache-hit tokens without knowing they exist.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Generic, List, Tuple, TypeVar

from ..errors import ConfigurationError

__all__ = ["SchedulerConfig", "SchedulingDecision", "ContinuousBatchingScheduler"]

T = TypeVar("T")


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the continuous-batching scheduler.

    Attributes:
        max_batch_size: maximum concurrently running (decode) requests.
        max_prefills_per_step: admission cap per engine step; prefills are
            long, so bounding them keeps decode rounds of already-running
            requests from starving (vLLM's ``max_num_seqs`` analogue).
        max_prefill_chunk_tokens: per-step prompt-token budget shared by all
            mid-prefill requests.  ``None`` (the default) disables chunking:
            admitted requests prefill their whole prompt in the admission
            step, exactly like the pre-chunking engine.
        preemption_mode: what happens to a victim's KV when the engine
            preempts it under block-pool pressure.  ``"swap"`` (default)
            copies its blocks to the CPU swap tier and restores them bitwise
            on resume; ``"recompute"`` drops the blocks and re-enqueues the
            request, which re-prefills its prompt and deterministically
            replays its generated tokens on resume (cheaper in memory
            traffic, more compute).  Requests whose policy cannot be rebuilt
            deterministically (``PolicySpec.from_instance``) are swapped
            even in recompute mode.
        victim_policy: which running request is preempted first.  ``"lifo"``
            (default) picks the most recently admitted — the one that has
            wasted the least work, vLLM's default; ``"fifo"`` picks the
            oldest.
    """

    max_batch_size: int = 8
    max_prefills_per_step: int = 2
    max_prefill_chunk_tokens: int | None = None
    preemption_mode: str = "swap"
    victim_policy: str = "lifo"

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.max_prefills_per_step <= 0:
            raise ConfigurationError("max_prefills_per_step must be positive")
        if self.max_prefill_chunk_tokens is not None and self.max_prefill_chunk_tokens <= 0:
            raise ConfigurationError(
                "max_prefill_chunk_tokens must be positive (or None to disable)"
            )
        if self.preemption_mode not in ("swap", "recompute"):
            raise ConfigurationError(
                "preemption_mode must be 'swap' or 'recompute'"
            )
        if self.victim_policy not in ("lifo", "fifo"):
            raise ConfigurationError("victim_policy must be 'lifo' or 'fifo'")

    @property
    def chunked_prefill_enabled(self) -> bool:
        return self.max_prefill_chunk_tokens is not None


@dataclass
class SchedulingDecision(Generic[T]):
    """What one engine step should do.

    Attributes:
        admitted: requests moving waiting → running this step.
        prefill_chunks: ``(request, num_tokens)`` prefill work for this step,
            in processing order (chunked mode only; empty otherwise —
            unchunked admissions prefill their whole prompt).
        decodes: running requests that get a decode round this step.  In
            chunked mode this includes requests whose prefill completes with
            this step's chunk allocation, matching the unchunked behaviour of
            decoding right after admission-prefill.
    """

    admitted: List[T]
    decodes: List[T]
    prefill_chunks: List[Tuple[T, int]] = field(default_factory=list)


class ContinuousBatchingScheduler(Generic[T]):
    """FCFS admission + run-to-completion batch slots."""

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()
        self._waiting: Deque[T] = deque()
        self._running: List[T] = []

    # ------------------------------------------------------------- queues

    @property
    def num_waiting(self) -> int:
        return len(self._waiting)

    @property
    def num_running(self) -> int:
        return len(self._running)

    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    def submit(self, item: T) -> None:
        """Enqueue a request for admission."""
        self._waiting.append(item)

    def finish(self, item: T) -> None:
        """Release the batch slot of a finished request."""
        self._running.remove(item)

    def remove(self, item: T) -> None:
        """Drop a request from whichever queue holds it (abort support)."""
        if item in self._running:
            self._running.remove(item)
        elif item in self._waiting:
            self._waiting.remove(item)
        else:
            raise ConfigurationError("item is not scheduled")

    def contains_running(self, item: T) -> bool:
        """Whether the item currently holds a batch slot."""
        return item in self._running

    def preempt(self, item: T, requeue_front: bool = True) -> None:
        """Move a running request back to the waiting queue.

        Preempted requests go to the *front* of the queue by default so they
        are resumed before newer arrivals (no starvation of victims);
        ``requeue_front=False`` parks the item at the back instead — the
        engine uses that when a resume attempt itself failed for memory, so
        other requests get a chance to finish and free blocks first.
        """
        if item not in self._running:
            raise ConfigurationError("cannot preempt an item that is not running")
        self._running.remove(item)
        if requeue_front:
            self._waiting.appendleft(item)
        else:
            self._waiting.append(item)

    def pick_victim(self, exclude: "tuple[T, ...] | list[T]" = ()) -> T | None:
        """Choose the running request to preempt under pool pressure.

        ``"lifo"`` returns the most recently admitted running request (it
        has the least sunk work), ``"fifo"`` the oldest; items in
        ``exclude`` (typically the request that needs the memory) are never
        chosen.  Returns ``None`` when no running request is eligible.
        """
        order = (
            reversed(self._running)
            if self.config.victim_policy == "lifo"
            else iter(self._running)
        )
        for item in order:
            if all(item is not excluded for excluded in exclude):
                return item
        return None

    # ----------------------------------------------------------- schedule

    @staticmethod
    def _remaining(item: T) -> int:
        """Prefill tokens the item still needs (chunked-mode protocol)."""
        return int(item.remaining_prefill_tokens)  # type: ignore[attr-defined]

    def schedule(self) -> SchedulingDecision[T]:
        """Admit waiting requests into free slots, then plan prefill/decode."""
        admitted: List[T] = []
        while (
            self._waiting
            and len(self._running) < self.config.max_batch_size
            and len(admitted) < self.config.max_prefills_per_step
        ):
            item = self._waiting.popleft()
            self._running.append(item)
            admitted.append(item)

        if not self.config.chunked_prefill_enabled:
            return SchedulingDecision(admitted=admitted, decodes=list(self._running))

        # Chunked mode: split the step's token budget max-min fairly over the
        # partially-prefilled requests.  Smallest demands are served first
        # (fully, when the fair share covers them) so short prompts are never
        # head-of-line-blocked by a long prefill; the leftover budget rolls
        # over to the larger demands.  Ties keep FCFS order (stable sort).
        prefilling = [
            item for item in self._running if self._remaining(item) > 0
        ]
        prefilling.sort(key=self._remaining)
        granted: dict[int, int] = {}
        chunks: List[Tuple[T, int]] = []
        budget = int(self.config.max_prefill_chunk_tokens or 0)
        for index, item in enumerate(prefilling):
            if budget <= 0:
                break
            claimants_left = len(prefilling) - index
            fair_share = -(-budget // claimants_left)  # ceil division
            grant = min(self._remaining(item), fair_share, budget)
            if grant > 0:
                chunks.append((item, grant))
                granted[id(item)] = grant
                budget -= grant

        decodes = [
            item for item in self._running
            if self._remaining(item) - granted.get(id(item), 0) <= 0
        ]
        return SchedulingDecision(
            admitted=admitted, decodes=decodes, prefill_chunks=chunks
        )
