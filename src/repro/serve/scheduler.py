"""Continuous-batching scheduler with optional chunked prefill.

The scheduler owns the waiting queue and the running batch.  Each engine step
asks it for a :class:`SchedulingDecision`: which waiting requests to admit,
how many prefill tokens each partially-prefilled request may process this
step, and which running requests get a decode round.  Admission is FCFS and a
request holds its batch slot until it finishes — the classic
continuous-batching discipline (Orca/vLLM style): slots freed by finished
requests are refilled on the very next step instead of waiting for the whole
batch to drain.

Chunked prefill (vLLM-style) is enabled by setting
``max_prefill_chunk_tokens``: instead of prefilling an admitted prompt in one
monolithic step — which head-of-line-blocks every other request for the whole
prompt's makespan — each step hands out at most that many prompt tokens,
split max-min fairly across the batch's ``PREFILLING`` requests (short
prompts complete first, long prompts soak up the leftover budget).  Items
scheduled in chunked mode must expose a ``remaining_prefill_tokens``
attribute (the engine's per-request state does).

The scheduler is storage-agnostic: under the engine's paged-KV/prefix-cache
mode a request's ``remaining_prefill_tokens`` already excludes the tokens
served from the shared-prefix cache, so cache-hit requests demand chunk
budget (and clock) only for their divergent suffix — the scheduler charges
zero prefill work for cache-hit tokens without knowing they exist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

from ..errors import ConfigurationError

__all__ = ["SchedulerConfig", "SchedulingDecision", "ContinuousBatchingScheduler"]

T = TypeVar("T")


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the continuous-batching scheduler.

    Attributes:
        max_batch_size: maximum concurrently running (decode) requests.
        max_prefills_per_step: admission cap per engine step; prefills are
            long, so bounding them keeps decode rounds of already-running
            requests from starving (vLLM's ``max_num_seqs`` analogue).
        max_prefill_chunk_tokens: per-step prompt-token budget shared by all
            mid-prefill requests.  ``None`` (the default) disables chunking:
            admitted requests prefill their whole prompt in the admission
            step, exactly like the pre-chunking engine.
        preemption_mode: what happens to a victim's KV when the engine
            preempts it under block-pool pressure.  ``"swap"`` (default)
            copies its blocks to the CPU swap tier and restores them bitwise
            on resume; ``"recompute"`` drops the blocks and re-enqueues the
            request, which re-prefills its prompt and deterministically
            replays its generated tokens on resume (cheaper in memory
            traffic, more compute).  Requests whose policy cannot be rebuilt
            deterministically (``PolicySpec.from_instance``) are swapped
            even in recompute mode.
        victim_policy: which running request is preempted first.  ``"lifo"``
            (default) picks the most recently admitted — the one that has
            wasted the least work, vLLM's default; ``"fifo"`` picks the
            oldest.  With QoS-tagged traffic the policy only breaks ties
            *within* a priority class: victims always come from the lowest
            running class first.
        max_waiting: admission-control cap on the waiting queue.  ``None``
            (default) never sheds; with a cap, a submit that would overflow
            the queue sheds the lowest-ranked never-admitted waiting request
            (lowest priority class, newest within it) with
            ``finish_reason="shed"``.
        shed_infeasible: shed a request at submit when it is *provably*
            infeasible — its prompt alone needs more KV blocks than the
            whole pool holds, so no schedule could ever complete it.  Off by
            default: the pre-QoS contract is a ``CapacityError`` when such a
            request reaches the head of the queue.
        proactive_swap_free_fraction: when the free fraction of the block
            pool drops below this threshold at the start of a step and
            higher-priority work is waiting, the engine proactively swaps
            out the lowest-priority running requests before admission
            instead of waiting for a reactive preemption mid-allocation.
            ``None`` (default) disables proactive swap-out.  This value is
            the *baseline*: the engine copies it to a mutable
            ``proactive_swap_free_fraction`` attribute that the opt-in SLO
            tuner (:class:`~repro.serve.SLOTuner`) may move at runtime.
        shed_missed_deadlines: shed deadline-tagged requests that cannot
            meet their deadline — at submit when the deadline is *provably*
            unmeetable (the prefill-compute lower bound of the prompt alone
            exceeds the relative deadline) and mid-wait when the simulated
            clock passes the resolved deadline while the request is still
            waiting for admission — with ``finish_reason="deadline"``.  On
            by default; requests without a deadline are never affected.
            Turning it off keeps EDF ordering but completes every request
            (useful for A/B ordering comparisons).
    """

    max_batch_size: int = 8
    max_prefills_per_step: int = 2
    max_prefill_chunk_tokens: int | None = None
    preemption_mode: str = "swap"
    victim_policy: str = "lifo"
    max_waiting: int | None = None
    shed_infeasible: bool = False
    proactive_swap_free_fraction: float | None = None
    shed_missed_deadlines: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.max_prefills_per_step <= 0:
            raise ConfigurationError("max_prefills_per_step must be positive")
        if self.max_prefill_chunk_tokens is not None and self.max_prefill_chunk_tokens <= 0:
            raise ConfigurationError(
                "max_prefill_chunk_tokens must be positive (or None to disable)"
            )
        if self.preemption_mode not in ("swap", "recompute"):
            raise ConfigurationError(
                "preemption_mode must be 'swap' or 'recompute'"
            )
        if self.victim_policy not in ("lifo", "fifo"):
            raise ConfigurationError("victim_policy must be 'lifo' or 'fifo'")
        if self.max_waiting is not None and self.max_waiting <= 0:
            raise ConfigurationError(
                "max_waiting must be positive (or None to disable shedding)"
            )
        if self.proactive_swap_free_fraction is not None and not (
            0.0 < self.proactive_swap_free_fraction <= 1.0
        ):
            raise ConfigurationError(
                "proactive_swap_free_fraction must be in (0, 1] (or None)"
            )

    @property
    def chunked_prefill_enabled(self) -> bool:
        return self.max_prefill_chunk_tokens is not None


@dataclass
class SchedulingDecision(Generic[T]):
    """What one engine step should do.

    Attributes:
        admitted: requests moving waiting → running this step.
        prefill_chunks: ``(request, num_tokens)`` prefill work for this step,
            in processing order (chunked mode only; empty otherwise —
            unchunked admissions prefill their whole prompt).
        decodes: running requests that get a decode round this step.  In
            chunked mode this includes requests whose prefill completes with
            this step's chunk allocation, matching the unchunked behaviour of
            decoding right after admission-prefill.
    """

    admitted: List[T]
    decodes: List[T]
    prefill_chunks: List[Tuple[T, int]] = field(default_factory=list)


class ContinuousBatchingScheduler(Generic[T]):
    """Priority-ordered admission + run-to-completion batch slots.

    Scheduled items may expose optional QoS attributes — ``priority`` (int,
    higher admits first), ``tenant`` (str, weighted-fair chunk-budget
    grouping), ``weight`` (float, the tenant's share), ``seq`` (submission
    order) and ``deadline_time`` (absolute simulated-clock deadline, EDF
    ordering within the class) — all defaulting to a single best-effort
    deadline-less class, in which case every code path below reduces
    exactly to the pre-QoS FCFS scheduler.
    """

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()
        self._waiting: List[T] = []
        self._running: List[T] = []
        #: per-tenant weight overrides consulted ahead of the items' own
        #: declared weights — the SLO tuner's handle on the weighted-fair
        #: chunk split (requests' frozen QoS declarations stay untouched)
        self.tenant_weights: dict[str, float] = {}

    # --------------------------------------------------- QoS item protocol

    @staticmethod
    def _priority(item: T) -> int:
        return int(getattr(item, "priority", 0))

    @staticmethod
    def _tenant(item: T) -> str:
        return str(getattr(item, "tenant", "default"))

    def _weight(self, item: T) -> float:
        override = self.tenant_weights.get(self._tenant(item))
        if override is not None:
            return float(override)
        return float(getattr(item, "weight", 1.0))

    @staticmethod
    def _seq(item: T) -> int:
        return int(getattr(item, "seq", 0))

    @staticmethod
    def _deadline(item: T) -> "float | None":
        value = getattr(item, "deadline_time", None)
        return None if value is None else float(value)

    # ------------------------------------------------------------- queues

    @property
    def num_waiting(self) -> int:
        return len(self._waiting)

    @property
    def num_running(self) -> int:
        return len(self._running)

    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    def waiting_items(self) -> tuple[T, ...]:
        """The waiting queue in admission order (highest class first)."""
        return tuple(self._waiting)

    def running_items(self) -> tuple[T, ...]:
        """The running batch in admission order."""
        return tuple(self._running)

    def _insert_waiting(self, item: T, front_of_class: bool) -> None:
        """Insert keeping the queue sorted by priority (descending), EDF
        within each class.

        Within a priority class, deadline-tagged items come first in
        earliest-deadline order; items without a deadline form the FCFS
        tail of the class — so untagged traffic keeps PR 9's per-class
        age-rule liveness argument verbatim, and with no deadlines at all
        this degenerates to plain append / appendleft.  Among equal ranks
        (same deadline, or both untagged) new submissions go to the *back*
        (FCFS), resumed preemption victims to the *front* (they re-admit
        before newer equal-ranked arrivals).
        """
        p = self._priority(item)
        d = self._deadline(item)

        def belongs_before(existing: T) -> bool:
            ep = self._priority(existing)
            if ep != p:
                return ep < p
            ed = self._deadline(existing)
            if d is None:
                # untagged: after every deadline-tagged item of the class
                return ed is None and front_of_class
            if ed is None:
                return True
            if d != ed:
                return d < ed
            return front_of_class

        idx = 0
        while idx < len(self._waiting) and not belongs_before(self._waiting[idx]):
            idx += 1
        self._waiting.insert(idx, item)

    def submit(self, item: T) -> None:
        """Enqueue a request for admission (priority-ordered, EDF-then-FCFS
        within the class)."""
        self._insert_waiting(item, front_of_class=False)

    def lowest_ranked_waiting(
        self, eligible: "Optional[Callable[[T], bool]]" = None
    ) -> T | None:
        """The waiting item admission values *least* — the shedding victim.

        Lowest priority class; newest (highest ``seq``) within it.  This is
        the single shed-victim ranking shared by every shed path: the
        engine's ``max_waiting`` overflow and deadline sweeps both rank
        through here.  ``eligible`` filters the candidates — the engine
        passes a never-admitted predicate so re-queued preemption victims
        (which already hold generated tokens) are never chosen.
        """
        candidates = (
            self._waiting
            if eligible is None
            else [item for item in self._waiting if eligible(item)]
        )
        if not candidates:
            return None
        return min(candidates, key=lambda it: (self._priority(it), -self._seq(it)))

    def finish(self, item: T) -> None:
        """Release the batch slot of a finished request."""
        self._running.remove(item)

    def remove(self, item: T) -> None:
        """Drop a request from whichever queue holds it (abort support)."""
        if not self.discard(item):
            raise ConfigurationError("item is not scheduled")

    def discard(self, item: T) -> bool:
        """:meth:`remove` that tolerates an already-departed item.

        Returns whether the item was scheduled — the engine's idempotent
        abort path uses this so aborting a request that lost a same-step
        race against a shed or finish stays a no-op.
        """
        if item in self._running:
            self._running.remove(item)
            return True
        if item in self._waiting:
            self._waiting.remove(item)
            return True
        return False

    def contains_running(self, item: T) -> bool:
        """Whether the item currently holds a batch slot."""
        return item in self._running

    def preempt(self, item: T, requeue_front: bool = True) -> None:
        """Move a running request back to the waiting queue.

        Preempted requests go to the *front of their priority class* by
        default so they are resumed before newer same-class arrivals (no
        starvation of victims); ``requeue_front=False`` parks the item at
        the back of its class instead — the engine uses that when a resume
        attempt itself failed for memory, so other requests get a chance to
        finish and free blocks first.
        """
        if item not in self._running:
            raise ConfigurationError("cannot preempt an item that is not running")
        self._running.remove(item)
        self._insert_waiting(item, front_of_class=requeue_front)

    def pick_victim(self, exclude: "tuple[T, ...] | list[T]" = ()) -> T | None:
        """Choose the running request to preempt under pool pressure.

        Victims come from the lowest running priority class first (no
        cross-class inversion: a class never bleeds for a lower one); the
        configured ``victim_policy`` breaks ties within the class —
        ``"lifo"`` prefers the most recently admitted (least sunk work,
        vLLM's default), ``"fifo"`` the oldest.  Items in ``exclude``
        (typically the request that needs the memory) are never chosen.
        Returns ``None`` when no running request is eligible.
        """
        order = (
            reversed(self._running)
            if self.config.victim_policy == "lifo"
            else iter(self._running)
        )
        best: T | None = None
        for item in order:
            if any(item is excluded for excluded in exclude):
                continue
            if best is None or self._priority(item) < self._priority(best):
                best = item
        return best

    # ----------------------------------------------------------- schedule

    @staticmethod
    def _remaining(item: T) -> int:
        """Prefill tokens the item still needs (chunked-mode protocol)."""
        return int(item.remaining_prefill_tokens)  # type: ignore[attr-defined]

    def _grant_max_min(
        self,
        items: List[T],
        budget: int,
        chunks: List[Tuple[T, int]],
        granted: dict,
    ) -> int:
        """Max-min (water-filling) split of ``budget`` over ``items``.

        Smallest demands are served first (fully, when the fair share covers
        them) so short prompts are never head-of-line-blocked by a long
        prefill; the leftover budget rolls over to the larger demands.  Ties
        keep FCFS order (stable sort).  Returns the tokens actually granted.
        """
        items = sorted(items, key=self._remaining)
        used = 0
        for index, item in enumerate(items):
            if budget <= 0:
                break
            claimants_left = len(items) - index
            fair_share = -(-budget // claimants_left)  # ceil division
            grant = min(self._remaining(item), fair_share, budget)
            if grant > 0:
                chunks.append((item, grant))
                granted[id(item)] = grant
                budget -= grant
                used += grant
        return used

    def schedule(self) -> SchedulingDecision[T]:
        """Admit waiting requests into free slots, then plan prefill/decode."""
        admitted: List[T] = []
        while (
            self._waiting
            and len(self._running) < self.config.max_batch_size
            and len(admitted) < self.config.max_prefills_per_step
        ):
            item = self._waiting.pop(0)
            self._running.append(item)
            admitted.append(item)

        if not self.config.chunked_prefill_enabled:
            return SchedulingDecision(admitted=admitted, decodes=list(self._running))

        # Chunked mode: split the step's token budget weighted-fair across
        # tenants (each tenant's share is proportional to its declared
        # weight), then max-min fairly over each tenant's own
        # partially-prefilled requests.  With a single tenant — in
        # particular with untagged traffic — this is byte-for-byte the
        # plain max-min split the pre-QoS scheduler ran.
        prefilling = [item for item in self._running if self._remaining(item) > 0]
        granted: dict = {}
        chunks: List[Tuple[T, int]] = []
        budget = int(self.config.max_prefill_chunk_tokens or 0)

        tenants: dict[str, List[T]] = {}
        for item in prefilling:
            tenants.setdefault(self._tenant(item), []).append(item)

        if len(tenants) <= 1:
            self._grant_max_min(prefilling, budget, chunks, granted)
        else:
            # Water-filling over tenants: serve the tenant with the smallest
            # demand-per-weight first, granting it ceil(budget * w / W) of
            # the remaining budget; a tenant that cannot use its share rolls
            # the leftover over to the hungrier tenants.
            weights = {
                name: max(self._weight(item) for item in members)
                for name, members in tenants.items()
            }
            demands = {
                name: sum(self._remaining(item) for item in members)
                for name, members in tenants.items()
            }
            order = sorted(tenants, key=lambda n: (demands[n] / weights[n], n))
            total_weight = sum(weights.values())
            for name in order:
                if budget <= 0:
                    break
                fair = math.ceil(budget * weights[name] / total_weight)
                share = min(demands[name], fair, budget)
                used = self._grant_max_min(tenants[name], share, chunks, granted)
                budget -= used
                total_weight -= weights[name]

        decodes = [
            item for item in self._running
            if self._remaining(item) - granted.get(id(item), 0) <= 0
        ]
        return SchedulingDecision(
            admitted=admitted, decodes=decodes, prefill_chunks=chunks
        )
