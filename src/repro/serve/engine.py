"""The request-centric inference engine.

:class:`InferenceEngine` is the serving front-end of the reproduction: it
accepts :class:`~repro.serve.Request` objects, runs a continuous-batching
loop (admit → prefill → interleaved decode rounds → finish/evict) over the
shared :class:`~repro.llm.TransformerLM`, instantiates one KVCache policy per
request from its :class:`~repro.serve.PolicySpec`, and emits
:class:`~repro.serve.RequestOutput` objects with incrementally streamed
tokens plus per-request serving metrics.

Decode math is *identical* to the legacy single-sequence loop: each request
owns its prefill/KVCache and its policy, and tokens are picked by masked
argmax — so a batched run produces byte-identical tokens to sequential
:func:`repro.llm.greedy_generate` calls (which is itself a thin wrapper over
a one-request engine).

The decode hot path is fused across *requests* as well as KV heads: by
default one engine step issues one :meth:`TransformerLM.decode_step_batch`
round over every ``RUNNING`` request (planned by
:class:`~repro.serve.decode_batch.DecodeBatch`).  The round's dense ops pack
all requests' token rows into the model's fixed-shape decode blocks — each
weight matrix streams once per round instead of once per request — and
policy selection dispatches per policy class to cross-request batch kernels:
ADC scoring/top-k (:func:`~repro.core.pqcache.topk_middle_grouped`), grouped
PQ encoding (:func:`~repro.core.pqcache.append_tokens_grouped`), grouped
sort-dedup assembly for the dropping baselines, and length-grouped einsum
attention over ``(request, kv_head)`` entries.  The fused round is
byte-identical to the per-request loop
(tokens, logits, selections, simulated clock and counters);
``decode_batching=False`` keeps the per-request loop as an escape hatch,
and a round whose block reservations might need the pool-pressure ladder
(evictions/preemptions) falls back to it automatically.

Prefilling runs in one of two modes.  By default an admitted request
prefills its whole prompt during the admission step (monolithic).  With
``SchedulerConfig.max_prefill_chunk_tokens`` set, prefill is *chunked*: each
step processes at most that many prompt tokens, split fairly across the
batch's ``PREFILLING`` requests via :meth:`TransformerLM.prefill_chunk`, so a
16k-token prompt no longer head-of-line-blocks a short prompt's TTFT.  The
clock is charged per chunk (GPU compute of the chunk), with the residual of
the overlapped construction timeline
(:meth:`~repro.memory.LatencyModel.chunked_prefill_timeline`) settled at
completion; policies that support it (PQCache) build their state
incrementally from the same chunks (sketch fit → stream encode → refine).
Chunked and monolithic prefill produce bitwise-identical model outputs.

Paged KV and the shared-prefix cache
------------------------------------
With ``enable_prefix_caching=True`` every request's KVCache is a
:class:`~repro.llm.kvcache.PagedKVCache` drawing fixed-size token blocks from
a shared refcounted :class:`~repro.llm.kvcache.BlockAllocator`, and a
:class:`~repro.serve.PrefixCache` hash-matches each incoming prompt against
previously served block chains.  On a hit the matched blocks are attached
copy-on-write, prefill resumes from the first divergent token
(:meth:`TransformerLM.begin_prefill` with ``prefix_len``), reusable PQ
artifacts (sketch codebooks + codes) are adopted by reference through the
policy's ``attach_prefix`` hook, and the simulated clock charges **zero**
prefill or clustering cost for the cache-hit tokens.  Decode outputs are
byte-identical between the cache-hit and cold paths: the reused keys/values
are the exact arrays an earlier request computed, resumed reductions are
strictly-sequential continuations of snapshotted state, and policies whose
selection depends on prefill aggregates only reuse up to a boundary where
those aggregates were snapshotted exactly
(``KVCachePolicy.needs_prefill_aggregates``).

Preemption and tiered KV under pool pressure
--------------------------------------------
With a *bounded* block pool (``kv_pool_blocks``) the engine degrades
gracefully instead of failing: before any allocation-bearing step (a prefill
chunk, a decode append, a swap-in) it reserves the blocks that step will
write.  When the pool cannot supply them it first asks the prefix cache to
evict — which, with the disk spill tier, demotes cold chains to NVMe instead
of dropping them — and then *preempts* a victim request
(``SchedulerConfig.victim_policy``, LIFO by default).  Two victim fates
exist (``SchedulerConfig.preemption_mode``):

* ``"swap"`` — the victim's blocks are copied to the CPU tier of the
  :class:`~repro.llm.kvcache.SwapSpace` (cold entries cascade to disk), the
  pool blocks are freed, and on re-admission the chain is restored bitwise
  and decoding continues exactly where it stopped.
* ``"recompute"`` — the victim's blocks are dropped and the request is
  re-enqueued; on re-admission it re-prefills its prompt through the normal
  resumable-prefill machinery (often a prefix-cache hit on its own earlier
  chain) and *replays* its already-generated tokens through the ordinary
  decode path.  Because every stage is deterministic, the replayed logits,
  selections and subsequent tokens are byte-identical to an uninterrupted
  run; replayed tokens are not re-emitted or re-counted.

Swap and spill traffic is charged to the simulated clock as
dependency-linked PCIe/NVMe transfers
(:meth:`~repro.memory.LatencyModel.swap_out_timeline` /
:meth:`~repro.memory.LatencyModel.swap_in_timeline`) and surfaces in
:class:`~repro.serve.EngineMetrics` (``swap_*``/``spill_*`` counters), so
TTFT/TPOT honestly reflect pool pressure.  A :class:`CapacityError` is
raised only when a request's demand exceeds what the pool can offer even
with every other request preempted and every cold chain spilled.

Wall-clock is *simulated*: the engine advances a clock using the analytical
:class:`~repro.memory.LatencyModel` (prefill makespans and per-step TPOT for
the request's method profile), so TTFT/TPOT/throughput come out in the
paper's hardware terms even though the substrate runs in NumPy.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..baselines.base import KVCachePolicy
from ..errors import ConfigurationError
from ..llm.generation import StepSelections
from ..llm.kvcache import (
    BlockAllocator,
    BlockTable,
    KVCache,
    PagedKVCache,
    SwapSpace,
)
from ..llm.kvcodec import KVBlockCodec, get_codec
from ..llm.model import PrefillResult, PrefillState, TransformerLM
from ..memory.devices import HardwareSpec
from ..memory.latency import LatencyModel, resolve_method
from .decode_batch import DecodeBatch
from .metrics import EngineMetrics
from .prefix_cache import PrefixCache
from .pressure import PoolPressureMixin
from .request import Request, RequestOutput, RequestStatus
from .scheduler import ContinuousBatchingScheduler, SchedulerConfig
from .slo import SLOTuner
from .state import RequestState

__all__ = ["InferenceEngine"]

#: backwards-compatible alias — the state class moved to :mod:`.state`
_RequestState = RequestState


class InferenceEngine(PoolPressureMixin):
    """Continuous-batching serving engine over the PQCache policy stack.

    Args:
        model: shared transformer substrate (stateless across requests —
            every request owns its KVCache through its prefill result).
        scheduler_config: batching knobs; defaults to an 8-slot batch.
        latency_model: analytical model driving the simulated clock; when
            ``None`` one is built from ``hardware`` (default: the paper's
            RTX 4090 + PCIe 1.0 testbed) and the substrate's geometry.
        hardware: hardware spec for the default latency model.
        max_retained_outputs: retention bound on finished outputs.
        enable_prefix_caching: allocate every request's KVCache from a shared
            paged block pool and reuse matching prompt prefixes (KV blocks,
            accumulated-score snapshots, PQ artifacts) across requests.
        kv_block_size: tokens per KV block (prefix granularity).
        kv_pool_blocks: bound on the block pool; ``None`` grows on demand.
            When the pool runs dry the engine first evicts/spills cold
            prefix-cache chains, then preempts running requests
            (``SchedulerConfig.preemption_mode``); a pool that cannot serve
            a request even with everything else preempted raises
            :class:`~repro.errors.CapacityError`.
        swap_cpu_blocks: capacity (in blocks) of the CPU swap tier backing
            swap-preemption; ``None`` (default) is unbounded.  When the CPU
            tier fills, its oldest parked chains demote to the disk tier.
        swap_disk_blocks: capacity of the disk tier (swap overflow + prefix
            spill); ``None`` is unbounded.
        enable_disk_spill: spill cold evicted prefix-cache chains (KV blocks
            plus their PQ-snapshot/aggregate payloads) to the disk tier
            instead of freeing them, restoring them bitwise on later hits.
            PQ codes are ~1/64th the KV bytes, so snapshot spill is nearly
            free.  Only meaningful with ``enable_prefix_caching``.
        kv_swap_codec: KV block codec (name or
            :class:`~repro.llm.kvcodec.KVBlockCodec` instance) applied on
            every downward tier transition the byte-identity invariant
            covers: preemption swap-out and CPU→disk demotion.  Must be
            lossless (``"raw"`` or the default ``"byteplane"``); transfers
            are billed at the encoded *wire* size with the codec's CPU
            stages on the timeline, while the ``swap_*_bytes`` metrics keep
            counting logical bytes.
        kv_spill_codec: codec for cold prefix chains spilled to the disk
            tier; defaults to ``kv_swap_codec``.  This is the opt-in lossy
            surface: ``"int8"``/``"int4"``/``"int4-outlier"`` trade exact
            restores on spilled-chain cache hits for NVMe bandwidth, within
            the codec's declared per-element error bound.
        decode_batching: run each engine step's decode phase as one *fused*
            multi-request round (:meth:`TransformerLM.decode_step_batch` over
            a :class:`~repro.serve.decode_batch.DecodeBatch` plan) instead of
            one :meth:`TransformerLM.decode_step` call per request.  The
            fused round is byte-identical to the per-request loop; ``False``
            restores the loop, and rounds whose block reservations might
            trigger the pool-pressure ladder fall back to it automatically.
        cache_decoded_blocks: also cache the blocks a request fills while
            *decoding*, so a follow-up turn embedding the answer reuses them.
            **Approximate reuse — off by default**: decoded tokens' KV was
            computed through the decode kernel under the request's (possibly
            sparse) attention policy, so it is not bitwise equal to what a
            cold full-attention prefill of the same tokens would produce;
            enabling this trades the byte-identity guarantee on the decoded
            region for a higher hit rate (prompt-region reuse stays exact).
        slo_tuner: opt-in SLO feedback loop (:class:`~repro.serve.SLOTuner`).
            The tuner observes finished requests and, every few steps,
            compares each targeted class's windowed TTFT quantile against
            its target, nudging the live proactive swap-out threshold and
            the scheduler's tenant-weight overrides.  Scheduling-only, like
            every QoS knob: tokens and logits stay byte-identical.
    """

    def __init__(
        self,
        model: TransformerLM,
        scheduler_config: SchedulerConfig | None = None,
        latency_model: LatencyModel | None = None,
        hardware: HardwareSpec | None = None,
        max_retained_outputs: int | None = None,
        enable_prefix_caching: bool = False,
        kv_block_size: int = 64,
        kv_pool_blocks: int | None = None,
        cache_decoded_blocks: bool = False,
        swap_cpu_blocks: int | None = None,
        swap_disk_blocks: int | None = None,
        enable_disk_spill: bool = True,
        decode_batching: bool = True,
        kv_swap_codec: "str | KVBlockCodec | None" = "byteplane",
        kv_spill_codec: "str | KVBlockCodec | None" = None,
        slo_tuner: "SLOTuner | None" = None,
    ) -> None:
        self.model = model
        self.decode_batching = decode_batching
        self.scheduler: ContinuousBatchingScheduler[RequestState] = (
            ContinuousBatchingScheduler(scheduler_config)
        )
        self.latency = latency_model or LatencyModel(
            hardware or HardwareSpec.paper_testbed(), model.config
        )
        self.metrics = EngineMetrics()
        #: live proactive swap-out threshold, seeded from the scheduler
        #: config; mutable so the opt-in SLO feedback loop can move it at
        #: runtime without thawing the frozen config (scheduling-only: it
        #: never changes what any request computes)
        self.proactive_swap_free_fraction = (
            self.scheduler.config.proactive_swap_free_fraction
        )
        #: opt-in SLO feedback loop (see :class:`~repro.serve.SLOTuner`):
        #: observes finished requests and nudges the proactive threshold /
        #: tenant weights toward the configured per-class TTFT targets
        self.slo_tuner = slo_tuner
        #: oldest finished outputs (which pin their request's KVCache and
        #: per-step logits) are evicted beyond this count; ``None`` retains
        #: everything — fine for batch jobs, set a bound for long-lived
        #: serving loops or call :meth:`release` per request.  Under a
        #: *bounded* pool, retained outputs do not block progress either
        #: way: their pool references are reclaimed automatically under
        #: pressure (the outputs stay readable via the assembled mirrors).
        self.max_retained_outputs = max_retained_outputs
        self.block_allocator: BlockAllocator | None = None
        self.prefix_cache: PrefixCache | None = None
        self.swap_space: SwapSpace | None = None
        self.kv_swap_codec: KVBlockCodec | None = None
        self.kv_spill_codec: KVBlockCodec | None = None
        self.cache_decoded_blocks = cache_decoded_blocks
        #: prefix-cache spill counters already charged to the clock (the
        #: spill/restore work happens inside eviction hooks and lookups, so
        #: the engine settles its transfer time from stat deltas)
        self._spill_settled = {"out_blocks": 0, "in_blocks": 0,
                               "out_payload": 0, "in_payload": 0,
                               "out_wire": 0, "in_wire": 0}
        if enable_prefix_caching:
            config = model.config
            swap_codec = get_codec(kv_swap_codec, config.dtype_bytes)
            if not swap_codec.lossless:
                raise ConfigurationError(
                    f"kv_swap_codec {swap_codec.name!r} is lossy: preemption "
                    "swap and CPU→disk demotion must restore bitwise (the "
                    "byte-identity invariant) — lossy codecs are only "
                    "allowed on spilled prefix chains (kv_spill_codec) and "
                    "migration"
                )
            spill_codec = (
                get_codec(kv_spill_codec, config.dtype_bytes)
                if kv_spill_codec is not None else swap_codec
            )
            self.kv_swap_codec = swap_codec
            self.kv_spill_codec = spill_codec
            self.block_allocator = BlockAllocator(
                config.num_layers,
                config.num_kv_heads,
                config.head_dim,
                block_size=kv_block_size,
                capacity_blocks=kv_pool_blocks,
                dtype_bytes=config.dtype_bytes,
            )
            self.swap_space = SwapSpace(
                cpu_capacity_blocks=swap_cpu_blocks,
                disk_capacity_blocks=swap_disk_blocks,
                codec=swap_codec,
            )
            self.prefix_cache = PrefixCache(
                self.block_allocator,
                spill_store=self.swap_space if enable_disk_spill else None,
                spill_codec=spill_codec,
            )
            self.block_allocator.eviction_hook = self.prefix_cache.evict
        self._states: dict[str, RequestState] = {}
        self._seen_ids: set[str] = set()
        self._final_outputs: dict[str, RequestOutput] = {}
        #: shed-at-submit finals awaiting delivery through the next step()
        #: (so run()/stream() observe them like any other finished output)
        self._pending_shed_outputs: list[RequestOutput] = []
        #: opt-in preemption witness: assign a list and every successful
        #: claimant→victim preemption appends ``(claimant_priority,
        #: claimant_seq, victim_priority, victim_seq)`` — the QoS fuzz
        #: suite's no-priority-inversion / within-class-age-rule oracle.
        self.victim_log: list[tuple[int, int, int, int]] | None = None

    # ------------------------------------------------------------- intake

    def submit(self, request: Request) -> str:
        """Queue a request for admission; returns its id."""
        if request.request_id in self._seen_ids:
            raise ConfigurationError(
                f"duplicate request id {request.request_id!r}"
            )
        state = RequestState(
            request,
            arrival_time=self.metrics.clock,
            seq=self.metrics.requests_submitted,
        )
        self._seen_ids.add(request.request_id)
        self._states[request.request_id] = state
        self.scheduler.submit(state)
        self.metrics.requests_submitted += 1
        self.metrics.class_bucket(state.priority).requests_submitted += 1
        self.metrics.tenant_bucket(state.tenant).requests_submitted += 1
        self._admission_control(state)
        return request.request_id

    #: never-admitted predicate for shed-victim ranking — re-queued
    #: preemption victims already hold generated tokens and are never shed
    @staticmethod
    def _never_admitted(item: RequestState) -> bool:
        return item.status is RequestStatus.WAITING

    def min_ttft_lower_bound(self, num_prompt_tokens: int) -> float:
        """Provable lower bound on the uncontended TTFT of a prompt.

        The bound is the GPU prefill compute alone: every serving method
        must run the prompt through all layers before the first token, the
        layers chain sequentially on the prefill timeline, and chunked
        prefill's per-chunk FLOPs telescope to at least the monolithic
        total — offload, clustering, and queueing only add to it.  With
        prefix caching enabled a full-prefix hit could serve all but one
        token from cached blocks, so the provable bound shrinks to the
        one-token suffix and admission-time deadline shedding effectively
        defers to the mid-wait clock sweep.
        """
        if self.prefix_cache is not None:
            num_prompt_tokens = 1
        return (
            self.latency.layer_prefill_compute_seconds(num_prompt_tokens)
            * self.model.config.num_layers
        )

    def _admission_control(self, state: RequestState) -> None:
        """Apply the opt-in load-shedding rules to a just-submitted request.

        ``shed_missed_deadlines`` sheds a deadline-tagged request whose
        deadline is *provably* unmeetable — :meth:`min_ttft_lower_bound` of
        its prompt alone exceeds the relative deadline, so even an idle
        engine could not produce the first token in time
        (``finish_reason="deadline"``).  ``shed_infeasible`` sheds a
        request whose *prompt alone* needs more
        pool blocks than the whole pool holds — no schedule could ever
        complete it, so failing fast beats a guaranteed
        :class:`CapacityError` later.  ``max_waiting`` bounds the waiting
        queue: on overflow the lowest-ranked *never-admitted* waiting
        request (lowest priority class, newest within it — possibly the
        incoming one itself) is shed; preemption victims re-queued for
        resume are never shed, they already hold generated tokens.
        """
        config = self.scheduler.config
        if (
            config.shed_missed_deadlines
            and state.request.qos.deadline is not None
            and self.min_ttft_lower_bound(len(state.request.prompt_ids))
            > state.request.qos.deadline
        ):
            self._shed(state, reason="deadline")
            return
        if (
            config.shed_infeasible
            and self.block_allocator is not None
            and self.block_allocator.capacity_blocks is not None
        ):
            block = self.block_allocator.block_size
            needed = -(-len(state.request.prompt_ids) // block)
            if needed > self.block_allocator.capacity_blocks:
                self._shed(state)
                return
        if (
            config.max_waiting is not None
            and self.scheduler.num_waiting > config.max_waiting
        ):
            victim = self.scheduler.lowest_ranked_waiting(self._never_admitted)
            if victim is not None:
                self._shed(victim)

    def _shed_missed_deadlines(self) -> int:
        """Shed never-admitted waiting requests whose deadline has passed.

        Runs at the start of every step: a request still ``WAITING`` (never
        admitted — re-queued preemption victims hold generated tokens and
        are never shed) whose resolved deadline lies strictly behind the
        simulated clock can no longer meet it, so it finishes immediately
        with ``finish_reason="deadline"`` instead of burning prefill
        compute on an already-lost SLO.  Returns the number shed.
        """
        if not self.scheduler.config.shed_missed_deadlines:
            return 0
        clock = self.metrics.clock
        expired = [
            item
            for item in self.scheduler.waiting_items()
            if self._never_admitted(item)
            and item.deadline_time is not None
            and clock > item.deadline_time
        ]
        for state in expired:
            self._shed(state, reason="deadline")
        return len(expired)

    def _shed(self, state: RequestState, reason: str = "shed") -> RequestOutput:
        """Refuse a waiting request (``finish_reason="shed"`` for load
        shedding, ``"deadline"`` for a missed or unmeetable deadline).

        Shed requests have never been admitted, so they hold no pool blocks,
        swap handles, or policy state — only their queue slot and state
        entry are dropped.  The final output is delivered through the next
        :meth:`step` so streaming consumers observe it.
        """
        self.scheduler.remove(state)
        self._finish(state, reason)
        output = self._make_output(state, [])
        del self._states[state.request.request_id]
        self._final_outputs[state.request.request_id] = output
        self.metrics.requests_shed += 1
        self._record_qos_finish(state, "requests_shed")
        if reason == "deadline":
            self.metrics.deadline_misses += 1
            self.metrics.class_bucket(state.priority).deadline_misses += 1
            self.metrics.tenant_bucket(state.tenant).deadline_misses += 1
        self._pending_shed_outputs.append(output)
        self._trim_retained_outputs()
        return output

    #: alias matching the common serving-engine vocabulary
    add_request = submit

    @property
    def has_unfinished(self) -> bool:
        return self.scheduler.has_work or bool(self._pending_shed_outputs)

    @property
    def num_waiting(self) -> int:
        return self.scheduler.num_waiting

    @property
    def num_running(self) -> int:
        return self.scheduler.num_running

    # --------------------------------------------------------------- step

    def step(self) -> list[RequestOutput]:
        """Run one engine step: admissions + prefill work + one decode round.

        Unchunked: admitted requests prefill their whole prompt.  Chunked:
        the scheduler's per-step token budget is spread over the batch's
        ``PREFILLING`` requests and each allocation advances that request by
        one chunk.  Either way, every fully-prefilled running request then
        gets a decode round.

        Returns one :class:`RequestOutput` per touched request, carrying the
        tokens that became available during this step (streaming deltas).
        """
        self._shed_missed_deadlines()
        self._proactive_swap_out()
        shed_outputs = self._pending_shed_outputs
        self._pending_shed_outputs = []
        decision = self.scheduler.schedule()
        if not decision.decodes and not decision.admitted and not decision.prefill_chunks:
            return shed_outputs
        self.metrics.steps += 1
        new_tokens: dict[str, list[int]] = {}
        chunked = self.scheduler.config.chunked_prefill_enabled

        touched: list[RequestState] = []

        def touch(state: RequestState) -> None:
            if state not in touched:
                touched.append(state)

        for state in decision.admitted:
            if not self.scheduler.contains_running(state):
                # An earlier admission's memory reservation preempted this
                # request before it was processed; it is back in the waiting
                # queue and will be re-admitted on a later step.
                continue
            if state.status is RequestStatus.SWAPPED:
                # Re-admission of a swap-preempted request: restore its block
                # chain first, then let the chunk/decode phases pick it up.
                # A request parked mid-prefill resumes as PREFILLING; without
                # chunking no later phase would prefill it, so finish its
                # monolithic prefill here.
                if self._resume_swapped(state):
                    touch(state)
                    if not chunked and state.status is RequestStatus.PREFILLING:
                        self._run_monolithic_prefill(state, new_tokens)
                continue
            if state.status is RequestStatus.PREEMPTED:
                # Recompute-preempted: restart through the normal admission
                # path (fresh policy, fresh prefill, possibly a prefix-cache
                # hit on its own earlier chain); generated tokens replay.
                state.status = RequestStatus.WAITING
            self._begin_prefill(state)
            touch(state)
            if not chunked:
                self._run_monolithic_prefill(state, new_tokens)
            elif state.remaining_prefill_tokens == 0 and state.prefill is None:
                # Precomputed prefill (e.g. the eval harness): nothing to
                # chunk, the request completes its prefill phase immediately.
                self._complete_prefill(state, self._resolve_prefill(state), new_tokens)

        for state, num_tokens in decision.prefill_chunks:
            if state.status is not RequestStatus.PREFILLING:
                continue  # preempted (or resume failed) earlier this step
            self._run_prefill_chunk(state, num_tokens, new_tokens)
            touch(state)

        decoding = [
            state
            for state in decision.decodes
            if not state.finished and state.status is RequestStatus.RUNNING
        ]
        if decoding and self.decode_batching and self._can_fuse_decodes(decoding):
            for state in decoding:
                touch(state)
            self._run_decode_batch(decoding, new_tokens)
        else:
            # Per-request escape hatch — also the fallback when the fused
            # round's block reservations might need the pressure ladder.
            # Eligibility is re-checked per iteration: an earlier round's
            # reservation may preempt (park) a later member of this batch.
            for state in decoding:
                if not state.finished and state.status is RequestStatus.RUNNING:
                    touch(state)
                    self._run_decode_round(state, new_tokens)

        # Backstop settlement: spills triggered by allocation hooks inside
        # the model's own appends (rare — reservations normally cover them).
        self._settle_spill_traffic()

        outputs: list[RequestOutput] = []
        for state in touched:
            output = self._make_output(state, new_tokens.get(state.request.request_id, []))
            outputs.append(output)
            if state.finished:
                self._cache_decoded_blocks(state)
                self.scheduler.finish(state)
                # The heavyweight per-request state (KVCache, logits) now
                # lives only in the final output, subject to the retention
                # bound below.
                del self._states[state.request.request_id]
                self._final_outputs[state.request.request_id] = output
                self.metrics.requests_finished += 1
                self._record_qos_finish(state, "requests_finished")
        self._trim_retained_outputs()
        if self.slo_tuner is not None:
            self.slo_tuner.on_step(self)
        return shed_outputs + outputs

    def _trim_retained_outputs(self) -> None:
        """Evict the oldest retained finals beyond the retention bound."""
        if self.max_retained_outputs is None:
            return
        while len(self._final_outputs) > self.max_retained_outputs:
            output = self._final_outputs.pop(next(iter(self._final_outputs)))
            self._release_blocks(output)

    @staticmethod
    def _release_blocks(output: RequestOutput | None) -> None:
        """Return a retained output's shared KV blocks to the pool.

        The assembled per-layer mirrors stay readable, so the output itself
        remains fully usable; only the refcounts on the shared block pool are
        dropped (cached prefix entries keep their own references).
        """
        if output is None or output.prefill is None:
            return
        kvcache = output.prefill.kvcache
        if isinstance(kvcache, PagedKVCache):
            kvcache.release()

    def stream(self) -> Iterator[RequestOutput]:
        """Drive the engine to completion, yielding every streamed output."""
        while self.has_unfinished:
            yield from self.step()

    def run(
        self, requests: Iterable[Request] | None = None
    ) -> dict[str, RequestOutput]:
        """Submit ``requests`` (if given), drain the engine, return finals.

        Returns a mapping ``request_id -> final RequestOutput`` for every
        request that finished during this call (independently of the
        ``max_retained_outputs`` bound, which only governs what the engine
        keeps pinned afterwards).
        """
        if requests is not None:
            for request in requests:
                self.submit(request)
        finals: dict[str, RequestOutput] = {}
        while self.has_unfinished:
            for output in self.step():
                if output.finished:
                    finals[output.request_id] = output
        return finals

    def final_output(self, request_id: str) -> RequestOutput:
        """Final output of a finished request."""
        try:
            return self._final_outputs[request_id]
        except KeyError:
            raise ConfigurationError(
                f"request {request_id!r} has not finished (or does not exist)"
            ) from None

    def release(self, request_id: str) -> None:
        """Drop a finished request's retained output (frees its KVCache)."""
        self._release_blocks(self._final_outputs.pop(request_id, None))

    def abort(self, request_id: str) -> RequestOutput | None:
        """Cancel an unfinished request and free its scheduler slot.

        Works on requests in any pre-finished state: still waiting, mid-way
        through a chunked prefill (the partially-filled KVCache is dropped),
        or decoding.  The request finishes immediately with
        ``finish_reason="aborted"`` and the returned final
        :class:`RequestOutput` carries whatever tokens were generated before
        the abort.

        Aborting a request that already reached a terminal state — it
        finished, was shed, or was aborted before, e.g. an abort racing a
        same-step shed or finish — is an idempotent no-op: the terminal
        outcome stands, no counter moves, and the retained final output is
        returned unchanged (``None`` once the retention bound evicted it).

        Args:
            request_id: id of the request to cancel.

        Returns:
            The final output — freshly aborted, or the unchanged terminal
            output of an already-finished request (``None`` if no longer
            retained).

        Raises:
            ConfigurationError: if the request id was never submitted.
        """
        state = self._states.get(request_id)
        if state is None:
            if request_id in self._seen_ids:
                return self._final_outputs.get(request_id)
            raise ConfigurationError(
                f"request {request_id!r} was never submitted"
            )
        self.scheduler.discard(state)
        if state.swap_handle is not None:
            # Aborted while swapped out: the parked chain will never be
            # restored, so drop it from the swap space.
            assert self.swap_space is not None
            self.swap_space.discard(state.swap_handle)
            state.swap_handle = None
        state.prefill_state = None  # drop the partial KVCache
        if state.paged is not None and state.prefill is None:
            # Aborted mid-prefill: the partial paged cache will never be
            # retained, so return its blocks to the pool right away.
            state.paged.release()
        self._finish(state, "aborted")
        output = self._make_output(state, [])
        del self._states[request_id]
        self._final_outputs[request_id] = output
        self.metrics.requests_aborted += 1
        self._record_qos_finish(state, "requests_aborted")
        self._trim_retained_outputs()
        return output

    # ------------------------------------------------------------ prefill

    def _begin_prefill(self, state: RequestState) -> None:
        """Admission bookkeeping: build the policy, resolve its profile.

        Also the re-entry point after recompute-preemption: the policy is
        rebuilt from its spec (deterministically equal to the original) and
        the prefix lookup runs again, typically hitting the chain this
        request itself inserted before being preempted.
        """
        state.status = RequestStatus.PREFILLING
        if state.metrics.prefill_start is None:
            state.metrics.prefill_start = self.metrics.clock
        if state.request.policy_spec is not None and state.policy is None:
            state.policy = state.request.policy_spec.build()
        state.method = resolve_method(
            state.policy.name if state.policy is not None else None,
            is_dropping=state.policy.is_dropping if state.policy is not None else False,
        )
        if self.prefix_cache is not None and state.request.prefill is None:
            self._setup_prefix(state)

    def _setup_prefix(self, state: RequestState) -> None:
        """Prefix-cache lookup + paged-KVCache construction for one request.

        Decides the reuse length ``R``:

        * policies that read prefill aggregates (and full attention, whose
          final output exposes them) may only resume at a boundary where the
          accumulated-score state was snapshotted exactly, capped so the
          SnapKV-style observation window stays entirely in the recomputed
          suffix — both conditions keep the resumed aggregates bitwise equal
          to a cold prefill's;
        * aggregate-free policies (PQCache) reuse every matched full block,
          up to ``len(prompt) - 1`` (at least one token must be processed to
          produce the first-token logits).

        Then forks the matched block chain copy-on-write and, when the
        policy can, attaches the cached PQ artifacts.
        """
        assert self.prefix_cache is not None and self.block_allocator is not None
        request = state.request
        policy = state.policy
        prompt_len = len(request.prompt_ids)
        block = self.block_allocator.block_size
        observation = request.sampling.observation_window
        fingerprint = policy.prefix_fingerprint() if policy is not None else None
        needs_aggregates = (
            policy.needs_prefill_aggregates if policy is not None else True
        )

        # Cap the lookup at what this request could actually attach, so a
        # long spilled chain is never restored from disk past the usable
        # prefix: aggregate-reading policies can resume at most before their
        # observation window; aggregate-free ones reuse up to all but the
        # last prompt token.
        useful_cap = (
            prompt_len - observation if needs_aggregates else prompt_len - 1
        )
        match = self.prefix_cache.match(
            request.prompt_ids, fingerprint,
            max_useful_tokens=max(useful_cap, 0),
        )
        # The lookup may have restored spilled chains from the disk tier;
        # charge that traffic before this request's TTFT accrues.
        self._settle_spill_traffic()
        self.metrics.prefix_cache_queries += 1
        self.metrics.prefix_prompt_tokens += prompt_len

        reuse = 0
        acc_scores = None
        if match is not None:
            if needs_aggregates:
                limit = min(match.matched_tokens, prompt_len - observation)
                candidates = [b for b in match.acc_boundaries if b <= limit]
                if candidates:
                    reuse = max(candidates)
                    acc_scores = match.acc_boundaries[reuse]
            else:
                reuse = min(match.matched_tokens, prompt_len - 1)
                acc_scores = match.acc_boundaries.get(reuse)

        if reuse > 0:
            num_blocks = -(-reuse // block)
            table = BlockTable.fork_from(
                self.block_allocator, match.block_ids[:num_blocks]
            )
            state.paged = PagedKVCache(
                self.block_allocator, prefix_table=table, prefix_len=reuse
            )
            state.cached_prefix = reuse
            state.prefix_acc = acc_scores
            self.metrics.prefix_cache_hits += 1
            self.metrics.prefix_cache_hit_tokens += reuse
            if match.pq_snapshot is not None and policy is not None:
                policy.attach_prefix(
                    self.model.config, state.paged, match.pq_snapshot, reuse
                )
        else:
            state.paged = PagedKVCache(self.block_allocator)
        state.metrics.cached_prefix_tokens = reuse

        # Boundary at which this request's own accumulated-score state will
        # be snapshotted for future consumers: the largest block-aligned
        # point that leaves the observation window in the suffix, if it
        # covers queries this request actually computes.  A request that
        # resumed *without* an exact accumulated-score init (the
        # aggregate-free long-reuse path) must not capture at all — its scan
        # is missing the cached-prefix queries' contributions, and caching
        # that snapshot would poison later aggregate-consuming resumes.
        capture = ((prompt_len - observation) // block) * block
        if capture > state.cached_prefix and (
            state.cached_prefix == 0 or state.prefix_acc is not None
        ):
            state.acc_capture = capture

    def _resolve_prefill(self, state: RequestState) -> PrefillResult:
        """Prefill result of a request that needs no (more) model work."""
        assert state.request.prefill is not None
        return state.request.prefill

    def _make_prefill_state(self, state: RequestState) -> PrefillState:
        """Begin the model-side prefill, resuming from a cached prefix."""
        request = state.request
        kwargs: dict = {}
        if state.paged is not None:
            kwargs["kvcache"] = state.paged
            if state.cached_prefix > 0:
                kwargs["prefix_len"] = state.cached_prefix
                kwargs["prefix_acc_scores"] = state.prefix_acc
            if state.acc_capture:
                kwargs["acc_snapshot_boundaries"] = [state.acc_capture]
        return self.model.begin_prefill(
            request.prompt_ids,
            observation_window=request.sampling.observation_window,
            **kwargs,
        )

    def _run_monolithic_prefill(
        self, state: RequestState, new_tokens: dict[str, list[int]]
    ) -> None:
        """Legacy unchunked path: the whole prompt in the admission step."""
        request = state.request
        if request.prefill is not None:
            prefill = request.prefill
        elif state.paged is not None:
            # Paged/prefix-cached requests always run through the resumable
            # API so cache-hit tokens are skipped; without chunking the whole
            # remainder is one chunk (charged through the chunk clock, which
            # telescopes to the monolithic charge on a cold cache).
            self._run_prefill_chunk(
                state, state.remaining_prefill_tokens, new_tokens
            )
            return
        else:
            prefill = self.model.prefill(
                request.prompt_ids,
                observation_window=request.sampling.observation_window,
            )
        self._complete_prefill(state, prefill, new_tokens)

    def _run_prefill_chunk(
        self, state: RequestState, num_tokens: int, new_tokens: dict[str, list[int]]
    ) -> None:
        """Advance a chunked-prefill request by one scheduled chunk."""
        request = state.request
        if state.prefill_state is None:
            state.prefill_state = self._make_prefill_state(state)
        prefix = state.prefill_state.num_processed
        if state.paged is not None:
            # Reserve the blocks this chunk will write before the model
            # starts appending — under pool pressure this evicts/spills cold
            # prefix chains and preempts younger victims, so the chunk
            # itself can never fail half-written.  When an older request
            # needs the pool more, this request parks itself instead.
            take = min(num_tokens, state.prefill_state.remaining_tokens)
            if not self._ensure_blocks(state, self._append_blocks_needed(state, take)):
                self._preempt_victim(state)
                return
        processed = self.model.prefill_chunk(state.prefill_state, num_tokens)
        state.chunk_lens.append(processed)
        state.metrics.prefill_chunks += 1
        self.metrics.prefill_chunks += 1

        # Per-chunk clock charge: the chunk's GPU compute.  Offload and PQ
        # construction overlap on other resources; their non-hidable residual
        # is settled at completion from the overlapped chunk timeline.
        seconds = self.latency.prefill_chunk_seconds(processed, prefix, state.method)
        self.metrics.clock += seconds
        state.chunk_seconds += seconds
        state.metrics.prefill_seconds += seconds

        if state.policy is not None and state.policy.supports_incremental_prefill:
            state.policy.on_prefill_chunk(
                self.model.config,
                state.prefill_state.kvcache,
                prefix,
                prefix + processed,
                state.prefill_state.seq_len,
            )

        if state.prefill_state.is_complete:
            prefill = self.model.finish_prefill(state.prefill_state)
            timeline = self.latency.chunked_prefill_timeline(
                state.chunk_lens,
                state.method,
                cached_prefix_tokens=state.cached_prefix,
            )
            # Split the overlap residual at the first-token-ready point: the
            # prompt's logits exist once the last GPU compute task ends, so
            # only the compute-side residual precedes TTFT; the construction
            # tail beyond it (offload/encode/refine that compute could not
            # hide) gates the first *retrieval* and is charged after the
            # first token is stamped (the paper's TT2T argument — this is
            # also what makes a prefix-cache hit's TTFT reflect the skipped
            # prefix compute rather than the full-prompt refine, which both
            # hit and cold paths still pay before their first decode step).
            gpu_ready = max(
                timeline.resource_makespan("gpu"), state.chunk_seconds
            )
            compute_residual = gpu_ready - state.chunk_seconds
            if compute_residual > 0.0:
                self.metrics.clock += compute_residual
                state.metrics.prefill_seconds += compute_residual
            state.construction_tail = max(timeline.makespan - gpu_ready, 0.0)
            state.prefill_state = None
            self._complete_prefill(state, prefill, new_tokens)

    def _complete_prefill(
        self,
        state: RequestState,
        prefill: PrefillResult,
        new_tokens: dict[str, list[int]],
    ) -> None:
        """Shared tail of both prefill modes: policy state, clock, first token."""
        request = state.request
        state.prefill = prefill
        state.status = RequestStatus.RUNNING

        if state.policy is not None:
            # finish_prefill refines incrementally-built state (PQCache under
            # chunked prefill) and defers to on_prefill for everything else.
            state.policy.finish_prefill(self.model.config, prefill)

        if self.prefix_cache is not None and state.paged is not None:
            # Cache the prompt's full blocks plus the reusable artifacts:
            # the accumulated-score snapshot at its capture boundary and the
            # policy's pre-refine PQ state (both shared by reference).
            acc_scores = (
                prefill.acc_snapshots.get(state.acc_capture)
                if state.acc_capture
                else None
            )
            fingerprint = (
                state.policy.prefix_fingerprint()
                if state.policy is not None
                else None
            )
            snapshot = (
                state.policy.prefix_snapshot()
                if state.policy is not None
                else None
            )
            self.prefix_cache.insert(
                request.prompt_ids,
                state.paged.table.block_ids,
                acc_boundary=state.acc_capture if acc_scores is not None else 0,
                acc_scores=acc_scores,
                pq_fingerprint=fingerprint,
                pq_snapshot=snapshot,
            )

        if not state.chunk_lens:
            # Monolithic prefill charges the whole overlapped makespan once.
            seconds = self.latency.prefill_timeline(
                prefill.seq_len, state.method
            ).makespan
            self.metrics.clock += seconds
            state.metrics.prefill_seconds = seconds
            state.metrics.prefill_chunks = 1
        self.metrics.prefills += 1

        # The first token exists as soon as prefilling ends — for sampled
        # requests it is emitted right away; for teacher-forced requests it
        # is the externally-supplied token that the first decode round will
        # process, so TTFT is the same point on the clock (this used to be
        # skipped, reporting TTFT as 0 for every eval-harness run).  A
        # recompute-preempted request keeps its original TTFT: the client
        # received that token before the preemption.
        if state.metrics.first_token_time is None:
            state.metrics.first_token_time = self.metrics.clock

        if state.construction_tail > 0.0:
            # The non-hidable construction tail (chiefly the full-prompt PQ
            # refinement) completes after the first token exists but before
            # the first retrieval, so it lands on the clock *after* TTFT was
            # stamped and before any decode round — and before a stop-token
            # finish stamps finish_time, keeping e2e >= prefill_seconds.
            self.metrics.clock += state.construction_tail
            state.metrics.prefill_seconds += state.construction_tail
            state.construction_tail = 0.0

        if state.forced is None:
            first = state.pick_token(prefill.logits)
            if state.generated:
                # Recompute-resume replay: the first token was emitted before
                # the preemption; determinism requires the re-prefill to
                # reproduce it bit for bit.
                if first != state.generated[0]:
                    raise ConfigurationError(
                        "recompute replay diverged on the first token: "
                        f"{first} != {state.generated[0]}"
                    )
                return
            state.generated.append(first)
            state.metrics.num_generated_tokens += 1
            self.metrics.generated_tokens += 1
            new_tokens.setdefault(request.request_id, []).append(first)
            if state.is_stop(first):
                # The stop token is emitted but never decoded.
                self._finish(state, "stop")

    # ------------------------------------------------------------- decode

    def _run_decode_round(self, state: RequestState, new_tokens: dict[str, list[int]]) -> None:
        assert state.prefill is not None
        request = state.request
        policy = state.policy
        cache = state.prefill.kvcache
        if state.paged is not None and not state.paged.released:
            # One appended token may need a fresh tail block and/or a COW
            # copy of a shared tail block; reserve before the model writes.
            # If an older request owns the pool, park and resume later.
            if not self._ensure_blocks(state, self._append_blocks_needed(state, 1)):
                self._preempt_victim(state)
                return
        token = state.next_input_token()

        step_selections: StepSelections = []
        attended: list[float] = []
        num_kv_heads = self.model.config.num_kv_heads
        hook = request.selection_hook

        selector = None
        if policy is not None or hook is not None:

            def selector(layer_index: int, query: np.ndarray, kvcache: KVCache):
                chosen = (
                    policy.select(layer_index, query, kvcache)
                    if policy is not None
                    else None
                )
                if chosen is None:
                    normalised = None
                    attended.append(float(len(kvcache[layer_index])))
                elif isinstance(chosen, (list, tuple)):
                    normalised = [np.asarray(c, dtype=np.int64) for c in chosen]
                    attended.append(float(np.mean([c.size for c in normalised])))
                else:
                    arr = np.asarray(chosen, dtype=np.int64)
                    normalised = [arr] * num_kv_heads
                    attended.append(float(arr.size))
                if hook is not None:
                    hook(layer_index, query, kvcache, normalised)
                step_selections.append(normalised)
                return chosen

        logits = self.model.decode_step(token, cache, selector)
        if policy is not None:
            policy.on_decode_step(cache)
        self._bill_maintenance(state, policy)
        state.num_decoded += 1
        state.step_logits.append(logits)
        state.selections.append(step_selections)
        self.metrics.decode_rounds += 1
        state.metrics.decode_steps += 1
        if selector is None:
            # Full attention without a policy: every cached token participates.
            attended = [float(cache.seq_len)] * self.model.config.num_layers
        state.metrics.attended_tokens += float(np.mean(attended)) if attended else 0.0

        seq_len = cache.seq_len
        hit_rate = self._gpu_cache_hit_rate(policy)
        if policy is not None:
            comm = policy.step_communication_bytes(seq_len)
            state.metrics.comm_overlappable_bytes += comm.get("overlappable", 0.0)
            state.metrics.comm_blocking_bytes += comm.get("blocking", 0.0)
        seconds = self.latency.tpot(seq_len, state.method, cache_hit_rate=hit_rate)
        self.metrics.clock += seconds
        state.metrics.decode_seconds += seconds

        if state.forced is not None:
            if state.num_decoded >= len(state.forced):
                self._finish(state, "length")
            return

        next_token = state.pick_token(logits)
        if state.num_decoded >= request.sampling.max_new_tokens:
            self._finish(state, "length")
            return
        if state.num_decoded < len(state.generated):
            # Recompute-resume replay: this round re-derived a token that was
            # already emitted before the preemption — verify determinism and
            # do not re-emit or re-count it.
            if next_token != state.generated[state.num_decoded]:
                raise ConfigurationError(
                    f"recompute replay diverged at decode step "
                    f"{state.num_decoded}: {next_token} != "
                    f"{state.generated[state.num_decoded]}"
                )
            return
        state.generated.append(next_token)
        state.metrics.num_generated_tokens += 1
        self.metrics.generated_tokens += 1
        new_tokens.setdefault(request.request_id, []).append(next_token)
        if state.is_stop(next_token):
            self._finish(state, "stop")

    def _can_fuse_decodes(self, states: "list[RequestState]") -> bool:
        """Whether this round's appends fit the pool without the ladder.

        The fused round must not hit the pressure escalation ladder
        mid-flight: an eviction or preemption between two members' appends
        would change which requests participate and reorder clock charges.
        So the engine reserves *upfront*: it sums every member's
        single-token append demand (:meth:`_append_blocks_needed`, an exact
        count that only shrinks as earlier members' copy-on-write copies
        drop shared refcounts) and fuses only when the pool can supply the
        sum outright.  Under that guarantee each member's in-round
        allocation trivially succeeds and every per-member
        :meth:`_ensure_blocks` call would have been a side-effect-free
        no-op, so the fused path skips them.  Otherwise the caller runs the
        per-request loop, which handles pressure one request at a time.
        """
        allocator = self.block_allocator
        if allocator is None or allocator.capacity_blocks is None:
            return True
        needed = 0
        for state in states:
            if state.paged is not None and not state.paged.released:
                needed += self._append_blocks_needed(state, 1)
        if needed == 0:
            return True
        available = allocator.num_available
        return available is not None and needed <= available

    def _run_decode_batch(
        self, states: "list[RequestState]", new_tokens: dict[str, list[int]]
    ) -> None:
        """One fused decode round over every ``RUNNING`` request.

        Byte-identical to calling :meth:`_run_decode_round` per request in
        the same order: the model computes the round layer-major across
        requests (per-request state is isolated, so the arithmetic cannot
        differ), policy hooks run through their grouped batch kernels
        (contractually bitwise equal to the per-request hooks), and the
        billing phase below replays the looped path's per-request tail —
        counters, attended means, GPU-cache hit rate, communication bytes,
        simulated TPOT, maintenance billing, forced/replay/stop handling —
        member by member in the original decode order, so every clock
        addition happens in the exact sequence the loop would produce.

        Only callable under the :meth:`_can_fuse_decodes` guarantee (no
        block reservation can fail, no member can be preempted mid-round).
        """
        batch = DecodeBatch.plan(states, self.model.config.num_kv_heads)
        members = batch.members
        logits_list = self.model.decode_step_batch(
            batch.tokens, batch.caches, batch.build_selector(),
            timings=batch.timings,
        )
        batch.run_policy_updates()

        num_layers = self.model.config.num_layers
        for member, logits in zip(members, logits_list):
            state = member.state
            request = state.request
            policy = member.policy
            cache = member.cache
            self._bill_maintenance(state, policy)
            state.num_decoded += 1
            state.step_logits.append(logits)
            state.selections.append(member.step_selections)
            self.metrics.decode_rounds += 1
            state.metrics.decode_steps += 1
            attended = member.attended
            if not member.needs_selector:
                # Full attention without a policy: every cached token
                # participates.
                attended = [float(cache.seq_len)] * num_layers
            state.metrics.attended_tokens += (
                float(np.mean(attended)) if attended else 0.0
            )

            seq_len = cache.seq_len
            hit_rate = self._gpu_cache_hit_rate(policy)
            if policy is not None:
                comm = policy.step_communication_bytes(seq_len)
                state.metrics.comm_overlappable_bytes += comm.get("overlappable", 0.0)
                state.metrics.comm_blocking_bytes += comm.get("blocking", 0.0)
            seconds = self.latency.tpot(seq_len, state.method, cache_hit_rate=hit_rate)
            self.metrics.clock += seconds
            state.metrics.decode_seconds += seconds

            if state.forced is not None:
                if state.num_decoded >= len(state.forced):
                    self._finish(state, "length")
                continue

            next_token = state.pick_token(logits)
            if state.num_decoded >= request.sampling.max_new_tokens:
                self._finish(state, "length")
                continue
            if state.num_decoded < len(state.generated):
                # Recompute-resume replay — see :meth:`_run_decode_round`.
                if next_token != state.generated[state.num_decoded]:
                    raise ConfigurationError(
                        f"recompute replay diverged at decode step "
                        f"{state.num_decoded}: {next_token} != "
                        f"{state.generated[state.num_decoded]}"
                    )
                continue
            state.generated.append(next_token)
            state.metrics.num_generated_tokens += 1
            self.metrics.generated_tokens += 1
            new_tokens.setdefault(request.request_id, []).append(next_token)
            if state.is_stop(next_token):
                self._finish(state, "stop")

        self.metrics.observe_decode_batch(len(members))
        timings = batch.timings
        self.metrics.decode_select_seconds += timings.get("select", 0.0)
        self.metrics.decode_score_seconds += timings.get("score", 0.0)
        self.metrics.decode_topk_seconds += timings.get("topk", 0.0)
        self.metrics.decode_gather_seconds += timings.get("gather", 0.0)
        self.metrics.decode_attention_seconds += timings.get("attention", 0.0)
        self.metrics.decode_maintenance_seconds += timings.get("maintenance", 0.0)

    def _bill_maintenance(
        self, state: RequestState, policy: KVCachePolicy | None
    ) -> None:
        """Bill a decode step's deferred index maintenance to the clock.

        Policies report periodic maintenance (PQCache's ``refresh_every``
        codebook refresh) through
        :meth:`~repro.baselines.base.KVCachePolicy.consume_maintenance`; the
        engine charges it as a clustering timeline task — the same
        analytical cost model the prefill-time PQ build uses, once per layer
        — so the refresh knob has an honest simulated-latency price.  Runs
        in both decode paths, immediately after the policy's post-append
        hook and before the step's TPOT charge.
        """
        if policy is None:
            return
        pending = policy.consume_maintenance()
        if pending is None:
            return
        seconds = self.model.config.num_layers * self.latency.layer_clustering_seconds(
            int(pending["tokens"]), iterations=pending["iterations"]
        )
        self.metrics.clock += seconds
        state.metrics.decode_seconds += seconds
        self.metrics.pq_refreshes += 1
        self.metrics.pq_refresh_seconds += seconds

    # ------------------------------------------------------------- finish

    def _cache_decoded_blocks(self, state: RequestState) -> None:
        """Extend the request's cached chain with its decoded tokens.

        Opt-in (``cache_decoded_blocks``): a follow-up turn's prompt usually
        embeds this request's answer, so the blocks filled during decoding
        are prefix material too — but only *approximately*.  Decoded tokens'
        KV went through the decode kernel under this request's attention
        policy, so reusing it is not bitwise equal to a cold prefill of the
        same tokens; the engine therefore never caches the decoded region
        unless explicitly asked to.  Only KV content is cached (no aggregate
        or PQ payloads — those are prompt-prefix artifacts).
        """
        if (
            not self.cache_decoded_blocks
            or self.prefix_cache is None
            or state.paged is None
            or state.prefill is None
            or state.num_decoded == 0
        ):
            return
        decoded = (
            state.forced if state.forced is not None else state.generated
        )[: state.num_decoded]
        chain_ids = list(state.request.prompt_ids) + [int(t) for t in decoded]
        self.prefix_cache.insert(chain_ids, state.paged.table.block_ids)

    def _finish(self, state: RequestState, reason: str) -> None:
        state.status = RequestStatus.FINISHED
        state.finish_reason = reason
        state.metrics.finish_time = self.metrics.clock
        if state.policy is not None:
            state.policy.release_prefix()

    def _record_qos_finish(self, state: RequestState, kind: str) -> None:
        """Fold one terminal event into the per-class/per-tenant buckets.

        ``kind`` names the bucket counter (``requests_finished`` /
        ``requests_aborted`` / ``requests_shed``); normally-finished
        requests also contribute their TTFT/TPOT to the bucket's latency
        accumulators.
        """
        buckets = (
            self.metrics.class_bucket(state.priority),
            self.metrics.tenant_bucket(state.tenant),
        )
        for bucket in buckets:
            setattr(bucket, kind, getattr(bucket, kind) + 1)
            if kind == "requests_finished":
                bucket.observe_finish(state.metrics)
        if kind == "requests_finished" and self.slo_tuner is not None:
            self.slo_tuner.observe(state)

    @staticmethod
    def _gpu_cache_hit_rate(policy: KVCachePolicy | None) -> float:
        """GPU block-cache hit rate of the *current* decode step.

        Uses the per-step hit/miss split aggregated over this step's
        retrievals across all layers (not the cumulative lifetime rate) so
        the simulated TPOT reflects the PCIe traffic this step actually
        incurs; the cumulative rate stays available on ``stats.hit_rate``
        for reporting.
        """
        manager = getattr(policy, "manager", None)
        gpu_cache = getattr(manager, "gpu_cache", None)
        if gpu_cache is None or not gpu_cache.stats.lookups:
            return 0.0
        return float(gpu_cache.stats.step_hit_rate)

    def _make_output(self, state: RequestState, fresh: list[int]) -> RequestOutput:
        final = state.finished
        return RequestOutput(
            request_id=state.request.request_id,
            new_token_ids=list(fresh),
            token_ids=list(state.generated),
            finished=final,
            finish_reason=state.finish_reason,
            metrics=state.metrics,
            logits=state.stacked_logits(self.model.config.vocab_size) if final else None,
            selections=list(state.selections) if final else None,
            prefill=state.prefill if final else None,
        )
