"""The request-centric inference engine.

:class:`InferenceEngine` is the serving front-end of the reproduction: it
accepts :class:`~repro.serve.Request` objects, runs a continuous-batching
loop (admit → prefill → interleaved decode rounds → finish/evict) over the
shared :class:`~repro.llm.TransformerLM`, instantiates one KVCache policy per
request from its :class:`~repro.serve.PolicySpec`, and emits
:class:`~repro.serve.RequestOutput` objects with incrementally streamed
tokens plus per-request serving metrics.

Decode math is *identical* to the legacy single-sequence loop: each request
owns its prefill/KVCache, every decode round calls
:meth:`TransformerLM.decode_step` with the request's own policy selector, and
tokens are picked by masked argmax — so a batched run produces byte-identical
tokens to sequential :func:`repro.llm.greedy_generate` calls (which is itself
a thin wrapper over a one-request engine).

The decode hot path underneath is fully batched across KV heads: policy
selection rides the vectorized ADC kernels
(:meth:`~repro.core.pq.ProductQuantizer.score_batch` /
:meth:`~repro.core.pq.ProductQuantizer.encode_batch` via
:class:`~repro.core.pqcache.PQCacheManager`) and the vectorized
:func:`~repro.llm.attention.decode_attention`, so a decode round costs one
einsum/gather per layer instead of a Python loop over every KV head.

Prefilling runs in one of two modes.  By default an admitted request
prefills its whole prompt during the admission step (monolithic).  With
``SchedulerConfig.max_prefill_chunk_tokens`` set, prefill is *chunked*: each
step processes at most that many prompt tokens, split fairly across the
batch's ``PREFILLING`` requests via :meth:`TransformerLM.prefill_chunk`, so a
16k-token prompt no longer head-of-line-blocks a short prompt's TTFT.  The
clock is charged per chunk (GPU compute of the chunk), with the residual of
the overlapped construction timeline
(:meth:`~repro.memory.LatencyModel.chunked_prefill_timeline`) settled at
completion; policies that support it (PQCache) build their state
incrementally from the same chunks (sketch fit → stream encode → refine).
Chunked and monolithic prefill produce bitwise-identical model outputs.

Paged KV and the shared-prefix cache
------------------------------------
With ``enable_prefix_caching=True`` every request's KVCache is a
:class:`~repro.llm.kvcache.PagedKVCache` drawing fixed-size token blocks from
a shared refcounted :class:`~repro.llm.kvcache.BlockAllocator`, and a
:class:`~repro.serve.PrefixCache` hash-matches each incoming prompt against
previously served block chains.  On a hit the matched blocks are attached
copy-on-write, prefill resumes from the first divergent token
(:meth:`TransformerLM.begin_prefill` with ``prefix_len``), reusable PQ
artifacts (sketch codebooks + codes) are adopted by reference through the
policy's ``attach_prefix`` hook, and the simulated clock charges **zero**
prefill or clustering cost for the cache-hit tokens.  Decode outputs are
byte-identical between the cache-hit and cold paths: the reused keys/values
are the exact arrays an earlier request computed, resumed reductions are
strictly-sequential continuations of snapshotted state, and policies whose
selection depends on prefill aggregates only reuse up to a boundary where
those aggregates were snapshotted exactly
(``KVCachePolicy.needs_prefill_aggregates``).

Preemption and tiered KV under pool pressure
--------------------------------------------
With a *bounded* block pool (``kv_pool_blocks``) the engine degrades
gracefully instead of failing: before any allocation-bearing step (a prefill
chunk, a decode append, a swap-in) it reserves the blocks that step will
write.  When the pool cannot supply them it first asks the prefix cache to
evict — which, with the disk spill tier, demotes cold chains to NVMe instead
of dropping them — and then *preempts* a victim request
(``SchedulerConfig.victim_policy``, LIFO by default).  Two victim fates
exist (``SchedulerConfig.preemption_mode``):

* ``"swap"`` — the victim's blocks are copied to the CPU tier of the
  :class:`~repro.llm.kvcache.SwapSpace` (cold entries cascade to disk), the
  pool blocks are freed, and on re-admission the chain is restored bitwise
  and decoding continues exactly where it stopped.
* ``"recompute"`` — the victim's blocks are dropped and the request is
  re-enqueued; on re-admission it re-prefills its prompt through the normal
  resumable-prefill machinery (often a prefix-cache hit on its own earlier
  chain) and *replays* its already-generated tokens through the ordinary
  decode path.  Because every stage is deterministic, the replayed logits,
  selections and subsequent tokens are byte-identical to an uninterrupted
  run; replayed tokens are not re-emitted or re-counted.

Swap and spill traffic is charged to the simulated clock as
dependency-linked PCIe/NVMe transfers
(:meth:`~repro.memory.LatencyModel.swap_out_timeline` /
:meth:`~repro.memory.LatencyModel.swap_in_timeline`) and surfaces in
:class:`~repro.serve.EngineMetrics` (``swap_*``/``spill_*`` counters), so
TTFT/TPOT honestly reflect pool pressure.  A :class:`CapacityError` is
raised only when a request's demand exceeds what the pool can offer even
with every other request preempted and every cold chain spilled.

Wall-clock is *simulated*: the engine advances a clock using the analytical
:class:`~repro.memory.LatencyModel` (prefill makespans and per-step TPOT for
the request's method profile), so TTFT/TPOT/throughput come out in the
paper's hardware terms even though the substrate runs in NumPy.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..baselines.base import KVCachePolicy
from ..errors import CapacityError, ConfigurationError
from ..llm.generation import StepSelections
from ..llm.kvcache import (
    BlockAllocator,
    BlockTable,
    KVCache,
    PagedKVCache,
    SwappedBlocks,
    SwapSpace,
)
from ..llm.model import PrefillResult, PrefillState, TransformerLM
from ..memory.devices import HardwareSpec
from ..memory.latency import LatencyModel, resolve_method
from .metrics import EngineMetrics, RequestMetrics
from .prefix_cache import PrefixCache
from .request import Request, RequestOutput, RequestStatus
from .scheduler import ContinuousBatchingScheduler, SchedulerConfig

__all__ = ["InferenceEngine"]


class _RequestState:
    """Engine-internal mutable state of one request."""

    def __init__(self, request: Request, arrival_time: float, seq: int = 0) -> None:
        self.request = request
        #: submission order — the engine's preemption priority: a request may
        #: only victimise requests submitted after it, which guarantees the
        #: oldest active request always progresses (no preemption livelock).
        self.seq = seq
        self.status = RequestStatus.WAITING
        self.policy: KVCachePolicy | None = None
        self.prefill: PrefillResult | None = None
        self.prefill_state: PrefillState | None = None
        self.chunk_lens: list[int] = []
        self.chunk_seconds: float = 0.0
        self.method: str = "full"
        #: paged-KV state (prefix caching only)
        self.paged: PagedKVCache | None = None
        self.cached_prefix = 0
        self.prefix_acc: list[np.ndarray] | None = None
        self.acc_capture = 0
        #: construction time (refine & friends) extending past the last
        #: compute task — charged after the first token is stamped, since it
        #: only gates the first retrieval (TT2T), not the first token.
        self.construction_tail = 0.0
        #: swap-preemption state: the parked chain handle and the status to
        #: restore once the blocks are swapped back in
        self.swap_handle: SwappedBlocks | None = None
        self.resume_status = RequestStatus.RUNNING
        self.generated: list[int] = []
        self.step_logits: list[np.ndarray] = []
        self.selections: list[StepSelections] = []
        self.num_decoded = 0
        self.finish_reason: str | None = None
        self.metrics = RequestMetrics(
            arrival_time=arrival_time,
            num_prompt_tokens=len(request.prompt_ids),
        )
        forbidden = np.asarray(request.sampling.forbidden_ids, dtype=np.int64)
        self._forbidden = forbidden
        self._stop_ids = frozenset(request.sampling.stop_token_ids)

    # ------------------------------------------------------------- helpers

    @property
    def forced(self) -> list[int] | None:
        return self.request.forced_decode_ids

    @property
    def finished(self) -> bool:
        return self.status == RequestStatus.FINISHED

    @property
    def remaining_prefill_tokens(self) -> int:
        """Prompt tokens still to prefill (the scheduler's chunk protocol).

        Cache-hit tokens are excluded: a request resumed from a shared
        prefix only demands chunk budget for its divergent suffix.
        """
        if self.prefill is not None or self.request.prefill is not None:
            return 0
        if self.prefill_state is not None:
            return self.prefill_state.remaining_tokens
        return len(self.request.prompt_ids) - self.cached_prefix

    def pick_token(self, logits: np.ndarray) -> int:
        """Masked greedy argmax — the same rule the legacy loop used."""
        if self._forbidden.size:
            logits = logits.copy()
            logits[self._forbidden] = -np.inf
        return int(np.argmax(logits))

    def is_stop(self, token: int) -> bool:
        return token in self._stop_ids

    def next_input_token(self) -> int:
        """Token the next decode round must process."""
        if self.forced is not None:
            return self.forced[self.num_decoded]
        return self.generated[self.num_decoded]

    def stacked_logits(self, vocab_size: int) -> np.ndarray:
        if not self.step_logits:
            return np.zeros((0, vocab_size))
        return np.stack(self.step_logits, axis=0)


class InferenceEngine:
    """Continuous-batching serving engine over the PQCache policy stack.

    Args:
        model: shared transformer substrate (stateless across requests —
            every request owns its KVCache through its prefill result).
        scheduler_config: batching knobs; defaults to an 8-slot batch.
        latency_model: analytical model driving the simulated clock; when
            ``None`` one is built from ``hardware`` (default: the paper's
            RTX 4090 + PCIe 1.0 testbed) and the substrate's geometry.
        hardware: hardware spec for the default latency model.
        max_retained_outputs: retention bound on finished outputs.
        enable_prefix_caching: allocate every request's KVCache from a shared
            paged block pool and reuse matching prompt prefixes (KV blocks,
            accumulated-score snapshots, PQ artifacts) across requests.
        kv_block_size: tokens per KV block (prefix granularity).
        kv_pool_blocks: bound on the block pool; ``None`` grows on demand.
            When the pool runs dry the engine first evicts/spills cold
            prefix-cache chains, then preempts running requests
            (``SchedulerConfig.preemption_mode``); a pool that cannot serve
            a request even with everything else preempted raises
            :class:`~repro.errors.CapacityError`.
        swap_cpu_blocks: capacity (in blocks) of the CPU swap tier backing
            swap-preemption; ``None`` (default) is unbounded.  When the CPU
            tier fills, its oldest parked chains demote to the disk tier.
        swap_disk_blocks: capacity of the disk tier (swap overflow + prefix
            spill); ``None`` is unbounded.
        enable_disk_spill: spill cold evicted prefix-cache chains (KV blocks
            plus their PQ-snapshot/aggregate payloads) to the disk tier
            instead of freeing them, restoring them bitwise on later hits.
            PQ codes are ~1/64th the KV bytes, so snapshot spill is nearly
            free.  Only meaningful with ``enable_prefix_caching``.
        cache_decoded_blocks: also cache the blocks a request fills while
            *decoding*, so a follow-up turn embedding the answer reuses them.
            **Approximate reuse — off by default**: decoded tokens' KV was
            computed through the decode kernel under the request's (possibly
            sparse) attention policy, so it is not bitwise equal to what a
            cold full-attention prefill of the same tokens would produce;
            enabling this trades the byte-identity guarantee on the decoded
            region for a higher hit rate (prompt-region reuse stays exact).
    """

    def __init__(
        self,
        model: TransformerLM,
        scheduler_config: SchedulerConfig | None = None,
        latency_model: LatencyModel | None = None,
        hardware: HardwareSpec | None = None,
        max_retained_outputs: int | None = None,
        enable_prefix_caching: bool = False,
        kv_block_size: int = 64,
        kv_pool_blocks: int | None = None,
        cache_decoded_blocks: bool = False,
        swap_cpu_blocks: int | None = None,
        swap_disk_blocks: int | None = None,
        enable_disk_spill: bool = True,
    ) -> None:
        self.model = model
        self.scheduler: ContinuousBatchingScheduler[_RequestState] = (
            ContinuousBatchingScheduler(scheduler_config)
        )
        self.latency = latency_model or LatencyModel(
            hardware or HardwareSpec.paper_testbed(), model.config
        )
        self.metrics = EngineMetrics()
        #: oldest finished outputs (which pin their request's KVCache and
        #: per-step logits) are evicted beyond this count; ``None`` retains
        #: everything — fine for batch jobs, set a bound for long-lived
        #: serving loops or call :meth:`release` per request.  Under a
        #: *bounded* pool, retained outputs do not block progress either
        #: way: their pool references are reclaimed automatically under
        #: pressure (the outputs stay readable via the assembled mirrors).
        self.max_retained_outputs = max_retained_outputs
        self.block_allocator: BlockAllocator | None = None
        self.prefix_cache: PrefixCache | None = None
        self.swap_space: SwapSpace | None = None
        self.cache_decoded_blocks = cache_decoded_blocks
        #: prefix-cache spill counters already charged to the clock (the
        #: spill/restore work happens inside eviction hooks and lookups, so
        #: the engine settles its transfer time from stat deltas)
        self._spill_settled = {"out_blocks": 0, "in_blocks": 0,
                               "out_payload": 0, "in_payload": 0}
        if enable_prefix_caching:
            config = model.config
            self.block_allocator = BlockAllocator(
                config.num_layers,
                config.num_kv_heads,
                config.head_dim,
                block_size=kv_block_size,
                capacity_blocks=kv_pool_blocks,
            )
            self.swap_space = SwapSpace(
                cpu_capacity_blocks=swap_cpu_blocks,
                disk_capacity_blocks=swap_disk_blocks,
            )
            self.prefix_cache = PrefixCache(
                self.block_allocator,
                spill_store=self.swap_space if enable_disk_spill else None,
            )
            self.block_allocator.eviction_hook = self.prefix_cache.evict
        self._states: dict[str, _RequestState] = {}
        self._seen_ids: set[str] = set()
        self._final_outputs: dict[str, RequestOutput] = {}

    # ------------------------------------------------------------- intake

    def submit(self, request: Request) -> str:
        """Queue a request for admission; returns its id."""
        if request.request_id in self._seen_ids:
            raise ConfigurationError(
                f"duplicate request id {request.request_id!r}"
            )
        state = _RequestState(
            request,
            arrival_time=self.metrics.clock,
            seq=self.metrics.requests_submitted,
        )
        self._seen_ids.add(request.request_id)
        self._states[request.request_id] = state
        self.scheduler.submit(state)
        self.metrics.requests_submitted += 1
        return request.request_id

    #: alias matching the common serving-engine vocabulary
    add_request = submit

    @property
    def has_unfinished(self) -> bool:
        return self.scheduler.has_work

    @property
    def num_waiting(self) -> int:
        return self.scheduler.num_waiting

    @property
    def num_running(self) -> int:
        return self.scheduler.num_running

    # --------------------------------------------------------------- step

    def step(self) -> list[RequestOutput]:
        """Run one engine step: admissions + prefill work + one decode round.

        Unchunked: admitted requests prefill their whole prompt.  Chunked:
        the scheduler's per-step token budget is spread over the batch's
        ``PREFILLING`` requests and each allocation advances that request by
        one chunk.  Either way, every fully-prefilled running request then
        gets a decode round.

        Returns one :class:`RequestOutput` per touched request, carrying the
        tokens that became available during this step (streaming deltas).
        """
        decision = self.scheduler.schedule()
        if not decision.decodes and not decision.admitted and not decision.prefill_chunks:
            return []
        self.metrics.steps += 1
        new_tokens: dict[str, list[int]] = {}
        chunked = self.scheduler.config.chunked_prefill_enabled

        touched: list[_RequestState] = []

        def touch(state: _RequestState) -> None:
            if state not in touched:
                touched.append(state)

        for state in decision.admitted:
            if not self.scheduler.contains_running(state):
                # An earlier admission's memory reservation preempted this
                # request before it was processed; it is back in the waiting
                # queue and will be re-admitted on a later step.
                continue
            if state.status is RequestStatus.SWAPPED:
                # Re-admission of a swap-preempted request: restore its block
                # chain first, then let the chunk/decode phases pick it up.
                # A request parked mid-prefill resumes as PREFILLING; without
                # chunking no later phase would prefill it, so finish its
                # monolithic prefill here.
                if self._resume_swapped(state):
                    touch(state)
                    if not chunked and state.status is RequestStatus.PREFILLING:
                        self._run_monolithic_prefill(state, new_tokens)
                continue
            if state.status is RequestStatus.PREEMPTED:
                # Recompute-preempted: restart through the normal admission
                # path (fresh policy, fresh prefill, possibly a prefix-cache
                # hit on its own earlier chain); generated tokens replay.
                state.status = RequestStatus.WAITING
            self._begin_prefill(state)
            touch(state)
            if not chunked:
                self._run_monolithic_prefill(state, new_tokens)
            elif state.remaining_prefill_tokens == 0 and state.prefill is None:
                # Precomputed prefill (e.g. the eval harness): nothing to
                # chunk, the request completes its prefill phase immediately.
                self._complete_prefill(state, self._resolve_prefill(state), new_tokens)

        for state, num_tokens in decision.prefill_chunks:
            if state.status is not RequestStatus.PREFILLING:
                continue  # preempted (or resume failed) earlier this step
            self._run_prefill_chunk(state, num_tokens, new_tokens)
            touch(state)

        for state in decision.decodes:
            if not state.finished and state.status is RequestStatus.RUNNING:
                touch(state)
                self._run_decode_round(state, new_tokens)

        # Backstop settlement: spills triggered by allocation hooks inside
        # the model's own appends (rare — reservations normally cover them).
        self._settle_spill_traffic()

        outputs: list[RequestOutput] = []
        for state in touched:
            output = self._make_output(state, new_tokens.get(state.request.request_id, []))
            outputs.append(output)
            if state.finished:
                self._cache_decoded_blocks(state)
                self.scheduler.finish(state)
                # The heavyweight per-request state (KVCache, logits) now
                # lives only in the final output, subject to the retention
                # bound below.
                del self._states[state.request.request_id]
                self._final_outputs[state.request.request_id] = output
                self.metrics.requests_finished += 1
        self._trim_retained_outputs()
        return outputs

    def _trim_retained_outputs(self) -> None:
        """Evict the oldest retained finals beyond the retention bound."""
        if self.max_retained_outputs is None:
            return
        while len(self._final_outputs) > self.max_retained_outputs:
            output = self._final_outputs.pop(next(iter(self._final_outputs)))
            self._release_blocks(output)

    @staticmethod
    def _release_blocks(output: RequestOutput | None) -> None:
        """Return a retained output's shared KV blocks to the pool.

        The assembled per-layer mirrors stay readable, so the output itself
        remains fully usable; only the refcounts on the shared block pool are
        dropped (cached prefix entries keep their own references).
        """
        if output is None or output.prefill is None:
            return
        kvcache = output.prefill.kvcache
        if isinstance(kvcache, PagedKVCache):
            kvcache.release()

    def stream(self) -> Iterator[RequestOutput]:
        """Drive the engine to completion, yielding every streamed output."""
        while self.has_unfinished:
            yield from self.step()

    def run(
        self, requests: Iterable[Request] | None = None
    ) -> dict[str, RequestOutput]:
        """Submit ``requests`` (if given), drain the engine, return finals.

        Returns a mapping ``request_id -> final RequestOutput`` for every
        request that finished during this call (independently of the
        ``max_retained_outputs`` bound, which only governs what the engine
        keeps pinned afterwards).
        """
        if requests is not None:
            for request in requests:
                self.submit(request)
        finals: dict[str, RequestOutput] = {}
        while self.has_unfinished:
            for output in self.step():
                if output.finished:
                    finals[output.request_id] = output
        return finals

    def final_output(self, request_id: str) -> RequestOutput:
        """Final output of a finished request."""
        try:
            return self._final_outputs[request_id]
        except KeyError:
            raise ConfigurationError(
                f"request {request_id!r} has not finished (or does not exist)"
            ) from None

    def release(self, request_id: str) -> None:
        """Drop a finished request's retained output (frees its KVCache)."""
        self._release_blocks(self._final_outputs.pop(request_id, None))

    def abort(self, request_id: str) -> RequestOutput:
        """Cancel an unfinished request and free its scheduler slot.

        Works on requests in any pre-finished state: still waiting, mid-way
        through a chunked prefill (the partially-filled KVCache is dropped),
        or decoding.  The request finishes immediately with
        ``finish_reason="aborted"`` and the returned final
        :class:`RequestOutput` carries whatever tokens were generated before
        the abort.

        Args:
            request_id: id of the request to cancel.

        Returns:
            The final (aborted) output, also retained like any finished
            output.

        Raises:
            ConfigurationError: if the request is unknown or already finished.
        """
        state = self._states.get(request_id)
        if state is None:
            raise ConfigurationError(
                f"request {request_id!r} is not active (unknown or finished)"
            )
        self.scheduler.remove(state)
        if state.swap_handle is not None:
            # Aborted while swapped out: the parked chain will never be
            # restored, so drop it from the swap space.
            assert self.swap_space is not None
            self.swap_space.discard(state.swap_handle)
            state.swap_handle = None
        state.prefill_state = None  # drop the partial KVCache
        if state.paged is not None and state.prefill is None:
            # Aborted mid-prefill: the partial paged cache will never be
            # retained, so return its blocks to the pool right away.
            state.paged.release()
        self._finish(state, "aborted")
        output = self._make_output(state, [])
        del self._states[request_id]
        self._final_outputs[request_id] = output
        self.metrics.requests_aborted += 1
        self._trim_retained_outputs()
        return output

    # ------------------------------------------------------------ prefill

    def _begin_prefill(self, state: _RequestState) -> None:
        """Admission bookkeeping: build the policy, resolve its profile.

        Also the re-entry point after recompute-preemption: the policy is
        rebuilt from its spec (deterministically equal to the original) and
        the prefix lookup runs again, typically hitting the chain this
        request itself inserted before being preempted.
        """
        state.status = RequestStatus.PREFILLING
        if state.metrics.prefill_start is None:
            state.metrics.prefill_start = self.metrics.clock
        if state.request.policy_spec is not None and state.policy is None:
            state.policy = state.request.policy_spec.build()
        state.method = resolve_method(
            state.policy.name if state.policy is not None else None,
            is_dropping=state.policy.is_dropping if state.policy is not None else False,
        )
        if self.prefix_cache is not None and state.request.prefill is None:
            self._setup_prefix(state)

    def _setup_prefix(self, state: _RequestState) -> None:
        """Prefix-cache lookup + paged-KVCache construction for one request.

        Decides the reuse length ``R``:

        * policies that read prefill aggregates (and full attention, whose
          final output exposes them) may only resume at a boundary where the
          accumulated-score state was snapshotted exactly, capped so the
          SnapKV-style observation window stays entirely in the recomputed
          suffix — both conditions keep the resumed aggregates bitwise equal
          to a cold prefill's;
        * aggregate-free policies (PQCache) reuse every matched full block,
          up to ``len(prompt) - 1`` (at least one token must be processed to
          produce the first-token logits).

        Then forks the matched block chain copy-on-write and, when the
        policy can, attaches the cached PQ artifacts.
        """
        assert self.prefix_cache is not None and self.block_allocator is not None
        request = state.request
        policy = state.policy
        prompt_len = len(request.prompt_ids)
        block = self.block_allocator.block_size
        observation = request.sampling.observation_window
        fingerprint = policy.prefix_fingerprint() if policy is not None else None
        needs_aggregates = (
            policy.needs_prefill_aggregates if policy is not None else True
        )

        # Cap the lookup at what this request could actually attach, so a
        # long spilled chain is never restored from disk past the usable
        # prefix: aggregate-reading policies can resume at most before their
        # observation window; aggregate-free ones reuse up to all but the
        # last prompt token.
        useful_cap = (
            prompt_len - observation if needs_aggregates else prompt_len - 1
        )
        match = self.prefix_cache.match(
            request.prompt_ids, fingerprint,
            max_useful_tokens=max(useful_cap, 0),
        )
        # The lookup may have restored spilled chains from the disk tier;
        # charge that traffic before this request's TTFT accrues.
        self._settle_spill_traffic()
        self.metrics.prefix_cache_queries += 1
        self.metrics.prefix_prompt_tokens += prompt_len

        reuse = 0
        acc_scores = None
        if match is not None:
            if needs_aggregates:
                limit = min(match.matched_tokens, prompt_len - observation)
                candidates = [b for b in match.acc_boundaries if b <= limit]
                if candidates:
                    reuse = max(candidates)
                    acc_scores = match.acc_boundaries[reuse]
            else:
                reuse = min(match.matched_tokens, prompt_len - 1)
                acc_scores = match.acc_boundaries.get(reuse)

        if reuse > 0:
            num_blocks = -(-reuse // block)
            table = BlockTable.fork_from(
                self.block_allocator, match.block_ids[:num_blocks]
            )
            state.paged = PagedKVCache(
                self.block_allocator, prefix_table=table, prefix_len=reuse
            )
            state.cached_prefix = reuse
            state.prefix_acc = acc_scores
            self.metrics.prefix_cache_hits += 1
            self.metrics.prefix_cache_hit_tokens += reuse
            if match.pq_snapshot is not None and policy is not None:
                policy.attach_prefix(
                    self.model.config, state.paged, match.pq_snapshot, reuse
                )
        else:
            state.paged = PagedKVCache(self.block_allocator)
        state.metrics.cached_prefix_tokens = reuse

        # Boundary at which this request's own accumulated-score state will
        # be snapshotted for future consumers: the largest block-aligned
        # point that leaves the observation window in the suffix, if it
        # covers queries this request actually computes.  A request that
        # resumed *without* an exact accumulated-score init (the
        # aggregate-free long-reuse path) must not capture at all — its scan
        # is missing the cached-prefix queries' contributions, and caching
        # that snapshot would poison later aggregate-consuming resumes.
        capture = ((prompt_len - observation) // block) * block
        if capture > state.cached_prefix and (
            state.cached_prefix == 0 or state.prefix_acc is not None
        ):
            state.acc_capture = capture

    def _resolve_prefill(self, state: _RequestState) -> PrefillResult:
        """Prefill result of a request that needs no (more) model work."""
        assert state.request.prefill is not None
        return state.request.prefill

    def _make_prefill_state(self, state: _RequestState) -> PrefillState:
        """Begin the model-side prefill, resuming from a cached prefix."""
        request = state.request
        kwargs: dict = {}
        if state.paged is not None:
            kwargs["kvcache"] = state.paged
            if state.cached_prefix > 0:
                kwargs["prefix_len"] = state.cached_prefix
                kwargs["prefix_acc_scores"] = state.prefix_acc
            if state.acc_capture:
                kwargs["acc_snapshot_boundaries"] = [state.acc_capture]
        return self.model.begin_prefill(
            request.prompt_ids,
            observation_window=request.sampling.observation_window,
            **kwargs,
        )

    def _run_monolithic_prefill(
        self, state: _RequestState, new_tokens: dict[str, list[int]]
    ) -> None:
        """Legacy unchunked path: the whole prompt in the admission step."""
        request = state.request
        if request.prefill is not None:
            prefill = request.prefill
        elif state.paged is not None:
            # Paged/prefix-cached requests always run through the resumable
            # API so cache-hit tokens are skipped; without chunking the whole
            # remainder is one chunk (charged through the chunk clock, which
            # telescopes to the monolithic charge on a cold cache).
            self._run_prefill_chunk(
                state, state.remaining_prefill_tokens, new_tokens
            )
            return
        else:
            prefill = self.model.prefill(
                request.prompt_ids,
                observation_window=request.sampling.observation_window,
            )
        self._complete_prefill(state, prefill, new_tokens)

    def _run_prefill_chunk(
        self, state: _RequestState, num_tokens: int, new_tokens: dict[str, list[int]]
    ) -> None:
        """Advance a chunked-prefill request by one scheduled chunk."""
        request = state.request
        if state.prefill_state is None:
            state.prefill_state = self._make_prefill_state(state)
        prefix = state.prefill_state.num_processed
        if state.paged is not None:
            # Reserve the blocks this chunk will write before the model
            # starts appending — under pool pressure this evicts/spills cold
            # prefix chains and preempts younger victims, so the chunk
            # itself can never fail half-written.  When an older request
            # needs the pool more, this request parks itself instead.
            take = min(num_tokens, state.prefill_state.remaining_tokens)
            if not self._ensure_blocks(state, self._append_blocks_needed(state, take)):
                self._preempt_victim(state)
                return
        processed = self.model.prefill_chunk(state.prefill_state, num_tokens)
        state.chunk_lens.append(processed)
        state.metrics.prefill_chunks += 1
        self.metrics.prefill_chunks += 1

        # Per-chunk clock charge: the chunk's GPU compute.  Offload and PQ
        # construction overlap on other resources; their non-hidable residual
        # is settled at completion from the overlapped chunk timeline.
        seconds = self.latency.prefill_chunk_seconds(processed, prefix, state.method)
        self.metrics.clock += seconds
        state.chunk_seconds += seconds
        state.metrics.prefill_seconds += seconds

        if state.policy is not None and state.policy.supports_incremental_prefill:
            state.policy.on_prefill_chunk(
                self.model.config,
                state.prefill_state.kvcache,
                prefix,
                prefix + processed,
                state.prefill_state.seq_len,
            )

        if state.prefill_state.is_complete:
            prefill = self.model.finish_prefill(state.prefill_state)
            timeline = self.latency.chunked_prefill_timeline(
                state.chunk_lens,
                state.method,
                cached_prefix_tokens=state.cached_prefix,
            )
            # Split the overlap residual at the first-token-ready point: the
            # prompt's logits exist once the last GPU compute task ends, so
            # only the compute-side residual precedes TTFT; the construction
            # tail beyond it (offload/encode/refine that compute could not
            # hide) gates the first *retrieval* and is charged after the
            # first token is stamped (the paper's TT2T argument — this is
            # also what makes a prefix-cache hit's TTFT reflect the skipped
            # prefix compute rather than the full-prompt refine, which both
            # hit and cold paths still pay before their first decode step).
            gpu_ready = max(
                timeline.resource_makespan("gpu"), state.chunk_seconds
            )
            compute_residual = gpu_ready - state.chunk_seconds
            if compute_residual > 0.0:
                self.metrics.clock += compute_residual
                state.metrics.prefill_seconds += compute_residual
            state.construction_tail = max(timeline.makespan - gpu_ready, 0.0)
            state.prefill_state = None
            self._complete_prefill(state, prefill, new_tokens)

    def _complete_prefill(
        self,
        state: _RequestState,
        prefill: PrefillResult,
        new_tokens: dict[str, list[int]],
    ) -> None:
        """Shared tail of both prefill modes: policy state, clock, first token."""
        request = state.request
        state.prefill = prefill
        state.status = RequestStatus.RUNNING

        if state.policy is not None:
            # finish_prefill refines incrementally-built state (PQCache under
            # chunked prefill) and defers to on_prefill for everything else.
            state.policy.finish_prefill(self.model.config, prefill)

        if self.prefix_cache is not None and state.paged is not None:
            # Cache the prompt's full blocks plus the reusable artifacts:
            # the accumulated-score snapshot at its capture boundary and the
            # policy's pre-refine PQ state (both shared by reference).
            acc_scores = (
                prefill.acc_snapshots.get(state.acc_capture)
                if state.acc_capture
                else None
            )
            fingerprint = (
                state.policy.prefix_fingerprint()
                if state.policy is not None
                else None
            )
            snapshot = (
                state.policy.prefix_snapshot()
                if state.policy is not None
                else None
            )
            self.prefix_cache.insert(
                request.prompt_ids,
                state.paged.table.block_ids,
                acc_boundary=state.acc_capture if acc_scores is not None else 0,
                acc_scores=acc_scores,
                pq_fingerprint=fingerprint,
                pq_snapshot=snapshot,
            )

        if not state.chunk_lens:
            # Monolithic prefill charges the whole overlapped makespan once.
            seconds = self.latency.prefill_timeline(
                prefill.seq_len, state.method
            ).makespan
            self.metrics.clock += seconds
            state.metrics.prefill_seconds = seconds
            state.metrics.prefill_chunks = 1
        self.metrics.prefills += 1

        # The first token exists as soon as prefilling ends — for sampled
        # requests it is emitted right away; for teacher-forced requests it
        # is the externally-supplied token that the first decode round will
        # process, so TTFT is the same point on the clock (this used to be
        # skipped, reporting TTFT as 0 for every eval-harness run).  A
        # recompute-preempted request keeps its original TTFT: the client
        # received that token before the preemption.
        if state.metrics.first_token_time is None:
            state.metrics.first_token_time = self.metrics.clock

        if state.construction_tail > 0.0:
            # The non-hidable construction tail (chiefly the full-prompt PQ
            # refinement) completes after the first token exists but before
            # the first retrieval, so it lands on the clock *after* TTFT was
            # stamped and before any decode round — and before a stop-token
            # finish stamps finish_time, keeping e2e >= prefill_seconds.
            self.metrics.clock += state.construction_tail
            state.metrics.prefill_seconds += state.construction_tail
            state.construction_tail = 0.0

        if state.forced is None:
            first = state.pick_token(prefill.logits)
            if state.generated:
                # Recompute-resume replay: the first token was emitted before
                # the preemption; determinism requires the re-prefill to
                # reproduce it bit for bit.
                if first != state.generated[0]:
                    raise ConfigurationError(
                        "recompute replay diverged on the first token: "
                        f"{first} != {state.generated[0]}"
                    )
                return
            state.generated.append(first)
            state.metrics.num_generated_tokens += 1
            self.metrics.generated_tokens += 1
            new_tokens.setdefault(request.request_id, []).append(first)
            if state.is_stop(first):
                # The stop token is emitted but never decoded.
                self._finish(state, "stop")

    # ------------------------------------------------------------- decode

    def _run_decode_round(self, state: _RequestState, new_tokens: dict[str, list[int]]) -> None:
        assert state.prefill is not None
        request = state.request
        policy = state.policy
        cache = state.prefill.kvcache
        if state.paged is not None and not state.paged.released:
            # One appended token may need a fresh tail block and/or a COW
            # copy of a shared tail block; reserve before the model writes.
            # If an older request owns the pool, park and resume later.
            if not self._ensure_blocks(state, self._append_blocks_needed(state, 1)):
                self._preempt_victim(state)
                return
        token = state.next_input_token()

        step_selections: StepSelections = []
        attended: list[float] = []
        num_kv_heads = self.model.config.num_kv_heads
        hook = request.selection_hook

        selector = None
        if policy is not None or hook is not None:

            def selector(layer_index: int, query: np.ndarray, kvcache: KVCache):
                chosen = (
                    policy.select(layer_index, query, kvcache)
                    if policy is not None
                    else None
                )
                if chosen is None:
                    normalised = None
                    attended.append(float(len(kvcache[layer_index])))
                elif isinstance(chosen, (list, tuple)):
                    normalised = [np.asarray(c, dtype=np.int64) for c in chosen]
                    attended.append(float(np.mean([c.size for c in normalised])))
                else:
                    arr = np.asarray(chosen, dtype=np.int64)
                    normalised = [arr] * num_kv_heads
                    attended.append(float(arr.size))
                if hook is not None:
                    hook(layer_index, query, kvcache, normalised)
                step_selections.append(normalised)
                return chosen

        logits = self.model.decode_step(token, cache, selector)
        if policy is not None:
            policy.on_decode_step(cache)
        state.num_decoded += 1
        state.step_logits.append(logits)
        state.selections.append(step_selections)
        self.metrics.decode_rounds += 1
        state.metrics.decode_steps += 1
        if selector is None:
            # Full attention without a policy: every cached token participates.
            attended = [float(cache.seq_len)] * self.model.config.num_layers
        state.metrics.attended_tokens += float(np.mean(attended)) if attended else 0.0

        seq_len = cache.seq_len
        hit_rate = self._gpu_cache_hit_rate(policy)
        if policy is not None:
            comm = policy.step_communication_bytes(seq_len)
            state.metrics.comm_overlappable_bytes += comm.get("overlappable", 0.0)
            state.metrics.comm_blocking_bytes += comm.get("blocking", 0.0)
        seconds = self.latency.tpot(seq_len, state.method, cache_hit_rate=hit_rate)
        self.metrics.clock += seconds
        state.metrics.decode_seconds += seconds

        if state.forced is not None:
            if state.num_decoded >= len(state.forced):
                self._finish(state, "length")
            return

        next_token = state.pick_token(logits)
        if state.num_decoded >= request.sampling.max_new_tokens:
            self._finish(state, "length")
            return
        if state.num_decoded < len(state.generated):
            # Recompute-resume replay: this round re-derived a token that was
            # already emitted before the preemption — verify determinism and
            # do not re-emit or re-count it.
            if next_token != state.generated[state.num_decoded]:
                raise ConfigurationError(
                    f"recompute replay diverged at decode step "
                    f"{state.num_decoded}: {next_token} != "
                    f"{state.generated[state.num_decoded]}"
                )
            return
        state.generated.append(next_token)
        state.metrics.num_generated_tokens += 1
        self.metrics.generated_tokens += 1
        new_tokens.setdefault(request.request_id, []).append(next_token)
        if state.is_stop(next_token):
            self._finish(state, "stop")

    # --------------------------------------------------- pool pressure

    def _block_nbytes(self) -> int:
        """Modelled bytes of one pool block at the model's dtype width."""
        assert self.block_allocator is not None
        return self.block_allocator.block_nbytes(self.model.config.dtype_bytes)

    def _append_blocks_needed(self, state: _RequestState, num_tokens: int) -> int:
        """Pool blocks an append of ``num_tokens`` will allocate.

        Mirrors :meth:`PagedKVCache._write_blocks` exactly: new tail blocks
        as the write range crosses block boundaries, plus one copy-on-write
        clone when the partially-filled tail block is shared with another
        holder (the prefix cache or a forked request).
        """
        assert state.paged is not None
        allocator = state.paged.allocator
        block = allocator.block_size
        cur = len(state.paged)
        table = state.paged.table.block_ids
        needed = -(-(cur + num_tokens) // block) - len(table)
        if cur % block != 0 and len(table) > cur // block:
            if allocator.refcount(table[cur // block]) > 1:
                needed += 1
        return max(needed, 0)

    def _ensure_blocks(self, state: _RequestState, needed: int) -> bool:
        """Reserve ``needed`` free pool blocks for ``state``'s next write.

        Escalation order under pressure: (1) evict/spill cold prefix-cache
        chains, (2) release the pool references of retained *finished*
        outputs, oldest first (their assembled mirrors stay readable, and
        blocks the prefix cache shares become evictable on the next pass),
        (3) preempt victim requests submitted *after* ``state``
        (``victim_policy`` order among them, skipping requests that hold no
        pool blocks).  The age restriction is the progress guarantee: the
        oldest active request can take blocks from everyone, so it always
        completes, then the next oldest, and so on — two requests can never
        preempt each other back and forth without anybody finishing.

        Returns ``False`` when the demand cannot be met but an *older*
        request is still active (the caller parks ``state``; the older
        request will free blocks by finishing).  Raises
        :class:`~repro.errors.CapacityError` when ``state`` is the oldest
        active request and its demand exceeds the pool even with everything
        else preempted and spilled — genuine infeasibility.
        """
        allocator = self.block_allocator
        if (
            needed <= 0
            or allocator is None
            or allocator.capacity_blocks is None
        ):
            return True
        exclude: list[_RequestState] = [state]
        while True:
            available = allocator.num_available
            assert available is not None
            if available >= needed:
                return True
            if self.prefix_cache is not None:
                freed = self.prefix_cache.evict(needed - available)
                self._settle_spill_traffic()
                if freed > 0:
                    continue
            if self._reclaim_retained_blocks():
                continue
            if self._materialize_swapped_pins(exclude=state):
                continue
            victim = None
            while True:
                candidate = self.scheduler.pick_victim(exclude=tuple(exclude))
                if candidate is None:
                    break
                exclude.append(candidate)
                if (
                    candidate.seq > state.seq
                    and candidate.paged is not None
                    and candidate.paged.table.block_ids
                    and not candidate.paged.table.released
                ):
                    victim = candidate
                    break
            if victim is None:
                if self._degrade_swapped_to_recompute(exclude=state):
                    continue
                if any(
                    other.seq < state.seq for other in self._states.values()
                ):
                    return False
                raise CapacityError(
                    f"KV pool cannot supply {needed} blocks for request "
                    f"{state.request.request_id!r}: "
                    f"{allocator.num_allocated}/{allocator.capacity_blocks} "
                    "blocks in use with nothing left to evict or preempt"
                )
            if not self._preempt_victim(victim):
                continue  # victim unswappable right now; try the next one

    def _reclaim_retained_blocks(self) -> bool:
        """Release one retained finished output's pool references.

        Finished work is the cheapest thing to reclaim under pressure: the
        output's assembled per-layer mirrors stay fully readable (the same
        contract as :meth:`release`), only the shared pool references are
        dropped.  Oldest retained output first; one at a time so the caller
        re-checks availability (a released block shared with the prefix
        cache merely becomes evictable/spillable on the next pass).
        """
        for output in self._final_outputs.values():
            kvcache = output.prefill.kvcache if output.prefill is not None else None
            if isinstance(kvcache, PagedKVCache) and not kvcache.released:
                kvcache.release()
                return True
        return False

    def _materialize_swapped_pins(
        self, exclude: "_RequestState | None" = None
    ) -> bool:
        """Copy one swapped request's pinned shared blocks into the tiers.

        A swap-preempted request normally keeps *shared* blocks GPU-resident
        by reference (no copy, sharing preserved on resume).  Under extreme
        pressure those pins can stand between an older request and the pool:
        dropping them — after copying the contents down the hierarchy — lets
        the other holder (typically the prefix cache) evict or spill the
        blocks on the next escalation pass.  One handle at a time; the
        copied bytes are billed like any swap-out.  ``exclude`` protects the
        request the reservation is *for* — materialising its own handle
        mid-resume would grow the very allocation it is reserving.
        """
        if self.swap_space is None:
            return False
        for state in self._states.values():
            if state is exclude:
                continue
            handle = state.swap_handle
            if handle is None or not handle.pinned_blocks:
                continue
            demoted_before = self.swap_space.stats.demoted
            moved = self.swap_space.materialize_pins(handle)
            block_bytes = self._block_nbytes()
            nbytes = float(moved * block_bytes)
            demoted_bytes = float(
                (self.swap_space.stats.demoted - demoted_before) * block_bytes
            )
            if handle.tier == "disk":
                demoted_bytes += nbytes
            if nbytes > 0.0 or demoted_bytes > 0.0:
                # Bill every transfer that actually landed — including
                # demotions a materialisation forced before running out of
                # tier room (moved can be 0 with demoted bytes > 0).
                seconds = self.latency.swap_out_seconds(nbytes, demoted_bytes)
                self.metrics.clock += seconds
                self.metrics.swap_seconds += seconds
            if moved == 0:
                continue
            self.metrics.swap_out_blocks += moved
            self.metrics.swap_out_bytes += nbytes
            state.metrics.swap_out_bytes += nbytes
            state.metrics.swap_seconds += seconds
            return True
        return False

    def _preempt_victim(self, victim: _RequestState) -> bool:
        """Preempt one running request according to the configured mode.

        Recompute requires the victim's policy to be rebuildable from its
        spec and its prompt to be re-runnable through the model; victims
        that fail either condition (instance-wrapped policies, precomputed
        prefills, selection-hook observers that must not fire twice) are
        swapped instead.  When the swap tiers cannot absorb the chain the
        victim falls back to recompute if it can; a victim that can be
        neither swapped nor recomputed right now is left running and
        ``False`` is returned (the caller tries another victim).
        """
        mode = self.scheduler.config.preemption_mode
        recomputable = self._recomputable(victim)
        if mode == "recompute" and recomputable:
            self._preempt_recompute(victim)
            return True
        if self._preempt_swap(victim):
            return True
        if recomputable:
            # Swap tiers full: dropping and replaying still relieves the pool.
            self._preempt_recompute(victim)
            return True
        return False

    def _preempt_swap(self, victim: _RequestState) -> bool:
        """Swap a victim's block chain to the CPU tier and park the request.

        The chain contents are copied into the swap space (cold CPU entries
        cascading to disk), the pool references are dropped, and the request
        moves to the front of the waiting queue in the ``SWAPPED`` state;
        re-admission restores the chain bitwise via :meth:`_resume_swapped`.
        The simulated clock is charged the D2H transfer plus any demotion
        writes the swap-out forced.  Returns ``False`` — with the victim
        untouched on the GPU, and any partial demotions still charged —
        when the swap tiers cannot absorb the chain.
        """
        assert (
            self.block_allocator is not None
            and self.swap_space is not None
            and victim.paged is not None
        )
        demoted_before = self.swap_space.stats.demoted
        try:
            handle = self.swap_space.swap_out(
                self.block_allocator, victim.paged.table.block_ids, tier="cpu"
            )
        except CapacityError:
            demoted_bytes = float(
                (self.swap_space.stats.demoted - demoted_before)
                * self._block_nbytes()
            )
            if demoted_bytes > 0.0:
                # Demotions that did land before the failure really moved
                # bytes to disk; bill them even though the swap-out aborted.
                seconds = self.latency.swap_out_seconds(0.0, demoted_bytes)
                self.metrics.clock += seconds
                self.metrics.swap_seconds += seconds
            return False
        victim.paged.table.release()
        victim.swap_handle = handle
        victim.resume_status = victim.status
        victim.status = RequestStatus.SWAPPED
        self.scheduler.preempt(victim)

        # Only the *stored* positions moved bytes — shared blocks stayed
        # GPU-resident under their pins and cost nothing to park.
        block_bytes = self._block_nbytes()
        nbytes = float(handle.stored_blocks * block_bytes)
        demoted_bytes = float(
            (self.swap_space.stats.demoted - demoted_before) * block_bytes
        )
        seconds = self.latency.swap_out_seconds(nbytes, demoted_bytes)
        self.metrics.clock += seconds
        self.metrics.preemptions += 1
        self.metrics.preemptions_swap += 1
        self.metrics.swap_out_blocks += handle.stored_blocks
        self.metrics.swap_out_bytes += nbytes
        self.metrics.swap_seconds += seconds
        victim.metrics.preemptions += 1
        victim.metrics.swap_out_bytes += nbytes
        victim.metrics.swap_seconds += seconds
        return True

    @staticmethod
    def _recomputable(state: _RequestState) -> bool:
        """Whether a request can be rebuilt + replayed deterministically."""
        spec = state.request.policy_spec
        return (
            (spec is None or spec.supports_rebuild)
            and state.request.prefill is None
            and state.request.selection_hook is None
        )

    @staticmethod
    def _strip_for_recompute(state: _RequestState) -> int:
        """Drop a request's KV and policy state ahead of a recompute restart.

        Returns the number of already-processed tokens being thrown away.
        The generated tokens are kept for the deterministic replay.
        """
        thrown_away = len(state.paged) if state.paged is not None else 0
        if state.policy is not None:
            state.policy.release_prefix()
            state.policy = None
        if state.paged is not None:
            state.paged.release()
            state.paged = None
        state.prefill = None
        state.prefill_state = None
        state.cached_prefix = 0
        state.prefix_acc = None
        state.acc_capture = 0
        state.construction_tail = 0.0
        state.chunk_lens = []
        state.chunk_seconds = 0.0
        state.num_decoded = 0
        state.step_logits = []
        state.selections = []
        state.status = RequestStatus.PREEMPTED
        return thrown_away

    def _preempt_recompute(self, victim: _RequestState) -> None:
        """Drop a victim's KV and policy state; it will recompute on resume.

        The generated tokens are kept: after re-prefilling (its own cached
        chain usually makes that a prefix hit) the request replays them
        through the ordinary decode path, reproducing logits and selections
        bit for bit before new tokens are generated.
        """
        assert victim.paged is not None
        thrown_away = self._strip_for_recompute(victim)
        self.scheduler.preempt(victim)
        self.metrics.preemptions += 1
        self.metrics.preemptions_recompute += 1
        victim.metrics.preemptions += 1
        victim.metrics.recomputed_tokens += thrown_away

    def _degrade_swapped_to_recompute(
        self, exclude: "_RequestState | None" = None
    ) -> bool:
        """Demote one parked ``SWAPPED`` request to recompute-on-resume.

        The last escalation rung before giving up: when the swap tiers have
        no room to materialise pins, a parked request's pinned shared blocks
        can stand between an older request and the pool.  Discarding the
        handle releases the pins (the prefix cache regains the power to
        spill those blocks) and frees the tier room its stored copies held;
        the request — already in the waiting queue — restarts through the
        deterministic recompute/replay path instead of a swap-in.
        """
        if self.swap_space is None:
            return False
        for state in self._states.values():
            if (
                state is exclude
                or state.swap_handle is None
                or not self._recomputable(state)
            ):
                continue
            self.swap_space.discard(state.swap_handle)
            state.swap_handle = None
            thrown_away = self._strip_for_recompute(state)
            # A degradation is a preemption event of its own (the request is
            # preempted a second time, in the other mode), so the per-mode
            # counters keep summing to the total.
            self.metrics.preemptions += 1
            self.metrics.preemptions_recompute += 1
            state.metrics.preemptions += 1
            state.metrics.recomputed_tokens += thrown_away
            return True
        return False

    def _resume_swapped(self, state: _RequestState) -> bool:
        """Swap a re-admitted request's chain back into the pool.

        When an older request owns the pool, the request stays swapped and
        parks at the *back* of the waiting queue (the older requests get a
        chance to finish and free blocks first).  A chain whose demand
        genuinely exceeds the pool — no older request left to defer to —
        surfaces as a :class:`~repro.errors.CapacityError` from the
        reservation.
        """
        assert (
            state.swap_handle is not None
            and self.swap_space is not None
            and self.block_allocator is not None
            and state.paged is not None
        )
        handle = state.swap_handle
        # Pinned positions need no allocation — their blocks never left.
        try:
            reserved = self._ensure_blocks(state, handle.stored_blocks)
        except CapacityError:
            # Even as the oldest request the chain cannot come back — often
            # because its *own* pinned shared blocks (a prompt chain the
            # prefix cache fully indexed) are what fills the pool.  Degrade
            # to recompute: dropping the pins lets the cache spill those
            # blocks, and the deterministic replay restarts the request.  A
            # genuinely-too-big request still fails: its recompute prefill
            # raises the same CapacityError at the first chunk.
            if not self._recomputable(state):
                raise
            self.swap_space.discard(handle)
            state.swap_handle = None
            thrown_away = self._strip_for_recompute(state)
            self.metrics.preemptions += 1
            self.metrics.preemptions_recompute += 1
            state.metrics.preemptions += 1
            state.metrics.recomputed_tokens += thrown_away
            self.scheduler.preempt(state)
            return False
        if not reserved:
            # An older request owns the pool: stay swapped, park at the back
            # of the queue so others can finish and free blocks first.
            self.scheduler.preempt(state, requeue_front=False)
            return False
        was_on_disk = handle.tier == "disk"
        stored = handle.stored_blocks
        new_ids = self.swap_space.swap_in(handle, self.block_allocator)
        state.paged.table = BlockTable(self.block_allocator, new_ids)
        state.swap_handle = None
        state.status = state.resume_status

        block_bytes = self._block_nbytes()
        nbytes = float(stored * block_bytes)
        disk_bytes = nbytes if was_on_disk else 0.0
        seconds = self.latency.swap_in_seconds(nbytes, disk_bytes)
        self.metrics.clock += seconds
        self.metrics.swap_in_blocks += stored
        self.metrics.swap_in_bytes += nbytes
        self.metrics.swap_seconds += seconds
        state.metrics.swap_in_bytes += nbytes
        state.metrics.swap_seconds += seconds
        return True

    def _settle_spill_traffic(self) -> None:
        """Charge prefix-cache spill/restore transfers to the clock.

        Spills happen inside the allocator's eviction hook and restores
        inside prefix lookups, so the engine settles their PCIe/NVMe time
        from the cache's stat deltas: spilled KV crosses D2H then the disk
        write; restored KV is read from disk and crosses H2D; artifact
        payloads (accumulated scores, PQ snapshots) ride the disk leg only.
        """
        if self.prefix_cache is None or self.block_allocator is None:
            return
        stats = self.prefix_cache.stats
        seen = self._spill_settled
        out_blocks = stats.spilled_blocks - seen["out_blocks"]
        in_blocks = stats.restored_blocks - seen["in_blocks"]
        out_payload = stats.spilled_payload_bytes - seen["out_payload"]
        in_payload = stats.restored_payload_bytes - seen["in_payload"]
        if not (out_blocks or in_blocks or out_payload or in_payload):
            return
        seen["out_blocks"] = stats.spilled_blocks
        seen["in_blocks"] = stats.restored_blocks
        seen["out_payload"] = stats.spilled_payload_bytes
        seen["in_payload"] = stats.restored_payload_bytes
        block_bytes = self._block_nbytes()
        seconds = 0.0
        if out_blocks or out_payload:
            kv_bytes = float(out_blocks * block_bytes)
            seconds += self.latency.swap_out_seconds(
                kv_bytes, kv_bytes + float(out_payload)
            )
            self.metrics.spill_out_bytes += kv_bytes + float(out_payload)
        if in_blocks or in_payload:
            kv_bytes = float(in_blocks * block_bytes)
            seconds += self.latency.swap_in_seconds(
                kv_bytes, kv_bytes + float(in_payload)
            )
            self.metrics.spill_in_bytes += kv_bytes + float(in_payload)
        self.metrics.clock += seconds
        self.metrics.swap_seconds += seconds

    # ------------------------------------------------------------- finish

    def _cache_decoded_blocks(self, state: _RequestState) -> None:
        """Extend the request's cached chain with its decoded tokens.

        Opt-in (``cache_decoded_blocks``): a follow-up turn's prompt usually
        embeds this request's answer, so the blocks filled during decoding
        are prefix material too — but only *approximately*.  Decoded tokens'
        KV went through the decode kernel under this request's attention
        policy, so reusing it is not bitwise equal to a cold prefill of the
        same tokens; the engine therefore never caches the decoded region
        unless explicitly asked to.  Only KV content is cached (no aggregate
        or PQ payloads — those are prompt-prefix artifacts).
        """
        if (
            not self.cache_decoded_blocks
            or self.prefix_cache is None
            or state.paged is None
            or state.prefill is None
            or state.num_decoded == 0
        ):
            return
        decoded = (
            state.forced if state.forced is not None else state.generated
        )[: state.num_decoded]
        chain_ids = list(state.request.prompt_ids) + [int(t) for t in decoded]
        self.prefix_cache.insert(chain_ids, state.paged.table.block_ids)

    def _finish(self, state: _RequestState, reason: str) -> None:
        state.status = RequestStatus.FINISHED
        state.finish_reason = reason
        state.metrics.finish_time = self.metrics.clock
        if state.policy is not None:
            state.policy.release_prefix()

    @staticmethod
    def _gpu_cache_hit_rate(policy: KVCachePolicy | None) -> float:
        """GPU block-cache hit rate of the *current* decode step.

        Uses the per-step hit/miss split aggregated over this step's
        retrievals across all layers (not the cumulative lifetime rate) so
        the simulated TPOT reflects the PCIe traffic this step actually
        incurs; the cumulative rate stays available on ``stats.hit_rate``
        for reporting.
        """
        manager = getattr(policy, "manager", None)
        gpu_cache = getattr(manager, "gpu_cache", None)
        if gpu_cache is None or not gpu_cache.stats.lookups:
            return 0.0
        return float(gpu_cache.stats.step_hit_rate)

    def _make_output(self, state: _RequestState, fresh: list[int]) -> RequestOutput:
        final = state.finished
        return RequestOutput(
            request_id=state.request.request_id,
            new_token_ids=list(fresh),
            token_ids=list(state.generated),
            finished=final,
            finish_reason=state.finish_reason,
            metrics=state.metrics,
            logits=state.stacked_logits(self.model.config.vocab_size) if final else None,
            selections=list(state.selections) if final else None,
            prefill=state.prefill if final else None,
        )
