"""Shared-prefix cache over the paged KV block pool.

Concurrent requests that share a prompt prefix (a system prompt, a multi-turn
history) should not redo its prefill, k-means clustering, or PQ encoding.
This module provides the engine-side index that makes that reuse safe:

* Prompts are hashed **per block** with parent chaining (vLLM-style): the key
  of block *i* is ``H(key_{i-1}, tokens_i)``, so equal keys identify equal
  whole prefixes, not just equal blocks.  Every node additionally stores its
  raw token ids and verifies them on lookup — a hash collision therefore
  degrades to a cache miss (cold prefill), never to silent corruption.
* Each cached node holds one reference on its physical block in the
  :class:`~repro.llm.kvcache.BlockAllocator`; an attaching request forks the
  matched chain (increfs), and copy-on-write in
  :class:`~repro.llm.kvcache.PagedKVCache` protects the shared contents.
* Nodes can carry two kinds of *artifact payloads* beyond raw KV:
  accumulated-attention-score snapshots (the exact resume state policies
  that read prefill aggregates need) and per-policy
  :class:`~repro.core.pqcache.PQSnapshot` objects (sketch codebooks + codes,
  reused by reference instead of re-clustered).
* Eviction is LRU over leaf nodes: when the block pool runs dry mid-admission
  the allocator calls :meth:`PrefixCache.evict`, which walks least-recently
  used chains tail-first and drops nodes whose blocks nobody else references.
* With a *spill store* (:class:`~repro.llm.kvcache.SwapSpace`), eviction
  demotes cold chains to the disk tier instead of freeing them: the block
  contents (and, by reference, the attached artifact payloads) survive on
  NVMe, the pool block is returned, and a later match restores the chain
  into fresh pool blocks bitwise — or *re-adopts* the inserting request's
  own blocks for free when the same prompt comes back through ``insert``.
  PQ snapshots ride along nearly for free (codes are ~1/64th the KV bytes).
* Artifact payloads are reference-counted symmetrically: every node that
  stores a :class:`~repro.core.pqcache.PQSnapshot` takes a storage hold
  (:meth:`~repro.core.pqcache.PQSnapshot.retain`) and releases it when the
  node is evicted or the snapshot is replaced by a deeper one, so
  ``hold_count`` audits exactly the live cache references across arbitrary
  evict/re-insert cycles.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import CapacityError, ConfigurationError
from ..llm.kvcache import BlockAllocator, SwapSpace
from ..llm.kvcodec import EncodedKV, KVBlockCodec, RawCodec

__all__ = [
    "PrefixCache",
    "PrefixCacheStats",
    "PrefixMatch",
    "ExportedChain",
    "ExportedChainNode",
    "chain_block_keys",
]


def _default_hash(parent_key: bytes, tokens: np.ndarray) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(parent_key)
    digest.update(tokens.astype(np.int64).tobytes())
    return digest.digest()


def chain_block_keys(
    token_ids: Sequence[int],
    block_size: int,
    hash_fn: "Callable[[bytes, np.ndarray], bytes] | None" = None,
) -> list[bytes]:
    """Chain keys of a prompt's full blocks, in order.

    This is the *public* form of the cache's internal hashing: block ``i``'s
    key is ``H(key_{i-1}, tokens_i)`` starting from the root sentinel, so the
    returned keys are exactly the ones :class:`PrefixCache` publishes through
    its observer events.  A router can therefore score candidate workers'
    prefix coverage against a shared fingerprint directory without touching
    any worker's cache internals.
    """
    token_ids = np.asarray(list(token_ids), dtype=np.int64)
    hash_fn = hash_fn or _default_hash
    keys: list[bytes] = []
    key = PrefixCache._ROOT_KEY
    pos = 0
    while pos + block_size <= token_ids.size:
        key = hash_fn(key, token_ids[pos: pos + block_size])
        keys.append(key)
        pos += block_size
    return keys


class _Node:
    """One cached block: chain position, physical block, artifact payloads."""

    __slots__ = (
        "key", "parent", "children", "block_id", "depth", "token_ids",
        "last_used", "acc_scores", "pq_snapshots", "spill_handle",
    )

    def __init__(
        self,
        key: bytes,
        parent: "_Node | None",
        block_id: int,
        depth: int,
        token_ids: np.ndarray,
    ) -> None:
        self.key = key
        self.parent = parent
        self.children = 0
        self.block_id = block_id
        self.depth = depth            # blocks from the root, inclusive of self
        self.token_ids = token_ids    # this block's tokens (collision check)
        self.last_used = 0
        #: per-layer (num_heads, end_pos) accumulated-score snapshot valid at
        #: exactly this node's end position, or None
        self.acc_scores = None
        #: fingerprint -> PQSnapshot (sketch codebooks + codes)
        self.pq_snapshots: dict = {}
        #: :class:`~repro.llm.kvcache.SwappedBlocks` handle while the node's
        #: block content is parked on the disk tier (``block_id`` is invalid
        #: then), else None
        self.spill_handle = None

    @property
    def spilled(self) -> bool:
        return self.spill_handle is not None

    def end_pos(self, block_size: int) -> int:
        return self.depth * block_size


@dataclass
class PrefixMatch:
    """Longest cached chain matching a prompt, plus reusable payloads.

    Attributes:
        matched_tokens: full-block prefix length found in the cache.
        block_ids: physical blocks of the matched chain (not yet increfed —
            fork them via :meth:`~repro.llm.kvcache.BlockTable.fork_from`).
        acc_boundaries: boundary → per-layer accumulated-score snapshots
            available inside the matched region.
        pq_snapshot: the PQ snapshot with the requested fingerprint whose
            *valid* coverage on this chain is deepest, or ``None``.  A
            snapshot stored on a shallow node is truncated to that node's
            end position — its deeper codes describe the producer's own
            diverging continuation, never this prompt.
    """

    matched_tokens: int
    block_ids: list[int]
    acc_boundaries: dict[int, list] = field(default_factory=dict)
    pq_snapshot: object = None


@dataclass
class ExportedChainNode:
    """One block of an exported chain: tokens, KV contents, payloads.

    ``keys``/``values`` are the block's contents in *wire* form — one
    :class:`~repro.llm.kvcodec.EncodedKV` each (original shape
    ``(num_layers, h_kv, block_size, d_h)``).  Spilled source nodes ship
    their parked encoded payload as-is (no decode on the export side);
    resident nodes are encoded through the exporter's migration codec.
    ``from_disk`` records whether the source node was spilled (the exporter
    read it off the NVMe tier — a migration bills that leg).  Artifact
    payloads travel by reference, like every other sharing path in the
    cache.
    """

    token_ids: np.ndarray
    keys: EncodedKV
    values: EncodedKV
    from_disk: bool
    acc_scores: "list | None" = None
    pq_snapshots: dict = field(default_factory=dict)

    @property
    def wire_nbytes(self) -> int:
        """Encoded KV bytes this node puts on the wire."""
        return self.keys.wire_nbytes + self.values.wire_nbytes

    @property
    def logical_nbytes(self) -> int:
        """Modelled raw KV bytes of this node (pre-codec size)."""
        return self.keys.logical_nbytes + self.values.logical_nbytes


@dataclass
class ExportedChain:
    """A prefix chain packaged for migration to another worker's cache.

    Produced by :meth:`PrefixCache.export_chain` on the owning worker and
    consumed by :meth:`PrefixCache.import_chain` on the target; under a
    lossless codec the contents decode to exact copies, so an import
    followed by a match reproduces the source chain bitwise (a lossy codec
    restores within its declared per-element error bound instead).
    """

    block_size: int
    nodes: "list[ExportedChainNode]" = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.nodes)

    @property
    def num_tokens(self) -> int:
        return len(self.nodes) * self.block_size

    @property
    def disk_blocks(self) -> int:
        """Blocks the exporter read from the source's disk spill tier."""
        return sum(1 for node in self.nodes if node.from_disk)

    @property
    def kv_wire_nbytes(self) -> int:
        """Encoded KV bytes the chain puts on the wire (all nodes)."""
        return sum(node.wire_nbytes for node in self.nodes)

    @property
    def kv_logical_nbytes(self) -> int:
        """Modelled raw KV bytes of the chain (what raw tiers would move)."""
        return sum(node.logical_nbytes for node in self.nodes)

    @property
    def disk_wire_nbytes(self) -> int:
        """Encoded KV bytes read off the source's NVMe tier."""
        return sum(node.wire_nbytes for node in self.nodes if node.from_disk)

    @property
    def resident_logical_nbytes(self) -> int:
        """Raw bytes of GPU-resident nodes the exporter encoded on the fly.

        Spilled nodes travel in their parked encoded form — only these
        resident nodes cost an encode pass on the source worker's CPU.
        """
        return sum(
            node.logical_nbytes for node in self.nodes if not node.from_disk
        )

    def decode_flops(self) -> float:
        """CPU FLOPs the importer spends decoding every node exactly once.

        Each payload knows the codec that produced it (spilled nodes may
        carry a different codec than resident ones), so the estimate sums
        per-node decode rates rather than assuming one codec chain-wide.
        """
        flops = 0.0
        for node in self.nodes:
            flops += node.keys.decoder.decode_flops(node.keys.logical_nbytes)
            flops += node.values.decoder.decode_flops(
                node.values.logical_nbytes
            )
        return flops

    def payload_nbytes(self) -> int:
        """Modelled artifact-payload bytes riding along (acc + PQ, deduped)."""
        nbytes = 0
        seen: set[int] = set()
        for node in self.nodes:
            if node.acc_scores is not None:
                nbytes += int(
                    sum(np.asarray(a).nbytes for a in node.acc_scores)
                )
            for snap in node.pq_snapshots.values():
                if id(snap) not in seen:
                    seen.add(id(snap))
                    nbytes += snap.nbytes()
        return nbytes


@dataclass
class PrefixCacheStats:
    """*Index-level* counters: what the hash-chain lookups matched.

    These count matches as seen by :meth:`PrefixCache.match` — the full
    matched block chain per lookup.  The engine may then reuse *fewer*
    tokens than matched (policy aggregate constraints, the
    ``len(prompt) - 1`` cap) or none at all; what was actually attached is
    what :class:`~repro.serve.EngineMetrics` ``prefix_cache_*`` counters
    record.  Compare the two to see how much matched prefix the reuse
    policy left on the table.
    """

    queries: int = 0
    hits: int = 0
    hit_tokens: int = 0
    lookup_tokens: int = 0
    inserted_blocks: int = 0
    evicted_blocks: int = 0
    collisions: int = 0
    #: cold-chain blocks demoted to the disk spill tier (pool block freed,
    #: contents kept) instead of being dropped outright
    spilled_blocks: int = 0
    #: spilled blocks brought back into fresh pool blocks on a later match
    restored_blocks: int = 0
    #: spilled nodes healed by re-insertion of the same prompt (adopting the
    #: inserting request's identical block — no disk read needed)
    readopted_blocks: int = 0
    #: spilled nodes dropped permanently to relieve a full disk tier
    dropped_spilled_blocks: int = 0
    #: modelled artifact-payload bytes that accompanied spills / restores
    #: (accumulated-score snapshots + PQ snapshots, counted once per
    #: residency transition)
    spilled_payload_bytes: int = 0
    restored_payload_bytes: int = 0
    #: encoded (wire) KV bytes spilled to / restored from the disk tier —
    #: the logical counterpart is ``spilled/restored_blocks * block bytes``;
    #: the quotient is the spill codec's achieved ratio
    spilled_wire_bytes: int = 0
    restored_wire_bytes: int = 0
    #: cross-worker migration traffic: blocks copied out of this cache for
    #: another worker, and blocks written into this cache from another
    #: worker's exported chain (new nodes + healed spilled nodes)
    exported_blocks: int = 0
    imported_blocks: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched at least one block."""
        if self.queries == 0:
            return 0.0
        return self.hits / self.queries

    @property
    def token_hit_rate(self) -> float:
        """Fraction of looked-up prompt tokens found in the index.

        An upper bound on the engine's ``prefix_token_hit_rate`` (which
        counts only the tokens actually reused).
        """
        if self.lookup_tokens == 0:
            return 0.0
        return self.hit_tokens / self.lookup_tokens


class PrefixCache:
    """Hash-chained index of cached prompt-prefix blocks.

    Args:
        allocator: the paged-KV block pool the cached chains live in; the
            cache holds one reference per cached block.
        hash_fn: ``(parent_key, tokens) -> bytes`` chain hash; injectable so
            tests can force collisions and exercise the verification
            fallback.  Collisions are detected by comparing stored token ids
            and resolved as misses (first chain wins the slot).
        spill_store: optional :class:`~repro.llm.kvcache.SwapSpace`; when
            set, eviction spills cold chains to its disk tier (contents
            preserved, pool block freed) and later matches restore them.
            Without it eviction frees cold chains permanently, as before.
        spill_codec: :class:`~repro.llm.kvcodec.KVBlockCodec` applied to
            spilled chains on the way down (``None`` uses the spill store's
            default codec).  Spilled prefix chains are the one downward
            path where *lossy* codecs are permitted: a restore then differs
            from the original within the codec's declared per-element error
            bound, trading exact byte identity on cache hits for NVMe
            bandwidth.

    Attributes:
        observer: optional residency-event subscriber (duck-typed; the
            cluster layer's fingerprint directory is the canonical one).
            Called with the node's chain key on every residency transition:
            ``on_insert(key)`` when a block enters the index resident,
            ``on_spill(key)`` when its content demotes to the disk tier,
            ``on_restore(key)`` when a spilled block becomes resident again
            (disk restore, re-adoption, or migration import), and
            ``on_evict(key)`` when the node leaves the index entirely.
    """

    _ROOT_KEY = b"root"

    def __init__(
        self,
        allocator: BlockAllocator,
        hash_fn: "Callable[[bytes, np.ndarray], bytes] | None" = None,
        spill_store: SwapSpace | None = None,
        spill_codec: "KVBlockCodec | None" = None,
    ) -> None:
        self.allocator = allocator
        self.block_size = allocator.block_size
        self._hash = hash_fn or _default_hash
        self._nodes: dict[bytes, _Node] = {}
        self._tick = 0
        self.stats = PrefixCacheStats()
        self.spill_store = spill_store
        self.spill_codec = spill_codec
        self.observer = None
        #: ids of PQSnapshots whose payload is currently accounted as
        #: disk-resident (so a snapshot shared by many spilled nodes is
        #: charged once per residency transition, not once per node)
        self._spilled_snapshot_ids: set[int] = set()
        #: chain keys currently being swapped back in by a match — the
        #: re-entrant eviction a restore's own allocation can trigger must
        #: not remove these nodes (or discard their in-flight handles)
        self._restoring: set[bytes] = set()

    def __len__(self) -> int:
        """Number of cached blocks (resident + spilled)."""
        return len(self._nodes)

    @property
    def num_resident(self) -> int:
        """Cached blocks currently backed by a pool block."""
        return sum(1 for node in self._nodes.values() if not node.spilled)

    @property
    def num_spilled(self) -> int:
        """Cached blocks currently parked on the disk spill tier."""
        return len(self._nodes) - self.num_resident

    def _notify(self, event: str, key: bytes) -> None:
        """Publish one residency event to the observer (if any)."""
        if self.observer is not None:
            getattr(self.observer, "on_" + event)(key)

    # --------------------------------------------------------------- match

    def _walk(self, token_ids: np.ndarray) -> list[_Node]:
        """Longest chain of cached nodes matching the prompt's full blocks."""
        nodes: list[_Node] = []
        key = self._ROOT_KEY
        pos = 0
        block = self.block_size
        while pos + block <= token_ids.size:
            tokens = token_ids[pos: pos + block]
            key = self._hash(key, tokens)
            node = self._nodes.get(key)
            if node is None:
                break
            if not np.array_equal(node.token_ids, tokens):
                # Hash collision: the slot belongs to a different chain.
                # Treat as a miss — correctness never depends on the hash.
                self.stats.collisions += 1
                break
            nodes.append(node)
            pos += block
        return nodes

    def match(
        self,
        token_ids: Sequence[int],
        fingerprint: object = None,
        max_useful_tokens: "int | None" = None,
    ) -> PrefixMatch | None:
        """Longest-prefix lookup for an incoming prompt.

        Args:
            token_ids: the request's prompt token ids.
            fingerprint: policy fingerprint to select PQ snapshots with
                (``None`` returns no PQ payload).
            max_useful_tokens: upper bound on the tokens the caller can
                actually reuse (a policy's aggregate-boundary or
                ``len(prompt) - 1`` cap).  Nodes entirely beyond it are
                dropped from the match *before* any spilled block is
                restored from disk — a long cold chain must not charge NVMe
                reads and pool allocations for blocks the caller will never
                attach.  ``None`` matches (and restores) the full chain.

        Returns:
            A :class:`PrefixMatch`, or ``None`` on a complete miss.
        """
        token_ids = np.asarray(list(token_ids), dtype=np.int64)
        self.stats.queries += 1
        self.stats.lookup_tokens += int(token_ids.size)
        nodes = self._walk(token_ids)
        if max_useful_tokens is not None:
            nodes = [
                node for node in nodes
                if node.end_pos(self.block_size) - self.block_size
                < max_useful_tokens
            ]
        if not nodes:
            return None
        self._tick += 1
        for node in nodes:
            node.last_used = self._tick
        nodes = self._restore_chain(nodes)
        if not nodes:
            return None
        matched = nodes[-1].end_pos(self.block_size)
        acc: dict[int, list] = {}
        best_pq = None
        best_valid = 0
        best_end = 0
        for node in nodes:
            end = node.end_pos(self.block_size)
            if node.acc_scores is not None:
                acc[end] = node.acc_scores
            if fingerprint is not None:
                snap = node.pq_snapshots.get(fingerprint)
                if snap is None:
                    continue
                # A snapshot is only trustworthy up to the end of the node
                # holding it: its deeper codes were built from the producer's
                # *own* continuation, which may diverge from this prompt
                # right after the node.  Rank candidates by that effective
                # coverage — never by their raw length — and skip any whose
                # usable prefix does not even cover its own sketch.
                valid = min(snap.num_tokens, end)
                if valid >= snap.sketch_upto and valid > best_valid:
                    best_pq, best_valid, best_end = snap, valid, end
        if (
            best_pq is not None
            and best_end < matched
            and best_pq.num_tokens > best_valid
        ):
            # Found on a shallow node of a longer match: clamp the handout so
            # a consumer can never adopt codes of the foreign continuation.
            # (On the deepest node this is unnecessary — reuse is capped at
            # ``matched_tokens`` anyway — and skipping it keeps the original
            # snapshot object, with its attach accounting, in circulation.)
            best_pq = best_pq.truncated(best_valid)
        self.stats.hits += 1
        self.stats.hit_tokens += matched
        return PrefixMatch(
            matched_tokens=matched,
            block_ids=[node.block_id for node in nodes],
            acc_boundaries=acc,
            pq_snapshot=best_pq,
        )

    def _restore_chain(self, nodes: "list[_Node]") -> "list[_Node]":
        """Bring a matched chain's spilled nodes back into pool blocks.

        Every spilled node on the chain is swapped in from the disk tier into
        a freshly allocated block (the cache takes over the new block's
        reference).  Allocation may evict/spill *other* cold chains through
        the allocator's eviction hook; the chain under restoration is
        shielded by a temporary extra reference on each already-restored
        block so a re-entrant eviction cannot cannibalise it.  When the pool
        cannot fit the whole chain the match is truncated at the first
        non-restorable node (a shorter hit, never an error).
        """
        if all(not node.spilled for node in nodes):
            return nodes
        assert self.spill_store is not None
        pinned: list[int] = []
        restored_upto = len(nodes)
        self._restoring = {node.key for node in nodes}
        try:
            for index, node in enumerate(nodes):
                if node.key not in self._nodes:
                    # A re-entrant eviction (fired by an earlier swap-in's
                    # allocation, with the disk tier full) hard-removed this
                    # node: its block id is stale — possibly already handed
                    # back out.  Truncate the match here; the visited prefix
                    # is pinned and safe.
                    restored_upto = index
                    break
                if node.spilled:
                    restored_wire = node.spill_handle.stored_wire_nbytes
                    try:
                        new_ids = self.spill_store.swap_in(
                            node.spill_handle, self.allocator
                        )
                    except CapacityError:
                        restored_upto = index
                        break
                    node.block_id = new_ids[0]
                    node.spill_handle = None
                    self.stats.restored_blocks += 1
                    self.stats.restored_wire_bytes += restored_wire
                    self._account_payload(node, spilled=False)
                    self._notify("restore", node.key)
                self.allocator.incref(node.block_id)
                pinned.append(node.block_id)
        finally:
            self._restoring = set()
            for block_id in pinned:
                self.allocator.decref(block_id)
        return nodes[:restored_upto]

    def _account_payload(self, node: _Node, spilled: bool) -> None:
        """Charge artifact payload bytes for one residency transition.

        Accumulated-score snapshots are node-private and charged per node;
        PQ snapshots are shared across the nodes they cover and charged once
        per transition of the *snapshot* (tracked by identity), which models
        spilling the artifact file once per chain rather than per block —
        PQ codes being ~1/64th of the KV bytes, this rides along nearly free.
        """
        nbytes = 0
        if node.acc_scores is not None:
            nbytes += int(sum(np.asarray(a).nbytes for a in node.acc_scores))
        for snap in node.pq_snapshots.values():
            if spilled and id(snap) not in self._spilled_snapshot_ids:
                self._spilled_snapshot_ids.add(id(snap))
                nbytes += snap.nbytes()
            elif not spilled and id(snap) in self._spilled_snapshot_ids:
                self._spilled_snapshot_ids.discard(id(snap))
                nbytes += snap.nbytes()
        if spilled:
            self.stats.spilled_payload_bytes += nbytes
        else:
            self.stats.restored_payload_bytes += nbytes

    # -------------------------------------------------------------- insert

    def insert(
        self,
        token_ids: Sequence[int],
        block_ids: Sequence[int],
        acc_boundary: int = 0,
        acc_scores: "list | None" = None,
        pq_fingerprint: object = None,
        pq_snapshot: object = None,
    ) -> int:
        """Cache a request's full prompt/output blocks and artifact payloads.

        Walks the chain, reusing existing nodes (two identical cold prompts
        racing keep the first request's blocks) and increfing + indexing the
        request's blocks for the new tail.  Artifact payloads are attached to
        the chain where valid: the accumulated-score snapshot at its exact
        boundary node, the PQ snapshot on every node it covers (deepest
        snapshot wins when several producers share a chain).

        Args:
            token_ids: the tokens backing ``block_ids`` (prompt, optionally
                followed by generated tokens); only full blocks are cached.
            block_ids: the request's block table entries for those tokens.
            acc_boundary: block-aligned position of ``acc_scores`` (0 = none).
            acc_scores: per-layer ``(num_heads, acc_boundary)`` snapshots.
            pq_fingerprint: policy fingerprint keying ``pq_snapshot``.
            pq_snapshot: :class:`~repro.core.pqcache.PQSnapshot` to share.

        Returns:
            Number of newly cached blocks.
        """
        token_ids = np.asarray(list(token_ids), dtype=np.int64)
        block = self.block_size
        num_full = int(token_ids.size) // block
        if acc_boundary and acc_boundary % block != 0:
            raise ConfigurationError(
                f"acc_boundary ({acc_boundary}) must be block-aligned ({block})"
            )
        if len(block_ids) * block < num_full * block:
            raise ConfigurationError(
                f"{len(block_ids)} blocks cannot back {num_full} full "
                "token blocks"
            )
        self._tick += 1
        key = self._ROOT_KEY
        parent: _Node | None = None
        created = 0
        for index in range(num_full):
            tokens = token_ids[index * block: (index + 1) * block]
            key = self._hash(key, tokens)
            node = self._nodes.get(key)
            if node is not None and not np.array_equal(node.token_ids, tokens):
                # Collision with a foreign chain: stop caching here rather
                # than evict the resident chain (first writer wins).
                self.stats.collisions += 1
                break
            if node is None:
                block_id = int(block_ids[index])
                self.allocator.incref(block_id)
                node = _Node(key, parent, block_id, index + 1, tokens.copy())
                self._nodes[key] = node
                if parent is not None:
                    parent.children += 1
                created += 1
                self.stats.inserted_blocks += 1
                self._notify("insert", key)
            elif node.spilled:
                # The same prompt came back with its own freshly computed
                # blocks: adopt the inserting request's block instead of
                # reading the spilled copy back from disk — prefill is
                # deterministic, so the contents are bitwise identical.
                block_id = int(block_ids[index])
                self.allocator.incref(block_id)
                assert self.spill_store is not None
                self.spill_store.discard(node.spill_handle)
                node.spill_handle = None
                node.block_id = block_id
                self.stats.readopted_blocks += 1
                # Re-adoption re-produces the artifact payloads from the
                # inserting request, so no disk read is charged — just mark
                # the snapshots RAM-resident again for future spill charges.
                for snap in node.pq_snapshots.values():
                    self._spilled_snapshot_ids.discard(id(snap))
                self._notify("restore", key)
            node.last_used = self._tick
            end = node.end_pos(block)
            if acc_scores is not None and end == acc_boundary:
                node.acc_scores = acc_scores
            if pq_snapshot is not None and pq_fingerprint is not None:
                existing = node.pq_snapshots.get(pq_fingerprint)
                if existing is None or pq_snapshot.num_tokens > existing.num_tokens:
                    # Symmetric storage refcounting: the node takes a hold on
                    # the snapshot it stores and releases the one it replaces
                    # (eviction releases the rest), so ``hold_count`` stays
                    # balanced across arbitrary evict/re-insert cycles.
                    if existing is not None:
                        existing.release_hold()
                        if existing.hold_count == 0:
                            # No node holds the replaced snapshot anymore:
                            # forget its disk-residency marker before CPython
                            # can recycle its id() for a new snapshot.
                            self._spilled_snapshot_ids.discard(id(existing))
                    pq_snapshot.retain()
                    node.pq_snapshots[pq_fingerprint] = pq_snapshot
            parent = node
        return created

    # ----------------------------------------------------------- migration

    def export_chain(
        self,
        token_ids: Sequence[int],
        codec: "KVBlockCodec | None" = None,
    ) -> "ExportedChain | None":
        """Package this cache's longest chain matching a prompt for migration.

        A pure read: resident blocks are encoded through ``codec`` (``None``
        means the raw identity codec), spilled blocks ship their *parked
        encoded payload* as-is through
        :meth:`~repro.llm.kvcache.SwapSpace.peek_encoded` — no decode on the
        export side, and the parked copy stays valid, so a later local
        restore of the same chain is billed independently by its own
        swap-in; the export itself never touches the restore counters.
        Artifact payloads travel by reference.  The caller bills the
        transfer: ``disk_wire_nbytes`` of the result crossed the source's
        NVMe, ``kv_wire_nbytes`` cross PCIe into the importing worker's
        pool, and the importer decodes each block exactly once.

        Returns ``None`` when the prompt matches nothing.
        """
        token_ids = np.asarray(list(token_ids), dtype=np.int64)
        nodes = self._walk(token_ids)
        if not nodes:
            return None
        if codec is None:
            codec = RawCodec(self.allocator.dtype_bytes)
        exported = ExportedChain(block_size=self.block_size)
        for node in nodes:
            if node.spilled:
                assert self.spill_store is not None
                keys, values = self.spill_store.peek_encoded(node.spill_handle)
                key_block, value_block = keys[0], values[0]
            else:
                key_block = codec.encode(
                    self.allocator.block_keys(node.block_id)
                )
                value_block = codec.encode(
                    self.allocator.block_values(node.block_id)
                )
            exported.nodes.append(
                ExportedChainNode(
                    token_ids=node.token_ids.copy(),
                    keys=key_block,
                    values=value_block,
                    from_disk=node.spilled,
                    acc_scores=node.acc_scores,
                    pq_snapshots=dict(node.pq_snapshots),
                )
            )
            self.stats.exported_blocks += 1
        return exported

    def import_chain(self, exported: ExportedChain) -> int:
        """Adopt another worker's exported chain into this cache.

        Walks the chain like :meth:`insert`, but the blocks are allocated
        *here* and written from the decoded exported payloads — bitwise for
        lossless codecs, within the declared per-element error bound for
        lossy ones; each block decodes exactly once: missing nodes
        are created, locally *spilled* nodes are healed with the migrated
        bytes (cheaper than a local disk read that the caller would have to
        bill separately), and already-resident nodes are left untouched.
        Artifact payloads attach with the same deepest-wins + retain()
        semantics as :meth:`insert`, so sharing snapshots across workers
        keeps ``hold_count`` auditable.

        Allocation pressure truncates rather than fails: a
        :class:`~repro.errors.CapacityError` mid-import leaves a valid
        shorter prefix in the index (everything already written stays).

        Returns:
            Number of blocks actually written into this cache's pool.
        """
        if exported.block_size != self.block_size:
            raise ConfigurationError(
                f"imported chain has block size {exported.block_size}, "
                f"this cache uses {self.block_size}"
            )
        self._tick += 1
        key = self._ROOT_KEY
        parent: _Node | None = None
        written = 0
        for record in exported.nodes:
            tokens = np.asarray(record.token_ids, dtype=np.int64)
            key = self._hash(key, tokens)
            node = self._nodes.get(key)
            if node is not None and not np.array_equal(node.token_ids, tokens):
                self.stats.collisions += 1
                break
            if node is None or node.spilled:
                try:
                    block_id = self.allocator.allocate()
                except CapacityError:
                    break  # a shorter imported prefix is still a valid chain
                if parent is not None and parent.key not in self._nodes:
                    # The allocator's eviction hook reclaimed the chain head
                    # mid-import (a pool this tight cannot host the chain);
                    # attaching a child to a removed parent would leave
                    # unreachable index entries, so stop at the valid prefix.
                    self.allocator.decref(block_id)
                    break
                self.allocator.block_keys(block_id)[...] = record.keys.decode()
                self.allocator.block_values(block_id)[...] = (
                    record.values.decode()
                )
                if node is None:
                    depth = (parent.depth if parent is not None else 0) + 1
                    node = _Node(key, parent, block_id, depth, tokens.copy())
                    self._nodes[key] = node
                    if parent is not None:
                        parent.children += 1
                    self.stats.inserted_blocks += 1
                    self._notify("insert", key)
                else:
                    assert self.spill_store is not None
                    self.spill_store.discard(node.spill_handle)
                    node.spill_handle = None
                    node.block_id = block_id
                    for snap in node.pq_snapshots.values():
                        self._spilled_snapshot_ids.discard(id(snap))
                    self._notify("restore", key)
                written += 1
                self.stats.imported_blocks += 1
            node.last_used = self._tick
            if record.acc_scores is not None and node.acc_scores is None:
                node.acc_scores = record.acc_scores
            for fingerprint, snapshot in record.pq_snapshots.items():
                existing = node.pq_snapshots.get(fingerprint)
                if existing is None or snapshot.num_tokens > existing.num_tokens:
                    if existing is not None:
                        existing.release_hold()
                        if existing.hold_count == 0:
                            self._spilled_snapshot_ids.discard(id(existing))
                    snapshot.retain()
                    node.pq_snapshots[fingerprint] = snapshot
            parent = node
        return written

    # ------------------------------------------------------------ eviction

    def evict(self, num_blocks: int = 1) -> int:
        """Free at least ``num_blocks`` pool blocks by demoting cold chains.

        With a spill store, a cold node's block content moves to the disk
        tier (the node stays in the index and a later match restores it);
        the structural leaf-only constraint does not apply because nothing
        is removed.  Without one — or when the disk tier is full — nodes are
        dropped outright, and then only *leaf* nodes (no cached children)
        are candidates, since dropping an interior node would orphan its
        descendants' chain keys.  Either way only nodes whose block nobody
        but the cache references actually free pool space.  Candidates are
        taken least-recently-used first; freeing a leaf may expose its
        parent, so the walk continues until the target is met or nothing
        evictable remains.

        Returns:
            Number of blocks actually returned to the allocator's free list.
        """
        freed = 0
        # One LRU-sorted snapshot per call; chains are walked tail-first by
        # re-passing over it (freeing a leaf exposes its parent, which sits
        # nearby in LRU order since a chain is touched as a unit), instead
        # of a full fresh scan per freed block.
        candidates = sorted(self._nodes.values(), key=lambda n: n.last_used)
        progressed = True
        spill_full = self.spill_store is None
        while freed < num_blocks and progressed:
            progressed = False
            for node in candidates:
                if freed >= num_blocks:
                    break
                if node.key not in self._nodes or node.spilled:
                    continue
                if self.allocator.refcount(node.block_id) != 1:
                    continue  # an active request still holds the block
                if not spill_full:
                    try:
                        self._spill(node)
                    except CapacityError:
                        spill_full = True  # disk tier full: hard-evict instead
                    else:
                        freed += 1
                        progressed = True
                        continue
                if node.children or node.key in self._restoring:
                    continue  # must not orphan descendants / break a restore
                self._remove(node)
                freed += 1
                self.stats.evicted_blocks += 1
                progressed = True
            if not progressed and self.spill_store is not None:
                # Stuck with a full disk tier: every resident candidate has a
                # *spilled* descendant blocking its hard removal.  Drop the
                # coldest spilled leaf permanently — that frees disk room
                # (spilling works again next pass) and exposes its parent —
                # rather than wedging the pool on cold disk data.
                for node in candidates:
                    if (
                        node.key in self._nodes
                        and node.spilled
                        and node.children == 0
                        and node.key not in self._restoring
                    ):
                        self._remove(node)
                        self.stats.dropped_spilled_blocks += 1
                        spill_full = False
                        progressed = True
                        break
        return freed

    def _spill(self, node: _Node) -> None:
        """Demote one resident node's block content to the disk tier."""
        assert self.spill_store is not None
        handle = self.spill_store.swap_out(
            self.allocator, [node.block_id], tier="disk",
            codec=self.spill_codec,
        )
        self.allocator.decref(node.block_id)
        node.block_id = -1
        node.spill_handle = handle
        self.stats.spilled_blocks += 1
        self.stats.spilled_wire_bytes += handle.stored_wire_nbytes
        self._account_payload(node, spilled=True)
        self._notify("spill", node.key)

    def clear(self) -> int:
        """Drop every cached node (releases all cache-held block refs)."""
        dropped = 0
        while self._nodes:
            for node in list(self._nodes.values()):
                if node.children == 0:
                    self._remove(node)
                    dropped += 1
        return dropped

    def _remove(self, node: _Node) -> None:
        del self._nodes[node.key]
        if node.parent is not None:
            node.parent.children -= 1
        if node.spilled:
            assert self.spill_store is not None
            self.spill_store.discard(node.spill_handle)
            node.spill_handle = None
        else:
            self.allocator.decref(node.block_id)
        # Symmetric artifact-refcount release: the node's storage holds die
        # with it.  Before this, repeated evict/re-insert cycles leaked one
        # hold per cycle and ``hold_count`` could never reach zero again.
        for snap in node.pq_snapshots.values():
            snap.release_hold()
            if snap.hold_count == 0:
                self._spilled_snapshot_ids.discard(id(snap))
        node.pq_snapshots = {}
        self._notify("evict", node.key)

    # ----------------------------------------------------------- reporting

    def describe(self) -> dict:
        return {
            "blocks": len(self._nodes),
            "resident_blocks": self.num_resident,
            "spilled_blocks_now": self.num_spilled,
            "block_size": self.block_size,
            "queries": self.stats.queries,
            "hit_rate": self.stats.hit_rate,
            "token_hit_rate": self.stats.token_hit_rate,
            "inserted_blocks": self.stats.inserted_blocks,
            "evicted_blocks": self.stats.evicted_blocks,
            "spilled_blocks": self.stats.spilled_blocks,
            "restored_blocks": self.stats.restored_blocks,
            "readopted_blocks": self.stats.readopted_blocks,
            "collisions": self.stats.collisions,
        }
