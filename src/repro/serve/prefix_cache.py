"""Shared-prefix cache over the paged KV block pool.

Concurrent requests that share a prompt prefix (a system prompt, a multi-turn
history) should not redo its prefill, k-means clustering, or PQ encoding.
This module provides the engine-side index that makes that reuse safe:

* Prompts are hashed **per block** with parent chaining (vLLM-style): the key
  of block *i* is ``H(key_{i-1}, tokens_i)``, so equal keys identify equal
  whole prefixes, not just equal blocks.  Every node additionally stores its
  raw token ids and verifies them on lookup — a hash collision therefore
  degrades to a cache miss (cold prefill), never to silent corruption.
* Each cached node holds one reference on its physical block in the
  :class:`~repro.llm.kvcache.BlockAllocator`; an attaching request forks the
  matched chain (increfs), and copy-on-write in
  :class:`~repro.llm.kvcache.PagedKVCache` protects the shared contents.
* Nodes can carry two kinds of *artifact payloads* beyond raw KV:
  accumulated-attention-score snapshots (the exact resume state policies
  that read prefill aggregates need) and per-policy
  :class:`~repro.core.pqcache.PQSnapshot` objects (sketch codebooks + codes,
  reused by reference instead of re-clustered).
* Eviction is LRU over leaf nodes: when the block pool runs dry mid-admission
  the allocator calls :meth:`PrefixCache.evict`, which walks least-recently
  used chains tail-first and drops nodes whose blocks nobody else references.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..llm.kvcache import BlockAllocator

__all__ = ["PrefixCache", "PrefixCacheStats", "PrefixMatch"]


def _default_hash(parent_key: bytes, tokens: np.ndarray) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(parent_key)
    digest.update(tokens.astype(np.int64).tobytes())
    return digest.digest()


class _Node:
    """One cached block: chain position, physical block, artifact payloads."""

    __slots__ = (
        "key", "parent", "children", "block_id", "depth", "token_ids",
        "last_used", "acc_scores", "pq_snapshots",
    )

    def __init__(
        self,
        key: bytes,
        parent: "_Node | None",
        block_id: int,
        depth: int,
        token_ids: np.ndarray,
    ) -> None:
        self.key = key
        self.parent = parent
        self.children = 0
        self.block_id = block_id
        self.depth = depth            # blocks from the root, inclusive of self
        self.token_ids = token_ids    # this block's tokens (collision check)
        self.last_used = 0
        #: per-layer (num_heads, end_pos) accumulated-score snapshot valid at
        #: exactly this node's end position, or None
        self.acc_scores = None
        #: fingerprint -> PQSnapshot (sketch codebooks + codes)
        self.pq_snapshots: dict = {}

    def end_pos(self, block_size: int) -> int:
        return self.depth * block_size


@dataclass
class PrefixMatch:
    """Longest cached chain matching a prompt, plus reusable payloads.

    Attributes:
        matched_tokens: full-block prefix length found in the cache.
        block_ids: physical blocks of the matched chain (not yet increfed —
            fork them via :meth:`~repro.llm.kvcache.BlockTable.fork_from`).
        acc_boundaries: boundary → per-layer accumulated-score snapshots
            available inside the matched region.
        pq_snapshot: deepest PQ snapshot with the requested fingerprint found
            on the chain, or ``None``.
    """

    matched_tokens: int
    block_ids: list[int]
    acc_boundaries: dict[int, list] = field(default_factory=dict)
    pq_snapshot: object = None


@dataclass
class PrefixCacheStats:
    """*Index-level* counters: what the hash-chain lookups matched.

    These count matches as seen by :meth:`PrefixCache.match` — the full
    matched block chain per lookup.  The engine may then reuse *fewer*
    tokens than matched (policy aggregate constraints, the
    ``len(prompt) - 1`` cap) or none at all; what was actually attached is
    what :class:`~repro.serve.EngineMetrics` ``prefix_cache_*`` counters
    record.  Compare the two to see how much matched prefix the reuse
    policy left on the table.
    """

    queries: int = 0
    hits: int = 0
    hit_tokens: int = 0
    lookup_tokens: int = 0
    inserted_blocks: int = 0
    evicted_blocks: int = 0
    collisions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched at least one block."""
        if self.queries == 0:
            return 0.0
        return self.hits / self.queries

    @property
    def token_hit_rate(self) -> float:
        """Fraction of looked-up prompt tokens found in the index.

        An upper bound on the engine's ``prefix_token_hit_rate`` (which
        counts only the tokens actually reused).
        """
        if self.lookup_tokens == 0:
            return 0.0
        return self.hit_tokens / self.lookup_tokens


class PrefixCache:
    """Hash-chained index of cached prompt-prefix blocks.

    Args:
        allocator: the paged-KV block pool the cached chains live in; the
            cache holds one reference per cached block.
        hash_fn: ``(parent_key, tokens) -> bytes`` chain hash; injectable so
            tests can force collisions and exercise the verification
            fallback.  Collisions are detected by comparing stored token ids
            and resolved as misses (first chain wins the slot).
    """

    _ROOT_KEY = b"root"

    def __init__(
        self,
        allocator: BlockAllocator,
        hash_fn: "Callable[[bytes, np.ndarray], bytes] | None" = None,
    ) -> None:
        self.allocator = allocator
        self.block_size = allocator.block_size
        self._hash = hash_fn or _default_hash
        self._nodes: dict[bytes, _Node] = {}
        self._tick = 0
        self.stats = PrefixCacheStats()

    def __len__(self) -> int:
        """Number of cached blocks."""
        return len(self._nodes)

    # --------------------------------------------------------------- match

    def _walk(self, token_ids: np.ndarray) -> list[_Node]:
        """Longest chain of cached nodes matching the prompt's full blocks."""
        nodes: list[_Node] = []
        key = self._ROOT_KEY
        pos = 0
        block = self.block_size
        while pos + block <= token_ids.size:
            tokens = token_ids[pos: pos + block]
            key = self._hash(key, tokens)
            node = self._nodes.get(key)
            if node is None:
                break
            if not np.array_equal(node.token_ids, tokens):
                # Hash collision: the slot belongs to a different chain.
                # Treat as a miss — correctness never depends on the hash.
                self.stats.collisions += 1
                break
            nodes.append(node)
            pos += block
        return nodes

    def match(
        self, token_ids: Sequence[int], fingerprint: object = None
    ) -> PrefixMatch | None:
        """Longest-prefix lookup for an incoming prompt.

        Args:
            token_ids: the request's prompt token ids.
            fingerprint: policy fingerprint to select PQ snapshots with
                (``None`` returns no PQ payload).

        Returns:
            A :class:`PrefixMatch`, or ``None`` on a complete miss.
        """
        token_ids = np.asarray(list(token_ids), dtype=np.int64)
        self.stats.queries += 1
        self.stats.lookup_tokens += int(token_ids.size)
        nodes = self._walk(token_ids)
        if not nodes:
            return None
        self._tick += 1
        acc: dict[int, list] = {}
        best_pq = None
        for node in nodes:
            node.last_used = self._tick
            if node.acc_scores is not None:
                acc[node.end_pos(self.block_size)] = node.acc_scores
            if fingerprint is not None:
                snap = node.pq_snapshots.get(fingerprint)
                if snap is not None and (
                    best_pq is None or snap.num_tokens > best_pq.num_tokens
                ):
                    best_pq = snap
        matched = nodes[-1].end_pos(self.block_size)
        self.stats.hits += 1
        self.stats.hit_tokens += matched
        return PrefixMatch(
            matched_tokens=matched,
            block_ids=[node.block_id for node in nodes],
            acc_boundaries=acc,
            pq_snapshot=best_pq,
        )

    # -------------------------------------------------------------- insert

    def insert(
        self,
        token_ids: Sequence[int],
        block_ids: Sequence[int],
        acc_boundary: int = 0,
        acc_scores: "list | None" = None,
        pq_fingerprint: object = None,
        pq_snapshot: object = None,
    ) -> int:
        """Cache a request's full prompt/output blocks and artifact payloads.

        Walks the chain, reusing existing nodes (two identical cold prompts
        racing keep the first request's blocks) and increfing + indexing the
        request's blocks for the new tail.  Artifact payloads are attached to
        the chain where valid: the accumulated-score snapshot at its exact
        boundary node, the PQ snapshot on every node it covers (deepest
        snapshot wins when several producers share a chain).

        Args:
            token_ids: the tokens backing ``block_ids`` (prompt, optionally
                followed by generated tokens); only full blocks are cached.
            block_ids: the request's block table entries for those tokens.
            acc_boundary: block-aligned position of ``acc_scores`` (0 = none).
            acc_scores: per-layer ``(num_heads, acc_boundary)`` snapshots.
            pq_fingerprint: policy fingerprint keying ``pq_snapshot``.
            pq_snapshot: :class:`~repro.core.pqcache.PQSnapshot` to share.

        Returns:
            Number of newly cached blocks.
        """
        token_ids = np.asarray(list(token_ids), dtype=np.int64)
        block = self.block_size
        num_full = int(token_ids.size) // block
        if acc_boundary and acc_boundary % block != 0:
            raise ConfigurationError(
                f"acc_boundary ({acc_boundary}) must be block-aligned ({block})"
            )
        if len(block_ids) * block < num_full * block:
            raise ConfigurationError(
                f"{len(block_ids)} blocks cannot back {num_full} full "
                "token blocks"
            )
        self._tick += 1
        key = self._ROOT_KEY
        parent: _Node | None = None
        created = 0
        for index in range(num_full):
            tokens = token_ids[index * block: (index + 1) * block]
            key = self._hash(key, tokens)
            node = self._nodes.get(key)
            if node is not None and not np.array_equal(node.token_ids, tokens):
                # Collision with a foreign chain: stop caching here rather
                # than evict the resident chain (first writer wins).
                self.stats.collisions += 1
                break
            if node is None:
                block_id = int(block_ids[index])
                self.allocator.incref(block_id)
                node = _Node(key, parent, block_id, index + 1, tokens.copy())
                self._nodes[key] = node
                if parent is not None:
                    parent.children += 1
                created += 1
                self.stats.inserted_blocks += 1
            node.last_used = self._tick
            end = node.end_pos(block)
            if acc_scores is not None and end == acc_boundary:
                node.acc_scores = acc_scores
            if pq_snapshot is not None and pq_fingerprint is not None:
                existing = node.pq_snapshots.get(pq_fingerprint)
                if existing is None or pq_snapshot.num_tokens > existing.num_tokens:
                    node.pq_snapshots[pq_fingerprint] = pq_snapshot
            parent = node
        return created

    # ------------------------------------------------------------ eviction

    def evict(self, num_blocks: int = 1) -> int:
        """Free at least ``num_blocks`` pool blocks by dropping cold chains.

        Only *leaf* nodes (no cached children) are candidates — dropping an
        interior node would orphan its descendants' chain keys — and only
        nodes whose block nobody but the cache references actually free pool
        space.  Candidates are taken least-recently-used first; freeing a
        leaf may expose its parent, so the walk continues until the target is
        met or nothing evictable remains.

        Returns:
            Number of blocks actually returned to the allocator's free list.
        """
        freed = 0
        # One LRU-sorted snapshot per call; chains are walked tail-first by
        # re-passing over it (freeing a leaf exposes its parent, which sits
        # nearby in LRU order since a chain is touched as a unit), instead
        # of a full fresh scan per freed block.
        candidates = sorted(self._nodes.values(), key=lambda n: n.last_used)
        progressed = True
        while freed < num_blocks and progressed:
            progressed = False
            for node in candidates:
                if freed >= num_blocks:
                    break
                if node.key not in self._nodes or node.children:
                    continue
                if self.allocator.refcount(node.block_id) != 1:
                    continue  # an active request still holds the block
                self._remove(node)
                freed += 1
                self.stats.evicted_blocks += 1
                progressed = True
        return freed

    def clear(self) -> int:
        """Drop every cached node (releases all cache-held block refs)."""
        dropped = 0
        while self._nodes:
            for node in list(self._nodes.values()):
                if node.children == 0:
                    self._remove(node)
                    dropped += 1
        return dropped

    def _remove(self, node: _Node) -> None:
        del self._nodes[node.key]
        if node.parent is not None:
            node.parent.children -= 1
        self.allocator.decref(node.block_id)

    # ----------------------------------------------------------- reporting

    def describe(self) -> dict:
        return {
            "blocks": len(self._nodes),
            "block_size": self.block_size,
            "queries": self.stats.queries,
            "hit_rate": self.stats.hit_rate,
            "token_hit_rate": self.stats.token_hit_rate,
            "inserted_blocks": self.stats.inserted_blocks,
            "evicted_blocks": self.stats.evicted_blocks,
            "collisions": self.stats.collisions,
        }
