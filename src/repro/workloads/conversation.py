"""Multi-turn conversation workload with a shared system prompt.

This is the workload the shared-prefix cache is built for: every turn's
prompt embeds the full conversation so far — a long system prompt, then an
alternating history of user turns and model answers — so consecutive turns
share an ever-growing prefix.  Without a prefix cache each turn redoes the
whole history's prefill and PQ construction; with one, only the newly
appended turn is processed (``benchmarks/test_prefix_reuse.py`` measures the
resulting TTFT gap, ``examples/multi_turn_chat.py`` demos it).

The generator is deterministic for a seed, draws from the shared
:class:`~repro.workloads.VocabLayout` token ranges like every other workload
family, and stays answer-agnostic: the model's decoded tokens are appended
to the running history by the driver (:meth:`Conversation.extend_history`),
so the workload composes with any policy or engine configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from ..utils import as_rng
from .base import VocabLayout

__all__ = ["Conversation", "multi_turn_conversation"]


@dataclass
class Conversation:
    """A scripted multi-turn exchange sharing one system prompt.

    Attributes:
        system_ids: tokens of the system prompt (the always-shared prefix).
        turn_ids: per-turn user-message tokens, each ending with the
            separator so turn boundaries are unambiguous.
        separator_id: token closing each message.
    """

    system_ids: list[int]
    turn_ids: list[list[int]] = field(default_factory=list)
    separator_id: int = 3

    def __post_init__(self) -> None:
        if not self.system_ids:
            raise WorkloadError("conversation needs a non-empty system prompt")
        if not self.turn_ids:
            raise WorkloadError("conversation needs at least one turn")

    @property
    def num_turns(self) -> int:
        return len(self.turn_ids)

    def initial_history(self) -> list[int]:
        """Token history before the first turn: the system prompt."""
        return list(self.system_ids)

    def prompt_for_turn(self, turn: int, history: "list[int]") -> list[int]:
        """Full prompt of one turn: running history + that turn's message.

        Args:
            turn: turn index in ``[0, num_turns)``.
            history: tokens of everything before this turn (system prompt +
                previous turns + previous answers), as maintained by
                :meth:`extend_history`.
        """
        if not 0 <= turn < self.num_turns:
            raise WorkloadError(
                f"turn {turn} out of range [0, {self.num_turns})"
            )
        return list(history) + list(self.turn_ids[turn])

    def extend_history(
        self, prompt_ids: "list[int]", answer_ids: "list[int]"
    ) -> list[int]:
        """History for the next turn: this turn's prompt + its answer."""
        return list(prompt_ids) + list(answer_ids) + [self.separator_id]


def multi_turn_conversation(
    num_turns: int = 3,
    system_tokens: int = 4096,
    turn_tokens: int = 64,
    layout: VocabLayout | None = None,
    seed: int = 0,
) -> Conversation:
    """Generate a deterministic multi-turn conversation.

    The system prompt is filler text salted with tag/value pairs (so
    retrieval policies have structure to find); each user turn is filler
    ending in a tag mention plus the separator.

    Args:
        num_turns: user turns in the conversation.
        system_tokens: length of the shared system prompt.
        turn_tokens: length of each user message (including separator).
        layout: vocabulary layout; defaults to :class:`VocabLayout`.
        seed: RNG seed.
    """
    if num_turns <= 0:
        raise WorkloadError("num_turns must be positive")
    if system_tokens <= 0 or turn_tokens <= 1:
        raise WorkloadError("system_tokens must be >= 1 and turn_tokens >= 2")
    layout = layout or VocabLayout()
    num_facts = min(num_turns, layout.num_tags, layout.num_values)
    if system_tokens <= num_facts:
        raise WorkloadError(
            f"system_tokens ({system_tokens}) must exceed the number of "
            f"planted facts ({num_facts})"
        )
    rng = as_rng(seed)

    system = layout.sample_filler(rng, system_tokens)
    tags = layout.sample_tags(rng, num_facts)
    values = layout.sample_values(rng, num_facts)
    # Plant one fact per turn inside the system prompt so each user turn has
    # something to refer back to across the shared prefix.
    fact_positions = np.sort(
        rng.choice(max(system_tokens - 1, 1), size=tags.size, replace=False)
    )
    for position, tag, value in zip(fact_positions, tags, values):
        system[position] = tag
        if position + 1 < system_tokens:
            system[position + 1] = value

    separator = 3 % layout.vocab_size
    turns: list[list[int]] = []
    for turn in range(num_turns):
        message = layout.sample_filler(rng, turn_tokens - 1).tolist()
        message[-1] = int(tags[turn % tags.size])
        turns.append([int(t) for t in message] + [separator])

    return Conversation(
        system_ids=[int(t) for t in system],
        turn_ids=turns,
        separator_id=separator,
    )
