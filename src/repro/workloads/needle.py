"""Needle-in-a-Haystack grid (paper §4.2.3, Figure 9).

The test sweeps document length and needle depth and measures whether the
model can still retrieve the planted statement.  Here each grid cell is a
small :class:`~repro.workloads.base.TaskDataset` built by
:func:`~repro.workloads.generators.passkey_retrieval` with a fixed depth
fraction, so the figure benchmark can score every cell with the shared
evaluation harness and produce the same heat-map layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from .base import TaskDataset, VocabLayout
from .generators import passkey_retrieval

__all__ = ["NeedleGrid"]


@dataclass
class NeedleGrid:
    """A (context length x needle depth) grid of retrieval datasets.

    Attributes:
        context_lengths: prompt lengths of the grid columns.
        depth_fractions: needle depths (0 = start of document, 1 = end).
        samples_per_cell: episodes per grid cell.
        seed: base RNG seed.
    """

    context_lengths: tuple[int, ...] = (256, 512, 1024, 2048)
    depth_fractions: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    samples_per_cell: int = 3
    seed: int = 0
    vocab: VocabLayout | None = None
    _cells: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.context_lengths or not self.depth_fractions:
            raise WorkloadError("grid must have at least one length and depth")
        if any(length <= 64 for length in self.context_lengths):
            raise WorkloadError("context lengths must exceed 64 tokens")

    def cell(self, context_length: int, depth_fraction: float) -> TaskDataset:
        """Dataset of the grid cell (generated lazily and cached)."""
        key = (int(context_length), float(depth_fraction))
        if key not in self._cells:
            cell_seed = self.seed + 7919 * int(context_length) + int(depth_fraction * 100)
            self._cells[key] = passkey_retrieval(
                num_samples=self.samples_per_cell,
                seq_len=int(context_length),
                seed=cell_seed,
                vocab=self.vocab,
                depth_fraction=float(depth_fraction),
                name=f"needle-s{context_length}-d{depth_fraction:.1f}",
            )
        return self._cells[key]

    def cells(self) -> list[tuple[int, float, TaskDataset]]:
        """All (length, depth, dataset) cells in row-major order."""
        return [
            (length, depth, self.cell(length, depth))
            for depth in self.depth_fractions
            for length in self.context_lengths
        ]

    @staticmethod
    def to_matrix(scores: dict[tuple[int, float], float],
                  context_lengths: tuple[int, ...],
                  depth_fractions: tuple[float, ...]) -> np.ndarray:
        """Arrange per-cell scores into the Figure 9 heat-map layout
        (rows = depth, columns = context length)."""
        matrix = np.zeros((len(depth_fractions), len(context_lengths)))
        for i, depth in enumerate(depth_fractions):
            for j, length in enumerate(context_lengths):
                matrix[i, j] = scores[(int(length), float(depth))]
        return matrix
