"""Attention-score traces (paper §3.1, Figure 6) and arrival traces.

The paper motivates selective attention by showing that decode-time attention
scores follow power-law-like distributions: a small number of tokens receive
most of the mass.  This module extracts those distributions from the
substrate model on synthetic prompts and provides the statistics the Figure 6
benchmark reports (sorted score curves, mass concentration, and a power-law
tail-exponent estimate).

It also provides *request arrival* traces for the serving cluster: seeded
Poisson and bursty multi-user generators (:func:`poisson_arrivals`,
:func:`bursty_arrivals`) emitting :class:`ArrivalEvent` streams that the
cluster benchmark and example replay against a
:class:`~repro.serve.cluster.ClusterFrontend`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..llm.attention import attention_scores_single_query
from ..llm.config import ModelConfig
from ..llm.model import TransformerLM
from ..utils import as_rng, softmax

__all__ = ["AttentionTrace", "collect_decode_attention", "power_law_exponent",
           "mass_concentration", "ArrivalEvent", "poisson_arrivals",
           "bursty_arrivals", "tag_arrivals", "merge_arrivals",
           "tag_deadlines", "random_deadlines"]


@dataclass
class AttentionTrace:
    """Post-softmax attention distribution of one (layer, head) decode query."""

    layer: int
    kv_head: int
    scores: np.ndarray  # (seq,) softmax scores, descending order not applied

    @property
    def sorted_scores(self) -> np.ndarray:
        return np.sort(self.scores)[::-1]


def collect_decode_attention(
    model: TransformerLM,
    prompt_ids,
    layers: tuple[int, ...] | None = None,
) -> list[AttentionTrace]:
    """Attention distributions of the last prompt token's query.

    Runs a prefill, then scores the final token's query against all cached
    keys for the requested layers, returning one trace per (layer, KV head).
    """
    config = model.config
    result = model.prefill(list(prompt_ids), collect_queries=True)
    layers = layers if layers is not None else tuple(range(config.num_layers))
    traces = []
    for layer in layers:
        queries = result.prompt_queries[layer]          # (h, s, d_h)
        last_query = queries[:, -1, :]                   # (h, d_h)
        keys = result.kvcache[layer].keys                # (h_kv, s, d_h)
        logits = attention_scores_single_query(last_query, keys, config.gqa_group_size)
        probs = softmax(logits, axis=-1)                 # (h, s)
        grouped = probs.reshape(config.num_kv_heads, config.gqa_group_size, -1).mean(axis=1)
        for kv_head in range(config.num_kv_heads):
            traces.append(AttentionTrace(layer=layer, kv_head=kv_head,
                                         scores=grouped[kv_head]))
    return traces


def mass_concentration(trace: AttentionTrace, fraction: float = 0.1) -> float:
    """Share of attention mass captured by the top ``fraction`` of tokens."""
    sorted_scores = trace.sorted_scores
    k = max(int(np.ceil(fraction * sorted_scores.size)), 1)
    return float(sorted_scores[:k].sum() / max(sorted_scores.sum(), 1e-12))


def power_law_exponent(trace: AttentionTrace, tail: int = 100) -> float:
    """Least-squares slope of log(score) vs log(rank) over the top ``tail``
    ranks — the power-law exponent the paper's Figure 6 visualises."""
    sorted_scores = trace.sorted_scores
    n = min(tail, sorted_scores.size)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    values = np.maximum(sorted_scores[:n], 1e-12)
    slope, _ = np.polyfit(np.log(ranks), np.log(values), deg=1)
    return float(slope)


# --------------------------------------------------------------------------
# Request arrival traces (multi-user serving workloads)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrivalEvent:
    """One request arrival in a multi-user trace.

    Attributes:
        time: arrival timestamp in seconds from trace start.
        user: id of the issuing user (``0 .. num_users - 1``); in a
            conversation replay each user owns one dialogue.
        turn: how many requests this user issued before this one — the
            conversation turn index the event maps to.
        tenant: QoS tenant label the replay attaches to the request (maps
            to :class:`~repro.serve.RequestQoS`; ``"default"`` when the
            trace is untagged).
        priority: QoS priority class of the request (0 = best-effort).
        deadline: *relative* completion deadline in seconds from this
            event's arrival (maps to ``RequestQoS.deadline``), or ``None``
            for best-effort events without one.
    """

    time: float
    user: int
    turn: int
    tenant: str = "default"
    priority: int = 0
    deadline: "float | None" = None


def tag_arrivals(
    events: list[ArrivalEvent], tenant: str, priority: int = 0
) -> list[ArrivalEvent]:
    """Stamp every event of a trace with one tenant/priority tag.

    The multi-tenant replay idiom: generate each tenant's trace with its
    own generator (and seed), tag it, then :func:`merge_arrivals` the
    tenants into one timeline.
    """
    return [replace(event, tenant=tenant, priority=priority) for event in events]


def tag_deadlines(
    events: list[ArrivalEvent], deadline: float
) -> list[ArrivalEvent]:
    """Stamp every event with one relative deadline (seconds from arrival).

    The uniform-SLO idiom: one deadline per traffic class, composed with
    :func:`tag_arrivals` before merging the tenants' timelines.
    """
    if deadline <= 0:
        raise ValueError("deadline must be > 0 seconds")
    return [replace(event, deadline=float(deadline)) for event in events]


def random_deadlines(
    events: list[ArrivalEvent],
    low: float,
    high: float,
    fraction: float = 1.0,
    seed: "int | np.random.Generator | None" = 0,
) -> list[ArrivalEvent]:
    """Draw per-event relative deadlines uniformly from ``[low, high)``.

    ``fraction`` < 1 leaves the remaining events untagged — best-effort
    traffic mixed into the same timeline, the shape the EDF scheduler's
    within-class ordering is designed for.  Both the deadline values and
    the tagged subset are drawn from the seeded rng, so the tagging is
    reproducible trace data like everything else here.
    """
    if not 0 < low <= high:
        raise ValueError("deadline bounds must satisfy 0 < low <= high")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = as_rng(seed)
    deadlines = rng.uniform(low, high, size=len(events))
    tagged = rng.random(size=len(events)) < fraction
    return [
        replace(event, deadline=float(deadline)) if keep else event
        for event, deadline, keep in zip(events, deadlines, tagged)
    ]


def merge_arrivals(*traces: list[ArrivalEvent]) -> list[ArrivalEvent]:
    """Interleave per-tenant traces into one timeline, sorted by time.

    The sort is stable with a deterministic tie-break (time, tenant,
    user, turn), so replays of the merged trace are reproducible.
    """
    merged = [event for trace in traces for event in trace]
    merged.sort(key=lambda e: (e.time, e.tenant, e.user, e.turn))
    return merged


def _assign_users(
    times: np.ndarray, num_users: int, rng: np.random.Generator
) -> list[ArrivalEvent]:
    """Attach uniformly-drawn users and per-user turn counters to sorted
    arrival times."""
    users = rng.integers(0, num_users, size=times.size)
    turns: dict[int, int] = {}
    events = []
    for time, user in zip(times, users):
        user = int(user)
        turn = turns.get(user, 0)
        turns[user] = turn + 1
        events.append(ArrivalEvent(time=float(time), user=user, turn=turn))
    return events


def poisson_arrivals(
    num_events: int,
    rate: float = 1.0,
    num_users: int = 1,
    seed: "int | np.random.Generator | None" = 0,
) -> list[ArrivalEvent]:
    """Seeded Poisson-process arrival trace.

    Inter-arrival gaps are i.i.d. exponential with mean ``1 / rate``; each
    event is issued by a uniformly random user.  Deterministic for a fixed
    seed — the trace is data, so benchmarks replaying it are reproducible.

    Args:
        num_events: total number of arrivals.
        rate: mean arrivals per second (> 0).
        num_users: users the arrivals are spread over (>= 1).
        seed: anything :func:`repro.utils.as_rng` accepts.
    """
    if num_events < 0:
        raise ValueError("num_events must be >= 0")
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if num_users < 1:
        raise ValueError("num_users must be >= 1")
    rng = as_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=num_events)
    times = np.cumsum(gaps)
    return _assign_users(times, num_users, rng)


def bursty_arrivals(
    num_bursts: int,
    burst_size: int,
    burst_rate: float = 0.2,
    within_burst_rate: float = 50.0,
    num_users: int = 1,
    seed: "int | np.random.Generator | None" = 0,
) -> list[ArrivalEvent]:
    """Seeded bursty (Poisson cluster process) arrival trace.

    Burst *onsets* form a Poisson process with mean ``1 / burst_rate``
    seconds between bursts; each onset releases ``burst_size`` arrivals
    whose offsets are exponential with mean ``1 / within_burst_rate`` — a
    stampede followed by quiet, the adversarial load shape for admission
    and preemption.  Events are globally sorted by time (bursts may
    overlap), and users are drawn uniformly as in :func:`poisson_arrivals`.
    """
    if num_bursts < 0:
        raise ValueError("num_bursts must be >= 0")
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if burst_rate <= 0 or within_burst_rate <= 0:
        raise ValueError("burst_rate and within_burst_rate must be > 0")
    if num_users < 1:
        raise ValueError("num_users must be >= 1")
    rng = as_rng(seed)
    onsets = np.cumsum(rng.exponential(scale=1.0 / burst_rate, size=num_bursts))
    offsets = rng.exponential(
        scale=1.0 / within_burst_rate, size=(num_bursts, burst_size)
    )
    times = np.sort((onsets[:, None] + offsets).ravel())
    return _assign_users(times, num_users, rng)
