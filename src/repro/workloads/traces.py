"""Attention-score trace utilities (paper §3.1, Figure 6).

The paper motivates selective attention by showing that decode-time attention
scores follow power-law-like distributions: a small number of tokens receive
most of the mass.  This module extracts those distributions from the
substrate model on synthetic prompts and provides the statistics the Figure 6
benchmark reports (sorted score curves, mass concentration, and a power-law
tail-exponent estimate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.attention import attention_scores_single_query
from ..llm.config import ModelConfig
from ..llm.model import TransformerLM
from ..utils import as_rng, softmax

__all__ = ["AttentionTrace", "collect_decode_attention", "power_law_exponent",
           "mass_concentration"]


@dataclass
class AttentionTrace:
    """Post-softmax attention distribution of one (layer, head) decode query."""

    layer: int
    kv_head: int
    scores: np.ndarray  # (seq,) softmax scores, descending order not applied

    @property
    def sorted_scores(self) -> np.ndarray:
        return np.sort(self.scores)[::-1]


def collect_decode_attention(
    model: TransformerLM,
    prompt_ids,
    layers: tuple[int, ...] | None = None,
) -> list[AttentionTrace]:
    """Attention distributions of the last prompt token's query.

    Runs a prefill, then scores the final token's query against all cached
    keys for the requested layers, returning one trace per (layer, KV head).
    """
    config = model.config
    result = model.prefill(list(prompt_ids), collect_queries=True)
    layers = layers if layers is not None else tuple(range(config.num_layers))
    traces = []
    for layer in layers:
        queries = result.prompt_queries[layer]          # (h, s, d_h)
        last_query = queries[:, -1, :]                   # (h, d_h)
        keys = result.kvcache[layer].keys                # (h_kv, s, d_h)
        logits = attention_scores_single_query(last_query, keys, config.gqa_group_size)
        probs = softmax(logits, axis=-1)                 # (h, s)
        grouped = probs.reshape(config.num_kv_heads, config.gqa_group_size, -1).mean(axis=1)
        for kv_head in range(config.num_kv_heads):
            traces.append(AttentionTrace(layer=layer, kv_head=kv_head,
                                         scores=grouped[kv_head]))
    return traces


def mass_concentration(trace: AttentionTrace, fraction: float = 0.1) -> float:
    """Share of attention mass captured by the top ``fraction`` of tokens."""
    sorted_scores = trace.sorted_scores
    k = max(int(np.ceil(fraction * sorted_scores.size)), 1)
    return float(sorted_scores[:k].sum() / max(sorted_scores.sum(), 1e-12))


def power_law_exponent(trace: AttentionTrace, tail: int = 100) -> float:
    """Least-squares slope of log(score) vs log(rank) over the top ``tail``
    ranks — the power-law exponent the paper's Figure 6 visualises."""
    sorted_scores = trace.sorted_scores
    n = min(tail, sorted_scores.size)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    values = np.maximum(sorted_scores[:n], 1e-12)
    slope, _ = np.polyfit(np.log(ranks), np.log(values), deg=1)
    return float(slope)
