"""Synthetic long-context task generators.

Each generator stands in for one family of tasks from the paper's benchmark
suites (LongBench / InfiniteBench §4.1.2):

* :func:`single_fact_qa` — single-document QA (NarrativeQA, Qasper,
  MultiFieldQA, En.QA): one tag/value fact planted at a random depth, the
  question names the tag.
* :func:`multi_hop_qa` — multi-hop QA (HotpotQA, 2WikiMQA, Musique): a chain
  of facts must all be attended to.
* :func:`summarization` — summarisation (GovReport, QMSum, MultiNews,
  En.Sum): many topic-sentence tokens spread across the document; quality is
  the fraction of them still reachable.
* :func:`few_shot_recall` — few-shot tasks (TREC, TriviaQA, SAMSum): the
  answer pattern appears in several in-context examples.
* :func:`passkey_retrieval` — InfiniteBench Retr.PassKey / Retr.Number and
  the needle-in-a-haystack test: an exact token span must be retrieved.
* :func:`kv_retrieval` — InfiniteBench Retr.KV: many key/value pairs, one is
  queried.
* :func:`counting` — LongBench Count / Math.Find style aggregation over
  scattered occurrences.
* :func:`cot_arithmetic` — GSM8k-style chain-of-thought: the probe must
  attend to several numbered reasoning steps from the prompt.

Every generator accepts ``question_position`` so the Table 3 experiment
(questions placed *before* the context) can reuse the same tasks.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..utils import as_rng
from .base import Sample, TaskDataset, VocabLayout

__all__ = [
    "single_fact_qa",
    "multi_hop_qa",
    "summarization",
    "few_shot_recall",
    "passkey_retrieval",
    "kv_retrieval",
    "counting",
    "cot_arithmetic",
]


def _place_question(
    context: list[int],
    question: list[int],
    question_position: str,
) -> tuple[list[int], int]:
    """Attach the question to the context; return (prompt, offset).

    ``offset`` is the index shift applied to evidence positions recorded
    relative to the context (non-zero when the question is prepended).
    """
    if question_position == "end":
        return context + question, 0
    if question_position == "start":
        return question + context, len(question)
    raise WorkloadError(f"question_position must be 'start' or 'end', got {question_position!r}")


def _fact_span(tag: int, value: int, tag_repeat: int = 2) -> list[int]:
    """A planted fact: the tag token(s) followed by the value token.

    The tag occurrences are the *anchor* of the fact — they are what a
    question about the fact can match through attention — so generators
    record the tag positions (not the value position) as evidence.
    """
    return [int(tag)] * tag_repeat + [int(value)]


def single_fact_qa(
    num_samples: int = 8,
    seq_len: int = 1024,
    seed: int = 0,
    vocab: VocabLayout | None = None,
    question_position: str = "end",
    name: str = "single-fact-qa",
) -> TaskDataset:
    """Single-document QA: one planted fact, question names its tag."""
    vocab = vocab or VocabLayout()
    rng = as_rng(seed)
    samples = []
    for _ in range(num_samples):
        tag, = vocab.sample_tags(rng, 1)
        value, = vocab.sample_values(rng, 1)
        fact = _fact_span(tag, value)
        question = [vocab.num_special - 1, int(tag), int(tag)]
        filler_len = max(seq_len - len(fact) - len(question), 8)
        context = vocab.sample_filler(rng, filler_len).tolist()
        depth = int(rng.integers(low=filler_len // 10, high=max(filler_len * 9 // 10, 2)))
        context[depth:depth] = fact
        prompt, offset = _place_question(context, question, question_position)
        # Evidence = the tag anchors of the fact (the retrievable positions).
        evidence = np.arange(depth, depth + 2) + offset
        samples.append(
            Sample(
                prompt_ids=prompt,
                probe_ids=[int(tag)] * 3,
                evidence_positions=evidence,
                answer_ids=[int(value)],
                metadata={"depth_fraction": depth / max(filler_len, 1)},
            )
        )
    return TaskDataset(name=name, samples=samples, metric="recovery",
                       description="single planted fact QA (NarrativeQA/Qasper-like)")


def multi_hop_qa(
    num_samples: int = 8,
    seq_len: int = 1024,
    num_hops: int = 3,
    seed: int = 1,
    vocab: VocabLayout | None = None,
    question_position: str = "end",
    name: str = "multi-hop-qa",
) -> TaskDataset:
    """Multi-hop QA: a chain tag_0 -> tag_1 -> ... -> value, scattered."""
    vocab = vocab or VocabLayout()
    rng = as_rng(seed)
    samples = []
    for _ in range(num_samples):
        tags = vocab.sample_tags(rng, num_hops)
        value, = vocab.sample_values(rng, 1)
        spans = []
        for hop in range(num_hops):
            nxt = int(tags[hop + 1]) if hop + 1 < num_hops else int(value)
            spans.append([int(tags[hop]), int(tags[hop]), nxt])
        question = [vocab.num_special - 1] + [int(t) for t in tags]
        total_span = sum(len(s) for s in spans)
        filler_len = max(seq_len - total_span - len(question), 16)
        context = vocab.sample_filler(rng, filler_len).tolist()
        # Insert spans back-to-front so earlier insertions do not shift later
        # evidence positions.
        depths = np.sort(
            rng.choice(np.arange(8, filler_len - 8), size=num_hops, replace=False)
        )[::-1]
        evidence = []
        for span, depth in zip(reversed(spans), depths):
            context[int(depth):int(depth)] = span
        # Recompute evidence positions front-to-back after all insertions.
        sorted_depths = np.sort(depths)[::1]
        shift = 0
        for span, depth in zip(spans, sorted_depths):
            start = int(depth) + shift
            # Tag anchors only (the first two tokens of each hop's span).
            evidence.extend(range(start, start + 2))
            shift += len(span)
        prompt, offset = _place_question(context, question, question_position)
        samples.append(
            Sample(
                prompt_ids=prompt,
                probe_ids=[int(t) for t in tags],
                evidence_positions=np.asarray(evidence) + offset,
                answer_ids=[int(value)],
                metadata={"num_hops": num_hops},
            )
        )
    return TaskDataset(name=name, samples=samples, metric="recovery",
                       description="multi-hop QA (HotpotQA/2WikiMQA/Musique-like)")


def summarization(
    num_samples: int = 8,
    seq_len: int = 1024,
    num_topics: int = 12,
    seed: int = 2,
    vocab: VocabLayout | None = None,
    name: str = "summarization",
) -> TaskDataset:
    """Summarisation proxy: topic tokens scattered through the document."""
    vocab = vocab or VocabLayout()
    rng = as_rng(seed)
    samples = []
    for _ in range(num_samples):
        topics = vocab.sample_tags(rng, num_topics)
        filler_len = max(seq_len - 2 * num_topics - 4, 32)
        context = vocab.sample_filler(rng, filler_len).tolist()
        positions = np.sort(
            rng.choice(np.arange(4, filler_len - 4), size=num_topics, replace=False)
        )[::-1]
        for topic, pos in zip(reversed(topics.tolist()), positions):
            context[int(pos):int(pos)] = [int(topic), int(topic)]
        evidence = []
        shift = 0
        for topic, pos in zip(topics.tolist(), np.sort(positions)):
            start = int(pos) + shift
            evidence.extend([start, start + 1])
            shift += 2
        question = [vocab.num_special - 1] + [int(t) for t in topics[: min(4, num_topics)]]
        prompt = context + question
        samples.append(
            Sample(
                prompt_ids=prompt,
                probe_ids=[int(t) for t in topics[: min(4, num_topics)]],
                evidence_positions=np.asarray(evidence),
                answer_ids=[int(t) for t in topics],
                metadata={"num_topics": num_topics},
            )
        )
    return TaskDataset(name=name, samples=samples, metric="coverage",
                       description="summarisation proxy (GovReport/QMSum/MultiNews-like)")


def few_shot_recall(
    num_samples: int = 8,
    seq_len: int = 1024,
    num_examples: int = 6,
    seed: int = 3,
    vocab: VocabLayout | None = None,
    name: str = "few-shot",
) -> TaskDataset:
    """Few-shot proxy: the queried pattern also appears in k in-context shots."""
    vocab = vocab or VocabLayout()
    rng = as_rng(seed)
    samples = []
    for _ in range(num_samples):
        tag, = vocab.sample_tags(rng, 1)
        value, = vocab.sample_values(rng, 1)
        shots = [_fact_span(tag, value, tag_repeat=1) for _ in range(num_examples)]
        question = [vocab.num_special - 1, int(tag)]
        total = sum(len(s) for s in shots)
        filler_len = max(seq_len - total - len(question), 16)
        context = vocab.sample_filler(rng, filler_len).tolist()
        positions = np.sort(
            rng.choice(np.arange(4, filler_len - 4), size=num_examples, replace=False)
        )[::-1]
        for shot, pos in zip(reversed(shots), positions):
            context[int(pos):int(pos)] = shot
        evidence = []
        shift = 0
        for shot, pos in zip(shots, np.sort(positions)):
            start = int(pos) + shift
            # The tag anchor of each in-context example is the evidence.
            evidence.append(start)
            shift += len(shot)
        prompt = context + question
        samples.append(
            Sample(
                prompt_ids=prompt,
                probe_ids=[int(tag)] * 3,
                evidence_positions=np.asarray(evidence),
                answer_ids=[int(value)],
                metadata={"num_examples": num_examples},
            )
        )
    return TaskDataset(name=name, samples=samples, metric="coverage",
                       description="few-shot recall (TREC/TriviaQA/SAMSum-like)")


def passkey_retrieval(
    num_samples: int = 8,
    seq_len: int = 1024,
    passkey_len: int = 4,
    seed: int = 4,
    vocab: VocabLayout | None = None,
    depth_fraction: float | None = None,
    name: str = "passkey",
) -> TaskDataset:
    """Exact retrieval: a multi-token passkey hidden at a (possibly fixed)
    depth.  Also the building block of the needle-in-a-haystack grid."""
    vocab = vocab or VocabLayout()
    rng = as_rng(seed)
    samples = []
    for _ in range(num_samples):
        tag, = vocab.sample_tags(rng, 1)
        key_tokens = vocab.sample_values(rng, passkey_len)
        needle = [int(tag), int(tag), int(tag)] + [int(t) for t in key_tokens]
        question = [vocab.num_special - 1, int(tag), int(tag)]
        filler_len = max(seq_len - len(needle) - len(question), 8)
        context = vocab.sample_filler(rng, filler_len).tolist()
        if depth_fraction is None:
            depth = int(rng.integers(low=2, high=max(filler_len - 2, 3)))
        else:
            depth = int(np.clip(depth_fraction, 0.0, 1.0) * (filler_len - 1))
        context[depth:depth] = needle
        prompt = context + question
        # The three tag anchors are the retrievable part of the needle.
        evidence = np.arange(depth, depth + 3)
        samples.append(
            Sample(
                prompt_ids=prompt,
                probe_ids=[int(tag)] * 3,
                evidence_positions=evidence,
                answer_ids=[int(t) for t in key_tokens],
                metadata={"depth_fraction": depth / max(filler_len, 1)},
            )
        )
    return TaskDataset(name=name, samples=samples, metric="exact",
                       description="passkey / needle retrieval (Retr.PassKey-like)")


def kv_retrieval(
    num_samples: int = 8,
    seq_len: int = 1024,
    num_pairs: int = 24,
    seed: int = 5,
    vocab: VocabLayout | None = None,
    name: str = "kv-retrieval",
) -> TaskDataset:
    """Key-value retrieval: many pairs in context, one is queried
    (InfiniteBench Retr.KV), the hardest task for dropping methods."""
    vocab = vocab or VocabLayout()
    rng = as_rng(seed)
    samples = []
    for _ in range(num_samples):
        tags = vocab.sample_tags(rng, num_pairs)
        values = vocab.sample_values(rng, num_pairs)
        target = int(rng.integers(num_pairs))
        pairs = [_fact_span(int(t), int(v), tag_repeat=2) for t, v in zip(tags, values)]
        question = [vocab.num_special - 1, int(tags[target]), int(tags[target])]
        total = sum(len(p) for p in pairs)
        filler_len = max(seq_len - total - len(question), 16)
        context = vocab.sample_filler(rng, filler_len).tolist()
        positions = np.sort(
            rng.choice(np.arange(2, filler_len - 2), size=num_pairs, replace=False)
        )[::-1]
        evidence_start = None
        for idx, (pair, pos) in enumerate(zip(reversed(pairs), positions)):
            context[int(pos):int(pos)] = pair
        shift = 0
        for idx, pos in enumerate(np.sort(positions)):
            start = int(pos) + shift
            if idx == target:
                evidence_start = start
            shift += len(pairs[idx])
        prompt = context + question
        # Tag anchors of the queried pair (its first two tokens).
        evidence = np.arange(evidence_start, evidence_start + 2)
        samples.append(
            Sample(
                prompt_ids=prompt,
                probe_ids=[int(tags[target])] * 3,
                evidence_positions=evidence,
                answer_ids=[int(values[target])],
                metadata={"num_pairs": num_pairs, "target": target},
            )
        )
    return TaskDataset(name=name, samples=samples, metric="exact",
                       description="key-value retrieval (Retr.KV-like)")


def counting(
    num_samples: int = 8,
    seq_len: int = 1024,
    num_occurrences: int = 10,
    seed: int = 6,
    vocab: VocabLayout | None = None,
    name: str = "counting",
) -> TaskDataset:
    """Counting/aggregation: the same marker token occurs many times and all
    occurrences matter (LongBench Count / Math.Find-like)."""
    vocab = vocab or VocabLayout()
    rng = as_rng(seed)
    samples = []
    for _ in range(num_samples):
        tag, = vocab.sample_tags(rng, 1)
        question = [vocab.num_special - 1, int(tag)]
        filler_len = max(seq_len - num_occurrences - len(question), 16)
        context = vocab.sample_filler(rng, filler_len).tolist()
        positions = np.sort(
            rng.choice(np.arange(2, filler_len - 2), size=num_occurrences, replace=False)
        )[::-1]
        for pos in positions:
            context[int(pos):int(pos)] = [int(tag)]
        evidence = [int(pos) + i for i, pos in enumerate(np.sort(positions))]
        prompt = context + question
        samples.append(
            Sample(
                prompt_ids=prompt,
                probe_ids=[int(tag)] * 3,
                evidence_positions=np.asarray(evidence),
                answer_ids=[num_occurrences],
                metadata={"num_occurrences": num_occurrences},
            )
        )
    return TaskDataset(name=name, samples=samples, metric="coverage",
                       description="counting / find-style aggregation")


def cot_arithmetic(
    num_samples: int = 8,
    seq_len: int = 768,
    num_steps: int = 8,
    seed: int = 7,
    vocab: VocabLayout | None = None,
    name: str = "gsm8k-cot",
) -> TaskDataset:
    """Chain-of-thought proxy: numbered reasoning steps that the final answer
    must attend back to (GSM8k-CoT-like, §4.2.6)."""
    vocab = vocab or VocabLayout()
    rng = as_rng(seed)
    samples = []
    for _ in range(num_samples):
        step_tags = vocab.sample_tags(rng, num_steps)
        values = vocab.sample_values(rng, num_steps)
        steps = [_fact_span(int(t), int(v), tag_repeat=1) for t, v in zip(step_tags, values)]
        question = [vocab.num_special - 1] + [int(t) for t in step_tags[-3:]]
        total = sum(len(s) for s in steps)
        filler_len = max(seq_len - total - len(question), 16)
        context = vocab.sample_filler(rng, filler_len).tolist()
        # Reasoning steps appear in order, separated by filler "text".
        segment = max(filler_len // (num_steps + 1), 2)
        evidence = []
        assembled: list[int] = []
        for idx, step in enumerate(steps):
            assembled.extend(context[idx * segment:(idx + 1) * segment])
            # The numbered-step anchor (its tag token) is the evidence.
            evidence.append(len(assembled))
            assembled.extend(step)
        assembled.extend(context[(num_steps) * segment:])
        prompt = assembled + question
        samples.append(
            Sample(
                prompt_ids=prompt,
                probe_ids=[int(t) for t in step_tags[-3:]],
                evidence_positions=np.asarray(evidence),
                answer_ids=[int(values[-1])],
                metadata={"num_steps": num_steps},
            )
        )
    return TaskDataset(name=name, samples=samples, metric="recovery",
                       description="chain-of-thought arithmetic (GSM8k-CoT-like)")
