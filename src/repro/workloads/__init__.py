"""Synthetic long-context workloads standing in for the paper's benchmarks."""

from .base import Sample, TaskDataset, VocabLayout
from .conversation import Conversation, multi_turn_conversation
from .generators import (
    cot_arithmetic,
    counting,
    few_shot_recall,
    kv_retrieval,
    multi_hop_qa,
    passkey_retrieval,
    single_fact_qa,
    summarization,
)
from .needle import NeedleGrid
from .suites import (
    INFINITEBENCH_TASKS,
    LONGBENCH_TASKS,
    infinitebench_suite,
    longbench_qa_suite,
    longbench_suite,
)
from .traces import (
    ArrivalEvent,
    AttentionTrace,
    bursty_arrivals,
    collect_decode_attention,
    mass_concentration,
    merge_arrivals,
    poisson_arrivals,
    power_law_exponent,
    random_deadlines,
    tag_arrivals,
    tag_deadlines,
)

__all__ = [
    "Sample",
    "TaskDataset",
    "VocabLayout",
    "Conversation",
    "multi_turn_conversation",
    "cot_arithmetic",
    "counting",
    "few_shot_recall",
    "kv_retrieval",
    "multi_hop_qa",
    "passkey_retrieval",
    "single_fact_qa",
    "summarization",
    "NeedleGrid",
    "INFINITEBENCH_TASKS",
    "LONGBENCH_TASKS",
    "infinitebench_suite",
    "longbench_qa_suite",
    "longbench_suite",
    "ArrivalEvent",
    "AttentionTrace",
    "bursty_arrivals",
    "collect_decode_attention",
    "mass_concentration",
    "merge_arrivals",
    "poisson_arrivals",
    "power_law_exponent",
    "random_deadlines",
    "tag_arrivals",
    "tag_deadlines",
]
