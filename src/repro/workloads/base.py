"""Data model for synthetic long-context workloads.

The paper evaluates on LongBench, InfiniteBench, Needle-in-a-Haystack, and
GSM8k-CoT.  Those corpora (and the pretrained models that can read them) are
not available offline, so each task family is replaced by a synthetic
generator that plants *evidence tokens* inside long distractor contexts and
asks a question about them.  A sample records where the evidence lives, so
scoring can check whether a selective-attention policy still attends to it —
the exact property the paper's benchmarks measure indirectly through answer
quality.

Vocabulary layout (for the substrate's small vocab):

* ids ``[0, 4)``      — special tokens (PAD/BOS/EOS/SEP),
* ids ``[4, TAG_END)``   — "tag" tokens naming facts,
* ids ``[TAG_END, VALUE_END)`` — "value" tokens holding answers,
* ids ``[VALUE_END, vocab)``   — filler/distractor tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError

__all__ = ["VocabLayout", "Sample", "TaskDataset"]


@dataclass(frozen=True)
class VocabLayout:
    """Partition of the substrate vocabulary into functional ranges."""

    vocab_size: int = 512
    num_special: int = 4
    num_tags: int = 96
    num_values: int = 96

    def __post_init__(self) -> None:
        if self.num_special + self.num_tags + self.num_values >= self.vocab_size:
            raise WorkloadError("vocab too small for the requested layout")

    @property
    def tag_range(self) -> tuple[int, int]:
        start = self.num_special
        return start, start + self.num_tags

    @property
    def value_range(self) -> tuple[int, int]:
        start = self.num_special + self.num_tags
        return start, start + self.num_values

    @property
    def filler_range(self) -> tuple[int, int]:
        return self.num_special + self.num_tags + self.num_values, self.vocab_size

    def sample_tags(self, rng: np.random.Generator, count: int) -> np.ndarray:
        lo, hi = self.tag_range
        if count > hi - lo:
            raise WorkloadError(f"cannot sample {count} distinct tags")
        return rng.choice(np.arange(lo, hi), size=count, replace=False)

    def sample_values(self, rng: np.random.Generator, count: int) -> np.ndarray:
        lo, hi = self.value_range
        if count > hi - lo:
            raise WorkloadError(f"cannot sample {count} distinct values")
        return rng.choice(np.arange(lo, hi), size=count, replace=False)

    def sample_filler(self, rng: np.random.Generator, count: int) -> np.ndarray:
        lo, hi = self.filler_range
        return rng.integers(lo, hi, size=count)


@dataclass
class Sample:
    """One long-context episode.

    Attributes:
        prompt_ids: token ids of the full prompt (context + question).
        probe_ids: token ids fed one-by-one during decoding; the probes keep
            the decode queries "about" the question (teacher forcing).
        evidence_positions: absolute prompt positions a correct answer must
            attend to.
        answer_ids: token ids of the expected answer (informational).
        metadata: generator-specific extras (needle depth, hop count, ...).
    """

    prompt_ids: list[int]
    probe_ids: list[int]
    evidence_positions: np.ndarray
    answer_ids: list[int] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.evidence_positions = np.asarray(self.evidence_positions, dtype=np.int64)
        if len(self.prompt_ids) == 0:
            raise WorkloadError("prompt must not be empty")
        if len(self.probe_ids) == 0:
            raise WorkloadError("each sample needs at least one probe token")
        if self.evidence_positions.size and (
            self.evidence_positions.min() < 0
            or self.evidence_positions.max() >= len(self.prompt_ids)
        ):
            raise WorkloadError("evidence positions must index into the prompt")

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)


@dataclass
class TaskDataset:
    """A named collection of samples with a scoring rule.

    Attributes:
        name: dataset label used in tables.
        samples: the episodes.
        metric: one of ``"recovery"`` (graded evidence-attention recovery,
            QA/summarisation-like), ``"exact"`` (all-or-nothing evidence
            coverage, retrieval-like), ``"coverage"`` (fraction of evidence
            covered, counting/aggregation-like).
        description: one-line description of the paper task it stands in for.
    """

    name: str
    samples: list[Sample]
    metric: str = "recovery"
    description: str = ""

    _METRICS = ("recovery", "exact", "coverage")

    def __post_init__(self) -> None:
        if self.metric not in self._METRICS:
            raise WorkloadError(
                f"metric must be one of {self._METRICS}, got {self.metric!r}"
            )
        if not self.samples:
            raise WorkloadError(f"dataset {self.name!r} has no samples")

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean_prompt_len(self) -> float:
        return float(np.mean([s.prompt_len for s in self.samples]))
