"""Benchmark suites mirroring LongBench and InfiniteBench (paper §4.1.2).

Each paper dataset is mapped onto one of the synthetic generators with
parameters chosen so the suite preserves the *task mix* (QA, summarisation,
few-shot, retrieval, counting) and the relative context lengths (InfiniteBench
contexts are several times longer than LongBench's).  Sequence lengths are
scaled down to what the NumPy substrate evaluates in reasonable time; ratios
between suites are preserved.
"""

from __future__ import annotations

from .base import TaskDataset, VocabLayout
from .generators import (
    cot_arithmetic,
    counting,
    few_shot_recall,
    kv_retrieval,
    multi_hop_qa,
    passkey_retrieval,
    single_fact_qa,
    summarization,
)

__all__ = [
    "LONGBENCH_TASKS",
    "INFINITEBENCH_TASKS",
    "longbench_suite",
    "longbench_qa_suite",
    "infinitebench_suite",
]

#: paper LongBench dataset -> (generator, metric family) mapping
LONGBENCH_TASKS = {
    "narrativeqa": "single_fact_qa",
    "qasper": "single_fact_qa",
    "multifieldqa": "single_fact_qa",
    "hotpotqa": "multi_hop_qa",
    "2wikimqa": "multi_hop_qa",
    "musique": "multi_hop_qa",
    "govreport": "summarization",
    "qmsum": "summarization",
    "multinews": "summarization",
    "trec": "few_shot_recall",
    "triviaqa": "few_shot_recall",
    "samsum": "few_shot_recall",
    "count": "counting",
    "retrieval": "passkey_retrieval",
}

#: paper InfiniteBench dataset -> generator mapping
INFINITEBENCH_TASKS = {
    "en.sum": "summarization",
    "en.qa": "single_fact_qa",
    "en.mc": "single_fact_qa",
    "en.dia": "multi_hop_qa",
    "zh.qa": "single_fact_qa",
    "math.find": "counting",
    "retr.passkey": "passkey_retrieval",
    "retr.number": "passkey_retrieval",
    "retr.kv": "kv_retrieval",
}


def _build(kind: str, name: str, seq_len: int, num_samples: int, seed: int,
           question_position: str, vocab: VocabLayout) -> TaskDataset:
    """Dispatch a generator by kind with consistent arguments."""
    common = {"num_samples": num_samples, "seq_len": seq_len, "seed": seed,
              "vocab": vocab, "name": name}
    if kind == "single_fact_qa":
        return single_fact_qa(question_position=question_position, **common)
    if kind == "multi_hop_qa":
        return multi_hop_qa(question_position=question_position, **common)
    if kind == "summarization":
        return summarization(**common)
    if kind == "few_shot_recall":
        return few_shot_recall(**common)
    if kind == "passkey_retrieval":
        return passkey_retrieval(**common)
    if kind == "kv_retrieval":
        return kv_retrieval(**common)
    if kind == "counting":
        return counting(**common)
    if kind == "cot_arithmetic":
        return cot_arithmetic(**common)
    raise KeyError(kind)


def longbench_suite(
    seq_len: int = 768,
    num_samples: int = 6,
    seed: int = 0,
    question_position: str = "end",
    vocab: VocabLayout | None = None,
    tasks: tuple[str, ...] | None = None,
) -> list[TaskDataset]:
    """The 14-dataset LongBench-like suite (Table 2).

    Args:
        seq_len: prompt length of every sample (LongBench averages ~10k
            tokens; scaled down for the NumPy substrate).
        num_samples: samples per dataset.
        seed: base RNG seed; each dataset gets a distinct derived seed.
        question_position: ``"end"`` (standard) or ``"start"`` (Table 3).
        vocab: vocabulary layout, defaults to the substrate's tiny vocab.
        tasks: optional subset of dataset names to generate.
    """
    vocab = vocab or VocabLayout()
    selected = tasks or tuple(LONGBENCH_TASKS)
    datasets = []
    for index, task_name in enumerate(selected):
        kind = LONGBENCH_TASKS[task_name]
        datasets.append(
            _build(kind, task_name, seq_len, num_samples, seed + 101 * index,
                   question_position, vocab)
        )
    return datasets


def longbench_qa_suite(
    seq_len: int = 768,
    num_samples: int = 6,
    seed: int = 0,
    question_position: str = "start",
    vocab: VocabLayout | None = None,
) -> list[TaskDataset]:
    """The six LongBench QA datasets used in the question-first study (Table 3)."""
    qa_tasks = ("narrativeqa", "qasper", "multifieldqa", "hotpotqa", "2wikimqa", "musique")
    return longbench_suite(seq_len=seq_len, num_samples=num_samples, seed=seed,
                           question_position=question_position, vocab=vocab,
                           tasks=qa_tasks)


def infinitebench_suite(
    seq_len: int = 1536,
    num_samples: int = 5,
    seed: int = 10,
    question_position: str = "end",
    vocab: VocabLayout | None = None,
    tasks: tuple[str, ...] | None = None,
) -> list[TaskDataset]:
    """The 9-dataset InfiniteBench-like suite (Table 4), with ~2x longer
    contexts than the LongBench suite (the paper's are ~10x longer)."""
    vocab = vocab or VocabLayout()
    selected = tasks or tuple(INFINITEBENCH_TASKS)
    datasets = []
    for index, task_name in enumerate(selected):
        kind = INFINITEBENCH_TASKS[task_name]
        datasets.append(
            _build(kind, task_name, seq_len, num_samples, seed + 131 * index,
                   question_position, vocab)
        )
    return datasets
