"""Analytical models: KVCache memory/transfer costs and complexity accounting."""

from .cost_model import ComplexityModel, KVCacheCostModel

__all__ = ["ComplexityModel", "KVCacheCostModel"]
