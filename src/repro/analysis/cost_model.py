"""KVCache memory and transfer cost model (Figure 1 and §3.2 accounting).

Figure 1 of the paper shows how KVCache memory grows with batch size, model
size, and sequence length, and the theoretical CPU→GPU transfer latency over
PCIe Gen 5.  This module reproduces those curves analytically from model
geometry and interconnect bandwidth, and also provides the §3.2 complexity
formulas so benchmarks can check the asymptotic claims (PQ overhead is linear
in ``s`` with a small multiplier ``h_kv * m``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pqcache import PQCacheConfig
from ..llm.config import ModelConfig
from ..memory.devices import InterconnectSpec, StorageSpec

__all__ = ["KVCacheCostModel", "ComplexityModel"]

_GIB = float(1024 ** 3)


@dataclass(frozen=True)
class KVCacheCostModel:
    """Memory/transfer accounting for a model's KVCache.

    ``storage`` is optional: capacity planning for a single instance only
    needs the interconnect, but cluster-level planning (cross-worker chain
    migration, disk spill) also prices the NVMe leg.
    """

    model: ModelConfig
    interconnect: InterconnectSpec
    storage: "StorageSpec | None" = None

    def kvcache_gib(self, seq_len: int, batch_size: int = 1) -> float:
        """KVCache size in GiB for a batch of sequences."""
        return self.model.kvcache_bytes(seq_len, batch_size) / _GIB

    def transfer_seconds(self, seq_len: int, batch_size: int = 1) -> float:
        """Time to move the whole KVCache across the interconnect once."""
        num_bytes = self.model.kvcache_bytes(seq_len, batch_size)
        return self.interconnect.transfer_seconds(num_bytes)

    def migration_seconds(
        self, seq_len: int, batch_size: int = 1, from_disk: bool = False
    ) -> float:
        """Time to migrate a chain's KV to another worker once.

        The PCIe leg always applies (the bytes enter the target GPU's
        pool); ``from_disk`` adds the owning worker's NVMe read of a
        spilled chain, serialised before the transfer — the same
        dependency shape :meth:`~repro.memory.LatencyModel.migration_timeline`
        bills inside the serving cluster.
        """
        num_bytes = self.model.kvcache_bytes(seq_len, batch_size)
        seconds = self.interconnect.transfer_seconds(num_bytes)
        if from_disk:
            if self.storage is None:
                raise ValueError(
                    "from_disk migration accounting needs a StorageSpec"
                )
            seconds += self.storage.read_seconds(num_bytes)
        return seconds

    def fits_in_gpu(self, seq_len: int, batch_size: int, gpu_memory_gib: float) -> bool:
        """Whether the KVCache alone fits in ``gpu_memory_gib``."""
        return self.kvcache_gib(seq_len, batch_size) <= gpu_memory_gib

    def sweep(self, seq_lens, batch_sizes) -> list[dict]:
        """Grid of (seq_len, batch) -> memory and transfer latency rows."""
        rows = []
        for batch in batch_sizes:
            for seq_len in seq_lens:
                rows.append(
                    {
                        "model": self.model.name,
                        "batch_size": int(batch),
                        "seq_len": int(seq_len),
                        "kvcache_gib": self.kvcache_gib(seq_len, batch),
                        "transfer_seconds": self.transfer_seconds(seq_len, batch),
                    }
                )
        return rows


@dataclass(frozen=True)
class ComplexityModel:
    """Closed-form operation counts from §3.2 of the paper."""

    model: ModelConfig
    pq: PQCacheConfig

    def prefill_attention_ops(self, seq_len: int) -> float:
        """O(s^2 d / h + s d^2): per-layer prefill matmul operations."""
        d = self.model.hidden_dim
        h = self.model.num_heads
        return float(seq_len) ** 2 * d / h + float(seq_len) * d * d

    def kmeans_ops(self, seq_len: int, iterations: int) -> float:
        """O(s h_kv m d_m 2^b T): clustering work for one layer."""
        d_m = self.model.head_dim // self.pq.num_partitions
        return (
            float(seq_len)
            * self.model.num_kv_heads
            * self.pq.num_partitions
            * d_m
            * (1 << self.pq.num_bits)
            * iterations
        )

    def decode_original_ops(self, seq_len: int) -> float:
        """O(s d + d^2): per-layer decode work with full attention."""
        d = self.model.hidden_dim
        return float(seq_len) * d + d * d

    def decode_pq_ops(self, seq_len: int, k: int) -> float:
        """O(2^b d^2/(h m) + h_kv m s + k d + d^2): PQCache decode work."""
        d = self.model.hidden_dim
        h = self.model.num_heads
        m = self.pq.num_partitions
        return (
            (1 << self.pq.num_bits) * d * d / (h * m)
            + self.model.num_kv_heads * m * float(seq_len)
            + float(k) * d
            + d * d
        )

    def pq_memory_elements(self, seq_len: int) -> float:
        """O(h_kv m s + h_kv 2^b d_h): PQ codes + centroids element count."""
        return (
            self.model.num_kv_heads * self.pq.num_partitions * float(seq_len)
            + self.model.num_kv_heads * (1 << self.pq.num_bits) * self.model.head_dim
        )

    def seq_multiplier_ratio(self) -> float:
        """Ratio of the decode-time sequence-length multiplier of PQCache
        (``h_kv * m``) to the original attention multiplier (``d``).

        §3.2 argues this is much smaller than 1 (e.g. 8*2/4096 for a 7B
        model), which is why PQ search is cheap relative to dense attention.
        """
        return (
            self.model.num_kv_heads * self.pq.num_partitions
            / float(self.model.hidden_dim)
        )
