"""Evaluation harness: run policies over synthetic datasets and score them.

The harness reproduces the paper's quality-evaluation loop:

1. build (or reuse) the substrate model,
2. prefill each sample's prompt once,
3. for every policy, clone the prefilled KVCache, let the policy build its
   state (PQ codebooks, retained sets, block representatives, ...),
4. feed the sample's probe tokens as teacher-forced decode steps through the
   serving engine (:class:`repro.serve.InferenceEngine` in
   ``forced_decode_ids`` mode), recording every per-layer selection decision
   via the engine's selection hook,
5. score the recorded selections against the sample's evidence positions
   with the dataset's metric, and average into a 0-100 score per dataset —
   the same shape as the LongBench / InfiniteBench score tables.

Driving the engine (rather than a private decode loop) keeps the quality
harness and the serving path on one code path.  Prefill results are cached
per sample so evaluating eight policies costs one prefill, not eight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines.base import KVCachePolicy, SelectionBudget
from ..llm.config import ModelConfig
from ..llm.kvcache import KVCache
from ..llm.model import PrefillResult, TransformerLM
from ..memory.devices import HardwareSpec
from ..memory.latency import LatencyModel
from ..serve.engine import InferenceEngine
from ..serve.request import PolicySpec, Request
from ..serve.scheduler import SchedulerConfig
from ..workloads.base import Sample, TaskDataset
from .metrics import StepObservation, attention_recall_at_k, score_step

__all__ = ["DatasetScore", "EvaluationHarness", "clone_prefill"]

PolicyFactory = Callable[[], KVCachePolicy]


def clone_prefill(prefill: PrefillResult, config: ModelConfig) -> PrefillResult:
    """Deep-copy the mutable parts of a prefill result (the KVCache).

    Decode steps append to the cache and PQCache/H2O mutate derived state, so
    every policy gets its own cache copy; the immutable aggregates and logits
    are shared.
    """
    cache = KVCache(
        config.num_layers, config.num_kv_heads, config.head_dim,
        config.dtype_bytes,
    )
    for layer_index in range(config.num_layers):
        source = prefill.kvcache[layer_index]
        cache[layer_index].append(source.keys.copy(), source.values.copy())
    return PrefillResult(
        kvcache=cache,
        last_hidden=prefill.last_hidden,
        logits=prefill.logits,
        aggregates=prefill.aggregates,
        prompt_queries=prefill.prompt_queries,
        seq_len=prefill.seq_len,
    )


@dataclass
class DatasetScore:
    """Aggregated result of one policy on one dataset."""

    dataset: str
    policy: str
    score: float
    per_sample: list[float] = field(default_factory=list)
    attention_recall: float = float("nan")

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "policy": self.policy,
            "score": self.score,
            "attention_recall": self.attention_recall,
            "num_samples": len(self.per_sample),
        }


class EvaluationHarness:
    """Shared model + prefill cache for comparing policies on task suites."""

    def __init__(
        self,
        model_config: ModelConfig | None = None,
        seed: int = 0,
        qk_coupling: float = 0.9,
        rope_base: float = 1e6,
        observation_window: int = 32,
        model: TransformerLM | None = None,
        prefill_fn: Callable[[TransformerLM, Sequence[int]], PrefillResult] | None = None,
    ) -> None:
        self.model_config = model_config or ModelConfig.tiny()
        self.model = model or TransformerLM(
            self.model_config, seed=seed, qk_coupling=qk_coupling, rope_base=rope_base
        )
        self.observation_window = observation_window
        #: optional custom prefill (e.g. the MInference-style sparse prefill)
        self.prefill_fn = prefill_fn
        self._prefill_cache: dict[int, PrefillResult] = {}
        self._max_cached_prefills = 256
        #: shared latency model for the per-sample engines (cheap to build,
        #: but sharing keeps the simulated-clock assumptions identical).
        self._latency_model = LatencyModel(
            HardwareSpec.paper_testbed(), self.model_config
        )

    # -------------------------------------------------------------- prefill

    def _prefill(self, sample: Sample) -> PrefillResult:
        # Key by the prompt contents: sample objects are transient and id()
        # values get recycled, which would silently return a stale prefill.
        key = hash(tuple(sample.prompt_ids))
        if key not in self._prefill_cache:
            if self.prefill_fn is not None:
                result = self.prefill_fn(self.model, sample.prompt_ids)
            else:
                result = self.model.prefill(
                    sample.prompt_ids, observation_window=self.observation_window
                )
            if len(self._prefill_cache) >= self._max_cached_prefills:
                self._prefill_cache.pop(next(iter(self._prefill_cache)))
            self._prefill_cache[key] = result
        return self._prefill_cache[key]

    def clear_cache(self) -> None:
        """Drop cached prefills (frees memory between suites)."""
        self._prefill_cache.clear()

    # ------------------------------------------------------------- evaluate

    def run_sample(
        self, policy: KVCachePolicy, sample: Sample
    ) -> list[StepObservation]:
        """Run one sample under one policy and return every selection made.

        The sample's probe tokens are fed as teacher-forced decode steps
        through a single-slot :class:`~repro.serve.InferenceEngine`; the
        engine's selection hook records one :class:`StepObservation` per
        layer per step.
        """
        config = self.model_config
        shared = self._prefill(sample)
        prefill = clone_prefill(shared, config)

        observations: list[StepObservation] = []

        def record(layer_index: int, query: np.ndarray, cache: KVCache, selected) -> None:
            # ``selected`` arrives already normalised by the engine's
            # selector: per-KV-head int64 index arrays, or None.
            layer_cache = cache[layer_index]
            kv_queries = query.reshape(
                config.num_kv_heads, config.gqa_group_size, config.head_dim
            ).mean(axis=1)
            observations.append(
                StepObservation(
                    layer=layer_index,
                    kv_queries=kv_queries,
                    keys=layer_cache.keys.copy(),
                    selected=selected,
                    segments=policy.budget.segments(len(layer_cache)),
                )
            )

        request = Request(
            prompt_ids=list(sample.prompt_ids),
            policy_spec=PolicySpec.from_instance(policy),
            forced_decode_ids=[int(p) for p in sample.probe_ids],
            prefill=prefill,
            selection_hook=record,
        )
        engine = InferenceEngine(
            self.model,
            scheduler_config=SchedulerConfig(max_batch_size=1),
            latency_model=self._latency_model,
        )
        engine.run([request])
        return observations

    def evaluate(
        self,
        policy_factory: PolicyFactory,
        dataset: TaskDataset,
        policy_name: str | None = None,
        recall_k: int | None = None,
        layer_aggregation: str = "max",
    ) -> DatasetScore:
        """Score one policy on one dataset (0-100).

        ``layer_aggregation`` controls how per-layer selection scores combine
        within one decode step: ``"max"`` (default) models that evidence
        reaching attention in *any* layer suffices for the answer — this is
        what keeps Oracle close to Full, as in the paper — while ``"mean"``
        is the stricter all-layers view used by the ablation benchmarks.
        """
        per_sample: list[float] = []
        recalls: list[float] = []
        name = policy_name or "policy"
        num_layers = self.model_config.num_layers
        reduce_layers = np.max if layer_aggregation == "max" else np.mean
        for sample in dataset.samples:
            policy = policy_factory()
            name = policy_name or policy.name
            observations = self.run_sample(policy, sample)
            step_scores = []
            for start in range(0, len(observations), num_layers):
                step_obs = observations[start:start + num_layers]
                layer_scores = [
                    score_step(dataset.metric, obs, sample.evidence_positions)
                    for obs in step_obs
                ]
                step_scores.append(float(reduce_layers(layer_scores)))
            per_sample.append(float(np.mean(step_scores)) if step_scores else 0.0)
            if recall_k is not None:
                recalls.append(
                    float(np.mean([attention_recall_at_k(obs, recall_k)
                                   for obs in observations]))
                )
        return DatasetScore(
            dataset=dataset.name,
            policy=name,
            score=100.0 * float(np.mean(per_sample)),
            per_sample=per_sample,
            attention_recall=float(np.mean(recalls)) if recalls else float("nan"),
        )

    def evaluate_suite(
        self,
        policy_factories: dict[str, PolicyFactory],
        datasets: Sequence[TaskDataset],
        recall_k: int | None = None,
    ) -> dict[str, dict[str, float]]:
        """Score every policy on every dataset.

        Returns ``{dataset_name: {policy_name: score}}`` plus an ``"average"``
        row, matching the layout of the paper's Tables 2 and 4.
        """
        table: dict[str, dict[str, float]] = {}
        for dataset in datasets:
            row: dict[str, float] = {}
            for policy_name, factory in policy_factories.items():
                result = self.evaluate(factory, dataset, policy_name, recall_k)
                row[policy_name] = result.score
            table[dataset.name] = row
        if table:
            policies = list(next(iter(table.values())))
            table["average"] = {
                p: float(np.mean([table[d][p] for d in table if d != "average"]))
                for p in policies
            }
        return table

    # ------------------------------------------------------------ reporting

    @staticmethod
    def format_table(table: dict[str, dict[str, float]]) -> str:
        """Render a suite result as an aligned text table."""
        if not table:
            return "(empty)"
        policies = list(next(iter(table.values())))
        header = ["dataset"] + policies
        widths = [max(len(h), 14) for h in header]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        for dataset, row in table.items():
            cells = [dataset.ljust(widths[0])]
            for i, policy in enumerate(policies, start=1):
                cells.append(f"{row[policy]:6.2f}".ljust(widths[i]))
            lines.append("  ".join(cells))
        return "\n".join(lines)
