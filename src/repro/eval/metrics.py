"""Scoring metrics for selective-attention policies.

The paper reports each benchmark task's native metric (accuracy, F1,
Rouge-L).  Without real text those collapse into one underlying question: at
decode time, does the policy still attend to the tokens the answer depends
on?  Three task-level metrics capture the families used by the suites:

* ``recovery`` — attention-mass-weighted evidence recovery (graded; QA and
  summary-style tasks).
* ``exact``    — all evidence tokens present in the selected set (retrieval
  tasks: PassKey / Number / KV-retrieval / needle).
* ``coverage`` — fraction of evidence tokens present (counting, few-shot and
  summarisation tasks where partial credit makes sense).

In addition, policy-vs-full fidelity metrics (top-k attention recall and
logit divergence) are provided for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.kvcache import TokenSegments
from ..utils import softmax, topk_indices

__all__ = [
    "StepObservation",
    "evidence_recovery",
    "evidence_exact",
    "evidence_coverage",
    "attention_recall_at_k",
    "logit_divergence",
    "score_step",
]


@dataclass
class StepObservation:
    """Everything recorded for one (decode step, layer) selection decision.

    Attributes:
        layer: layer index.
        kv_queries: ``(h_kv, d_h)`` group-mean queries used for scoring.
        keys: ``(h_kv, s, d_h)`` keys available at that moment.
        selected: per-KV-head arrays of selected token indices (``None`` for
            full attention).
        segments: initial/middle/local partition at that moment.
    """

    layer: int
    kv_queries: np.ndarray
    keys: np.ndarray
    selected: list[np.ndarray] | None
    segments: TokenSegments

    def selected_union(self) -> np.ndarray:
        """Union of selected indices across heads (all tokens if full)."""
        seq_len = self.keys.shape[1]
        if self.selected is None:
            return np.arange(seq_len, dtype=np.int64)
        if not self.selected:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([np.asarray(s, dtype=np.int64)
                                         for s in self.selected]))

    def per_head_selected(self) -> list[np.ndarray]:
        seq_len = self.keys.shape[1]
        h_kv = self.keys.shape[0]
        if self.selected is None:
            full = np.arange(seq_len, dtype=np.int64)
            return [full] * h_kv
        return [np.asarray(s, dtype=np.int64) for s in self.selected]


def _full_attention_probs(obs: StepObservation) -> np.ndarray:
    """Exact softmax of each KV-head query over all keys: ``(h_kv, s)``."""
    d_h = obs.keys.shape[-1]
    logits = np.einsum("hd,hsd->hs", obs.kv_queries, obs.keys) / np.sqrt(d_h)
    return softmax(logits, axis=-1)


def evidence_recovery(obs: StepObservation, evidence: np.ndarray) -> float:
    """Attention mass on evidence captured by the selection, relative to the
    mass full attention puts there (in [0, 1], averaged over KV heads)."""
    evidence = np.asarray(evidence, dtype=np.int64)
    if evidence.size == 0:
        return 1.0
    probs = _full_attention_probs(obs)
    selected = obs.per_head_selected()
    ratios = []
    for head, indices in enumerate(selected):
        full_mass = probs[head, evidence].sum()
        if full_mass <= 1e-12:
            ratios.append(1.0)
            continue
        covered = np.intersect1d(evidence, indices, assume_unique=False)
        ratios.append(float(probs[head, covered].sum() / full_mass))
    return float(np.mean(ratios))


def evidence_exact(obs: StepObservation, evidence: np.ndarray) -> float:
    """1.0 if every evidence token is attended by at least one KV head."""
    evidence = np.asarray(evidence, dtype=np.int64)
    if evidence.size == 0:
        return 1.0
    union = obs.selected_union()
    return float(np.isin(evidence, union).all())


def evidence_coverage(obs: StepObservation, evidence: np.ndarray) -> float:
    """Fraction of evidence tokens attended by at least one KV head."""
    evidence = np.asarray(evidence, dtype=np.int64)
    if evidence.size == 0:
        return 1.0
    union = obs.selected_union()
    return float(np.isin(evidence, union).mean())


def attention_recall_at_k(obs: StepObservation, k: int) -> float:
    """Recall of the exact top-k middle tokens by the selected middle set.

    This is the pure retrieval-quality metric (independent of any task):
    how much of the true top-k does the policy's candidate set contain.
    """
    middle = obs.segments.middle_indices
    if middle.size == 0 or k <= 0:
        return 1.0
    probs = _full_attention_probs(obs)
    selected = obs.per_head_selected()
    recalls = []
    for head, indices in enumerate(selected):
        scores = probs[head, middle]
        true_top = middle[topk_indices(scores, min(k, middle.size))]
        hit = np.isin(true_top, indices).sum()
        recalls.append(hit / true_top.size)
    return float(np.mean(recalls))


def logit_divergence(policy_logits: np.ndarray, full_logits: np.ndarray) -> float:
    """KL(full || policy) between next-token distributions (fidelity metric)."""
    p = softmax(np.asarray(full_logits, dtype=np.float64))
    log_q = np.asarray(policy_logits, dtype=np.float64)
    log_q = log_q - np.max(log_q)
    log_q = log_q - np.log(np.sum(np.exp(log_q)))
    log_p = np.log(np.maximum(p, 1e-300))
    return float(np.sum(p * (log_p - log_q)))


_METRIC_FNS = {
    "recovery": evidence_recovery,
    "exact": evidence_exact,
    "coverage": evidence_coverage,
}


def score_step(metric: str, obs: StepObservation, evidence: np.ndarray) -> float:
    """Dispatch a task metric by name."""
    return _METRIC_FNS[metric](obs, evidence)
