"""Quality-evaluation harness: task metrics, dataset scoring and suite tables."""

from .metrics import (
    StepObservation,
    attention_recall_at_k,
    evidence_coverage,
    evidence_exact,
    evidence_recovery,
    logit_divergence,
    score_step,
)
from .runner import DatasetScore, EvaluationHarness, clone_prefill

__all__ = [
    "StepObservation",
    "attention_recall_at_k",
    "evidence_coverage",
    "evidence_exact",
    "evidence_recovery",
    "logit_divergence",
    "score_step",
    "DatasetScore",
    "EvaluationHarness",
    "clone_prefill",
]
