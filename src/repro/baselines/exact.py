"""Reference policies: full attention and the exact top-k Oracle.

``Full`` reproduces the uncompressed baseline column of Tables 2 and 4.
``Oracle`` retrieves the *exact* top-k middle tokens for every KV head by
scoring the real keys against the current query — the upper bound PQCache
approximates with PQ codes (paper §4.1.3: "an 'Oracle' method that retrieves
the exact top-k tokens for each head").
"""

from __future__ import annotations

import numpy as np

from ..llm.kvcache import KVCache
from .base import KVCachePolicy, SelectionBudget

__all__ = ["FullAttentionPolicy", "OracleTopKPolicy"]


class FullAttentionPolicy(KVCachePolicy):
    """Attend to every cached token (no compression)."""

    name = "full"
    is_dropping = False

    def select(self, layer_index: int, query: np.ndarray, cache: KVCache):
        # None signals the attention kernel to use all tokens.
        self.last_selected_middle = None
        return None


class OracleTopKPolicy(KVCachePolicy):
    """Exact top-k selective attention (upper bound for retrieval methods).

    The oracle reads the true keys of all middle tokens — something a real
    deployment cannot afford because those keys live in CPU memory — and
    keeps the ``k`` with the largest inner product against the (group-mean)
    query of each KV head.
    """

    name = "oracle"
    is_dropping = False

    def select(self, layer_index: int, query: np.ndarray, cache: KVCache):
        config = self._require_config()
        layer_cache = cache[layer_index]
        seq_len = len(layer_cache)
        segments = self.budget.segments(seq_len)
        middle = segments.middle_indices
        k = self.budget.middle_budget(self.prompt_len)

        kv_queries = self._kv_queries(query)
        selected = []
        for head in range(config.num_kv_heads):
            if middle.size == 0:
                selected.append(np.empty(0, dtype=np.int64))
                continue
            keys = layer_cache.keys[head, middle, :]
            scores = keys @ kv_queries[head]
            selected.append(self._topk(scores, middle, k))
        return self._assemble(selected, segments)
