"""KVCache *offloading* baselines: SPARQ and InfLLM.

Both keep the full KVCache in CPU memory and fetch a subset per decode step,
like PQCache, but differ in how they estimate relevance under a tight
communication budget:

* **SPARQ** picks the ``r`` query dimensions with the largest magnitude,
  fetches only those dimensions of every key, and ranks tokens by the partial
  inner product.  Quality scales with ``r``; the paper constrains ``r`` to 1
  or 2 out of 128 dimensions to match the communication budget.
* **InfLLM** partitions the middle tokens into fixed-size blocks, keeps a few
  representative tokens per block, scores blocks by their representatives and
  fetches whole blocks.  The block-contiguity assumption hurts tasks where
  relevant tokens are scattered (the paper's needle results).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..llm.config import ModelConfig
from ..llm.kvcache import KVCache
from ..llm.model import PrefillResult
from ..utils import topk_indices
from .base import KVCachePolicy, SelectionBudget

__all__ = ["SparqPolicy", "InfLLMPolicy"]


class SparqPolicy(KVCachePolicy):
    """SPARQ attention: rank keys by a few high-magnitude query dimensions."""

    name = "sparq"
    is_dropping = False

    def __init__(self, budget: SelectionBudget, rank: int | None = None) -> None:
        super().__init__(budget)
        #: number of key dimensions fetched for scoring; ``None`` derives it
        #: from the communication ratio at prefill time (r = comm_ratio * d_h)
        self.rank = rank

    def _effective_rank(self) -> int:
        config = self._require_config()
        if self.rank is not None:
            return max(int(self.rank), 1)
        return max(int(round(self.budget.comm_ratio * config.head_dim)), 1)

    def select(self, layer_index: int, query: np.ndarray, cache: KVCache):
        config = self._require_config()
        layer_cache = cache[layer_index]
        seq_len = len(layer_cache)
        segments = self.budget.segments(seq_len)
        middle = segments.middle_indices
        k = self.budget.middle_budget(self.prompt_len)
        r = self._effective_rank()

        kv_queries = self._kv_queries(query)
        selected = []
        for head in range(config.num_kv_heads):
            if middle.size == 0:
                selected.append(np.empty(0, dtype=np.int64))
                continue
            q_head = kv_queries[head]
            dims = topk_indices(np.abs(q_head), r)
            keys_partial = layer_cache.keys[head][np.ix_(middle, dims)]
            scores = keys_partial @ q_head[dims]
            selected.append(self._topk(scores, middle, k))
        return self._assemble(selected, segments)

    def step_communication_bytes(self, seq_len: int) -> dict:
        """SPARQ fetches ``r`` dimensions of every key (blocking: it must
        finish before ranking) plus the selected tokens' key/values."""
        config = self._require_config()
        r = self._effective_rank()
        dtype = config.dtype_bytes
        partial_keys = seq_len * config.num_kv_heads * r * dtype
        k = self.budget.middle_budget(self.prompt_len)
        topk_fetch = k * config.num_kv_heads * 2 * config.head_dim * dtype
        return {"overlappable": 0.0, "blocking": float(partial_keys + topk_fetch)}


class InfLLMPolicy(KVCachePolicy):
    """InfLLM: block-level retrieval with representative tokens."""

    name = "infllm"
    is_dropping = False

    def __init__(
        self,
        budget: SelectionBudget,
        block_size: int = 128,
        representatives_per_block: int | None = None,
    ) -> None:
        super().__init__(budget)
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        self.block_size = block_size
        #: representatives per block; ``None`` derives it from the
        #: communication ratio (1 per 128 tokens at 1/128, 2 at 1/64).
        self.representatives_per_block = representatives_per_block
        self._representatives: list[list[dict]] = []

    def _effective_reps(self) -> int:
        if self.representatives_per_block is not None:
            return max(int(self.representatives_per_block), 1)
        return max(int(round(self.budget.comm_ratio * self.block_size)), 1)

    def _prepare(self, config: ModelConfig, prefill: PrefillResult) -> None:
        """Choose representative tokens per block from prefill attention.

        Representatives are the tokens within each block that received the
        most accumulated attention during prefilling, matching InfLLM's use
        of locally important tokens as block summaries.
        """
        self._representatives = []
        segments = self.budget.segments(prefill.seq_len)
        middle = segments.middle_indices
        reps = self._effective_reps()
        for layer_index, aggregates in enumerate(prefill.aggregates):
            layer_entry = []
            for head in range(config.num_kv_heads):
                blocks = []
                for start in range(0, middle.size, self.block_size):
                    block_tokens = middle[start: start + self.block_size]
                    scores = aggregates.accumulated_scores[head, block_tokens]
                    rep_local = topk_indices(scores, min(reps, block_tokens.size))
                    blocks.append(
                        {
                            "tokens": block_tokens,
                            "representatives": block_tokens[rep_local],
                        }
                    )
                layer_entry.append({"blocks": blocks})
            self._representatives.append(layer_entry)

    def select(self, layer_index: int, query: np.ndarray, cache: KVCache):
        config = self._require_config()
        layer_cache = cache[layer_index]
        seq_len = len(layer_cache)
        segments = self.budget.segments(seq_len)
        k = self.budget.middle_budget(self.prompt_len)
        kv_queries = self._kv_queries(query)

        selected = []
        for head in range(config.num_kv_heads):
            blocks = self._representatives[layer_index][head]["blocks"]
            if not blocks:
                selected.append(np.empty(0, dtype=np.int64))
                continue
            block_scores = np.empty(len(blocks), dtype=np.float64)
            for b, block in enumerate(blocks):
                rep_idx = block["representatives"]
                if rep_idx.size == 0:
                    block_scores[b] = -np.inf
                    continue
                rep_keys = layer_cache.keys[head, rep_idx, :]
                block_scores[b] = float(np.max(rep_keys @ kv_queries[head]))
            # Fetch whole blocks in score order until the token budget fills.
            order = np.argsort(-block_scores, kind="stable")
            chosen: list[np.ndarray] = []
            used = 0
            for b in order:
                tokens = blocks[b]["tokens"]
                if used >= k:
                    break
                take = tokens[: max(k - used, 0)] if used + tokens.size > k else tokens
                chosen.append(take)
                used += take.size
            middle_sel = (
                np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
            )
            selected.append(np.sort(middle_sel))
        return self._assemble(selected, segments)

    def step_communication_bytes(self, seq_len: int) -> dict:
        """Representative keys are fetched (overlappable, they are static),
        chosen blocks' key/values are blocking."""
        config = self._require_config()
        dtype = config.dtype_bytes
        reps = self._effective_reps()
        num_blocks = max(seq_len // self.block_size, 1)
        rep_bytes = num_blocks * reps * config.num_kv_heads * config.head_dim * dtype
        k = self.budget.middle_budget(self.prompt_len)
        block_fetch = k * config.num_kv_heads * 2 * config.head_dim * dtype
        return {"overlappable": float(rep_bytes), "blocking": float(block_fetch)}
