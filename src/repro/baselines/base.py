"""Common interface for KVCache selective-attention policies.

Every method compared in the paper — PQCache itself, the dropping baselines
(H2O, SnapKV, PyramidKV, StreamingLLM) and the offloading baselines (SPARQ,
InfLLM), plus Full and Oracle — is expressed as a :class:`KVCachePolicy`:

* :meth:`KVCachePolicy.on_prefill` receives the model config and the
  :class:`~repro.llm.model.PrefillResult` so it can build whatever per-layer
  state it needs (PQ codebooks, accumulated attention scores, block
  representatives, ...).
* :meth:`KVCachePolicy.select` is called once per layer per decode step with
  the current query and cache, and returns the token indices that participate
  in attention (per KV head), or ``None`` for full attention.
* :meth:`KVCachePolicy.on_decode_step` lets stateful policies update
  themselves after a new token has been appended to the cache.
* :meth:`KVCachePolicy.select_batch` / :meth:`KVCachePolicy.on_decode_step_batch`
  are the fused-decode-round counterparts: the serving engine groups the
  RUNNING requests that share a policy class and hands them over together, so
  a policy can run one cross-request grouped kernel instead of one kernel per
  request.  The defaults fall back to the per-request methods item by item —
  overrides must stay byte-identical to that fallback.
* :meth:`KVCachePolicy.step_communication_bytes` reports the CPU→GPU traffic
  a real deployment would incur for one decode step at a given sequence
  length, which feeds the latency models.

The shared :class:`SelectionBudget` implements the paper's two experiment
knobs: the fraction of previous tokens used in selective attention and the
extra-communication ratio relative to the raw keys (§4.1.3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..llm.config import ModelConfig
from ..llm.kvcache import KVCache, TokenSegments
from ..llm.model import PrefillResult
from ..utils import topk_indices

__all__ = ["SelectionBudget", "KVCachePolicy"]


@dataclass(frozen=True)
class SelectionBudget:
    """Token and communication budgets shared by all policies.

    Attributes:
        token_ratio: fraction of the prompt tokens allowed in selective
            attention (1/5 and 1/10 in the paper's tables).
        comm_ratio: extra communication allowed for relevance pre-computation,
            expressed as a fraction of the raw keys' memory (1/128 or 1/64).
        num_initial: attention-sink tokens always kept (``initial tokens``).
        num_local: most recent tokens always kept (``local tokens``).
        min_middle: lower bound on retrieved middle tokens so extremely short
            prompts still exercise the retrieval path.
    """

    token_ratio: float = 0.2
    comm_ratio: float = 1.0 / 128.0
    num_initial: int = 4
    num_local: int = 32
    min_middle: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.token_ratio <= 1.0:
            raise ConfigurationError("token_ratio must be in (0, 1]")
        if not 0.0 < self.comm_ratio <= 1.0:
            raise ConfigurationError("comm_ratio must be in (0, 1]")
        if self.num_initial < 0 or self.num_local < 0:
            raise ConfigurationError("segment sizes must be >= 0")
        if self.min_middle < 0:
            raise ConfigurationError("min_middle must be >= 0")

    def total_tokens(self, prompt_len: int) -> int:
        """Total token budget for a prompt of ``prompt_len`` tokens."""
        return max(int(round(self.token_ratio * prompt_len)), 1)

    def middle_budget(self, prompt_len: int) -> int:
        """Middle-token (retrieval) budget after reserving init/local."""
        reserved = self.num_initial + self.num_local
        return max(self.total_tokens(prompt_len) - reserved, self.min_middle)

    def segments(self, seq_len: int) -> TokenSegments:
        """Initial/middle/local split of the current sequence."""
        return TokenSegments(
            seq_len=seq_len,
            num_initial=self.num_initial,
            num_local=self.num_local,
        )


class KVCachePolicy(abc.ABC):
    """Base class for selective-attention policies."""

    #: human-readable identifier used in tables and reports
    name: str = "policy"
    #: whether the policy keeps the full KVCache (offloading) or discards
    #: entries permanently (dropping)
    is_dropping: bool = False
    #: whether the policy can build (part of) its state from prefill chunks
    #: as they arrive (see :meth:`on_prefill_chunk`); policies that cannot
    #: simply get one :meth:`on_prefill` call when the prompt completes.
    supports_incremental_prefill: bool = False
    #: whether the policy reads :class:`~repro.llm.model.PrefillAggregates`
    #: (accumulated / windowed attention scores).  The serving engine's
    #: prefix cache only resumes a prefill past a point where those
    #: aggregates can be reconstructed exactly when this is true; policies
    #: that never look at them (PQCache) may opt out for longer reuse.
    #: Conservative default: ``True``.
    needs_prefill_aggregates: bool = True

    def __init__(self, budget: SelectionBudget) -> None:
        self.budget = budget
        self.config: ModelConfig | None = None
        self.prompt_len: int = 0
        #: per-step record of the middle-token indices each KV head selected
        #: in the *last* layer processed, useful for cache-trace replay.
        self.last_selected_middle: list[np.ndarray] | None = None
        #: maintenance descriptor set by :meth:`on_decode_step` overrides and
        #: drained by the engine via :meth:`consume_maintenance`.
        self._pending_maintenance: dict | None = None

    # ----------------------------------------------------------- lifecycle

    def on_prefill(self, config: ModelConfig, prefill: PrefillResult) -> None:
        """Inspect the prefill result and build per-layer state."""
        self.config = config
        self.prompt_len = prefill.seq_len
        self._prepare(config, prefill)

    def _prepare(self, config: ModelConfig, prefill: PrefillResult) -> None:
        """Hook for subclasses; default is stateless."""

    def on_prefill_chunk(
        self,
        config: ModelConfig,
        kvcache: KVCache,
        start: int,
        stop: int,
        total_len: int,
    ) -> None:
        """Observe one prefill chunk of a chunked-prefill request.

        Called by the serving engine after the model processed prompt tokens
        ``[start, stop)`` (the cache already holds them), only when
        :attr:`supports_incremental_prefill` is true.  ``total_len`` is the
        full prompt length, known upfront.  Default: no-op.
        """

    def finish_prefill(self, config: ModelConfig, prefill: PrefillResult) -> None:
        """Finalise policy state once the whole prompt has been prefilled.

        The engine calls this exactly once per request, after the last chunk
        (or the single monolithic prefill).  The default defers to
        :meth:`on_prefill`, which is the correct one-shot behaviour for
        policies without incremental construction; incremental policies
        override it to refine the state they built chunk by chunk.
        """
        self.on_prefill(config, prefill)

    def on_decode_step(self, cache: KVCache) -> None:
        """Called after each decode step appended a new token to the cache."""

    def consume_maintenance(self) -> dict | None:
        """Return and clear the maintenance work the last decode step did.

        Policies that run periodic index maintenance inside
        :meth:`on_decode_step` (e.g. PQCache's ``refresh_every`` codebook
        refresh) record a description here — ``{"kind": ..., "tokens": ...,
        "iterations": ...}`` — which the serving engine pops after the hook
        and bills as a timeline task.  Default: no maintenance.
        """
        pending = self._pending_maintenance
        self._pending_maintenance = None
        return pending

    # -------------------------------------------------------- prefix reuse

    def prefix_fingerprint(self):
        """Hashable key identifying reusable prefix artifacts, or ``None``.

        Two requests whose policies return equal non-``None`` fingerprints
        build bitwise-identical per-prefix state (codebooks, codes) from the
        same prompt prefix, so the serving engine may hand one policy's
        :meth:`prefix_snapshot` to the other's :meth:`attach_prefix`.
        ``None`` (the default) disables artifact reuse — KV-block reuse still
        applies.
        """
        return None

    def attach_prefix(
        self,
        config: ModelConfig,
        kvcache: KVCache,
        snapshot,
        prefix_len: int,
    ) -> bool:
        """Adopt another request's per-prefix artifacts before resuming.

        Called by the serving engine on a prefix-cache hit, before the first
        prefill chunk, with the cache already holding ``prefix_len`` tokens.
        Returns True when the snapshot was attached (the policy must then be
        in the exact state its own cold pipeline would reach after
        ``prefix_len`` prompt tokens); False falls back to cold construction
        (which still reads the reused keys from ``kvcache``).
        """
        return False

    def prefix_snapshot(self):
        """Reusable per-prefix artifacts captured during prefilling.

        The engine stores the returned object (if any) in the prefix cache
        alongside the request's KV blocks, keyed by
        :meth:`prefix_fingerprint`.  Default: nothing to share.
        """
        return None

    def release_prefix(self) -> None:
        """Drop references taken by :meth:`attach_prefix`.

        Called by the engine exactly once when the request finishes (or is
        aborted), so snapshot refcounts reflect live attachments.  Default:
        nothing to release.
        """

    # ----------------------------------------------------------- selection

    @abc.abstractmethod
    def select(
        self, layer_index: int, query: np.ndarray, cache: KVCache
    ) -> list[np.ndarray] | np.ndarray | None:
        """Token indices to attend to for this layer (per KV head)."""

    # ----------------------------------------------------- batch selection

    @classmethod
    def select_batch(
        cls,
        layer_index: int,
        items: "list[tuple[KVCachePolicy, np.ndarray, KVCache]]",
        timings: "dict[str, float] | None" = None,
    ) -> "list[list[np.ndarray] | np.ndarray | None]":
        """Select for several same-class requests in one fused decode round.

        ``items`` holds one ``(policy, query, cache)`` triple per request,
        in engine batch order.  The default simply loops :meth:`select`;
        subclasses override it with cross-request grouped kernels (e.g.
        PQCache's grouped ADC scoring).  Overrides MUST return, per item,
        exactly what that item's :meth:`select` would return — the fused
        decode path's byte-identity guarantee rests on it — including side
        effects (``last_selected_middle``, GPU-cache accounting).

        ``timings`` is an optional accumulator for host wall-clock stage
        seconds (keys ``"score"`` / ``"topk"``); overrides with separable
        scoring stages add into it, the default loop leaves it untouched.
        """
        return [
            policy.select(layer_index, query, cache)
            for policy, query, cache in items
        ]

    @classmethod
    def on_decode_step_batch(
        cls, items: "list[tuple[KVCachePolicy, KVCache]]"
    ) -> None:
        """Post-append update for several same-class requests at once.

        ``items`` holds one ``(policy, cache)`` pair per request, in engine
        batch order.  Default loops :meth:`on_decode_step`; overrides must
        leave every policy in the exact state the per-item loop would.
        """
        for policy, cache in items:
            policy.on_decode_step(cache)

    # ------------------------------------------------------------- helpers

    def _require_config(self) -> ModelConfig:
        if self.config is None:
            raise ConfigurationError(
                f"{self.name}: on_prefill must be called before select"
            )
        return self.config

    def _kv_queries(self, query: np.ndarray) -> np.ndarray:
        """Average query heads within each GQA group: ``(h_kv, d_h)``.

        Selection happens at KV-head granularity (each key/value pair serves
        a whole group of query heads), so policies score candidates with the
        group-mean query — the same reduction SPARQ and InfLLM use.
        """
        config = self._require_config()
        h_kv = config.num_kv_heads
        group = config.gqa_group_size
        return query.reshape(h_kv, group, config.head_dim).mean(axis=1)

    def _assemble(
        self,
        middle_per_head: list[np.ndarray],
        segments: TokenSegments,
    ) -> list[np.ndarray]:
        """Combine initial + selected middle + local indices per KV head."""
        config = self._require_config()
        init = segments.initial_indices
        local = segments.local_indices
        assembled = []
        for head in range(config.num_kv_heads):
            middle = np.asarray(middle_per_head[head], dtype=np.int64)
            indices = np.concatenate([init, middle, local])
            assembled.append(np.unique(indices))
        self.last_selected_middle = [
            np.asarray(m, dtype=np.int64) for m in middle_per_head
        ]
        return assembled

    @staticmethod
    def _assemble_batch(
        items: "list[tuple[KVCachePolicy, list[np.ndarray], TokenSegments]]",
    ) -> "list[list[np.ndarray]]":
        """Batched :meth:`_assemble` across requests for one fused round.

        ``items`` holds one ``(policy, middle_per_head, segments)`` triple
        per request.  ``(request, head)`` selections of equal assembled
        length are stacked and sorted with one ``np.sort(axis=1)`` call per
        length group; duplicates are then masked out per row — exactly the
        sort + adjacent-difference mask ``np.unique`` applies to a 1-D
        array, so each entry is bitwise identical to what that policy's own
        :meth:`_assemble` would produce (``last_selected_middle`` included).
        """
        results: "list[list[np.ndarray] | None]" = [None] * len(items)
        entries: "list[tuple[int, int]]" = []
        concatenated: "list[np.ndarray]" = []
        for pos, (policy, middle_per_head, segments) in enumerate(items):
            config = policy._require_config()
            init = segments.initial_indices
            local = segments.local_indices
            for head in range(config.num_kv_heads):
                middle = np.asarray(middle_per_head[head], dtype=np.int64)
                entries.append((pos, head))
                concatenated.append(np.concatenate([init, middle, local]))
            results[pos] = [None] * config.num_kv_heads  # type: ignore[list-item]
            policy.last_selected_middle = [
                np.asarray(m, dtype=np.int64) for m in middle_per_head
            ]
        lengths = np.array([row.size for row in concatenated], dtype=np.int64)
        for t in np.unique(lengths):
            rows = np.flatnonzero(lengths == t)
            if t == 0:
                for r in rows:
                    pos, head = entries[r]
                    results[pos][head] = concatenated[r]
                continue
            stacked = np.sort(np.stack([concatenated[r] for r in rows]), axis=1)
            keep = np.empty(stacked.shape, dtype=bool)
            keep[:, 0] = True
            keep[:, 1:] = stacked[:, 1:] != stacked[:, :-1]
            for row_pos, r in enumerate(rows):
                pos, head = entries[r]
                results[pos][head] = stacked[row_pos][keep[row_pos]]
        return results  # type: ignore[return-value]

    @staticmethod
    def _topk(scores: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
        """Top-``k`` candidate indices ranked by ``scores`` (same length)."""
        if candidates.size == 0 or k <= 0:
            return np.empty(0, dtype=np.int64)
        order = topk_indices(scores, min(k, candidates.size))
        return candidates[order]

    # -------------------------------------------------------- communication

    def step_communication_bytes(self, seq_len: int) -> dict:
        """CPU→GPU bytes one decode step would move in a real deployment.

        Returns a dict with ``overlappable`` (can hide behind compute, e.g.
        PQ-code prefetch) and ``blocking`` (on the critical path, e.g. the
        top-k key/value fetch) byte counts.  Dropping methods move nothing.
        """
        return {"overlappable": 0.0, "blocking": 0.0}

    def describe(self) -> dict:
        """Summary of the policy configuration for reports."""
        return {
            "name": self.name,
            "is_dropping": self.is_dropping,
            "token_ratio": self.budget.token_ratio,
            "comm_ratio": self.budget.comm_ratio,
            "num_initial": self.budget.num_initial,
            "num_local": self.budget.num_local,
        }
