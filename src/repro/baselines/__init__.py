"""Selective-attention policies: PQCache and every baseline from the paper."""

from .base import KVCachePolicy, SelectionBudget
from .dropping import H2OPolicy, PyramidKVPolicy, SnapKVPolicy, StreamingLLMPolicy
from .exact import FullAttentionPolicy, OracleTopKPolicy
from .offloading import InfLLMPolicy, SparqPolicy
from .pqcache_policy import PQCachePolicy
from .registry import POLICY_NAMES, build_policy, default_policy_suite
from .sparse_prefill import SparsePrefillConfig, sparse_prefill

__all__ = [
    "KVCachePolicy",
    "SelectionBudget",
    "H2OPolicy",
    "PyramidKVPolicy",
    "SnapKVPolicy",
    "StreamingLLMPolicy",
    "FullAttentionPolicy",
    "OracleTopKPolicy",
    "InfLLMPolicy",
    "SparqPolicy",
    "PQCachePolicy",
    "POLICY_NAMES",
    "build_policy",
    "default_policy_suite",
    "SparsePrefillConfig",
    "sparse_prefill",
]
