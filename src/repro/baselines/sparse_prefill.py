"""MInference-style sparse prefilling (used by the Table 5 experiment).

MInference accelerates the prefilling phase by restricting each query to a
sparse attention pattern (the "A-shape" pattern: attention sinks plus a local
band, optionally with a few vertical stripes).  The paper combines it with
PQCache to show PQCache remains robust when the prefill attention — and hence
the keys feeding PQ construction — comes from a sparse computation.

Here the sparse prefill is modelled as a transformation of the prompt's
*aggregate* attention statistics plus a perturbation of the prefilled keys:
queries outside the sparse pattern never contribute attention mass, so the
dropping baselines that rely on prompt attention see degraded signals, and
downstream hidden states (and therefore keys) drift slightly from the dense
computation.  The prefill wrapper below reproduces both effects on top of the
dense substrate, which is sufficient to study the interaction that Table 5
reports without re-implementing kernel-level sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..llm.model import PrefillResult, TransformerLM
from ..utils import as_rng

__all__ = ["SparsePrefillConfig", "sparse_prefill"]


@dataclass(frozen=True)
class SparsePrefillConfig:
    """Parameters of the A-shape sparse prefill approximation.

    Attributes:
        sink_tokens: leading tokens every query may attend to.
        local_window: band width of the local attention component.
        vertical_stripes: number of global "vertical" token columns kept.
        key_noise_scale: relative perturbation applied to prefilled keys to
            model the hidden-state drift caused by sparse attention.
        seed: RNG seed for stripe choice and key perturbation.
    """

    sink_tokens: int = 16
    local_window: int = 256
    vertical_stripes: int = 16
    key_noise_scale: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sink_tokens < 0 or self.local_window < 0 or self.vertical_stripes < 0:
            raise ConfigurationError("sparse prefill sizes must be >= 0")
        if self.key_noise_scale < 0:
            raise ConfigurationError("key_noise_scale must be >= 0")

    def kept_fraction(self, seq_len: int) -> float:
        """Approximate fraction of the dense attention matrix computed."""
        if seq_len == 0:
            return 1.0
        per_query = min(
            self.sink_tokens + self.local_window + self.vertical_stripes, seq_len
        )
        return per_query / seq_len

    def speedup(self, seq_len: int) -> float:
        """Idealised prefill attention speed-up over dense computation."""
        kept = self.kept_fraction(seq_len)
        return 1.0 / max(kept, 1e-6)


def sparse_prefill(
    model: TransformerLM,
    token_ids,
    config: SparsePrefillConfig | None = None,
    observation_window: int = 32,
) -> PrefillResult:
    """Prefill with an MInference-like sparse attention approximation.

    Runs the dense substrate, then (1) masks the aggregate attention
    statistics down to the sparse pattern and (2) perturbs the cached keys to
    model the drift sparse prefilling introduces, returning a
    :class:`PrefillResult` that downstream policies consume unchanged.
    """
    config = config or SparsePrefillConfig()
    rng = as_rng(config.seed)
    result = model.prefill(list(token_ids), observation_window=observation_window)
    seq_len = result.seq_len

    # Pattern mask over key positions, as seen from the trailing queries that
    # the aggregates summarise: sinks + local band + random vertical stripes.
    mask = np.zeros(seq_len, dtype=bool)
    mask[: min(config.sink_tokens, seq_len)] = True
    mask[max(seq_len - config.local_window, 0):] = True
    if config.vertical_stripes > 0 and seq_len > 0:
        stripes = rng.choice(
            seq_len, size=min(config.vertical_stripes, seq_len), replace=False
        )
        mask[stripes] = True

    for aggregates in result.aggregates:
        aggregates.accumulated_scores[:, ~mask] *= config.kept_fraction(seq_len)
        aggregates.window_scores[:, ~mask] = 0.0

    if config.key_noise_scale > 0:
        for layer_cache in result.kvcache.layers:
            keys = layer_cache.keys
            scale = config.key_noise_scale * np.std(keys)
            noise = rng.normal(0.0, scale, size=keys.shape)
            # Positions inside the pattern are computed exactly; only the
            # remaining keys drift.
            keys[:, ~mask, :] += noise[:, ~mask, :]
    return result
