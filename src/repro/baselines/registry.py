"""Factory helpers for constructing the policy suite used in the tables.

The benchmarks repeatedly need "all the methods of Table 2 at this token
ratio and communication ratio"; :func:`build_policy` and
:func:`default_policy_suite` centralise those constructions so experiment
code stays declarative.
"""

from __future__ import annotations

from typing import Callable

from ..core.pqcache import PQCacheConfig
from ..errors import ConfigurationError
from .base import KVCachePolicy, SelectionBudget
from .dropping import H2OPolicy, PyramidKVPolicy, SnapKVPolicy, StreamingLLMPolicy
from .exact import FullAttentionPolicy, OracleTopKPolicy
from .offloading import InfLLMPolicy, SparqPolicy
from .pqcache_policy import PQCachePolicy

__all__ = ["POLICY_NAMES", "build_policy", "default_policy_suite"]


_BUILDERS: dict[str, Callable[[SelectionBudget, dict], KVCachePolicy]] = {
    "full": lambda budget, kw: FullAttentionPolicy(budget),
    "oracle": lambda budget, kw: OracleTopKPolicy(budget),
    "streaming-llm": lambda budget, kw: StreamingLLMPolicy(budget),
    "h2o": lambda budget, kw: H2OPolicy(budget, **kw),
    "snapkv": lambda budget, kw: SnapKVPolicy(budget, **kw),
    "pyramidkv": lambda budget, kw: PyramidKVPolicy(budget, **kw),
    "sparq": lambda budget, kw: SparqPolicy(budget, **kw),
    "infllm": lambda budget, kw: InfLLMPolicy(budget, **kw),
    "pqcache": lambda budget, kw: PQCachePolicy(budget, **kw),
}

#: canonical method names accepted by :func:`build_policy`
POLICY_NAMES = tuple(_BUILDERS)


def build_policy(name: str, budget: SelectionBudget, **kwargs) -> KVCachePolicy:
    """Construct a policy by canonical name.

    Args:
        name: one of :data:`POLICY_NAMES`.
        budget: shared token/communication budget.
        **kwargs: policy-specific options (e.g. ``pq_config=`` for pqcache,
            ``compensated=`` for the dropping methods).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; valid names: {', '.join(POLICY_NAMES)}"
        ) from None
    return builder(budget, kwargs)


def default_policy_suite(
    budget: SelectionBudget,
    pq_config: PQCacheConfig | None = None,
    include_oracle: bool = True,
    include_full: bool = True,
) -> dict[str, KVCachePolicy]:
    """The method line-up of Tables 2 and 4.

    Returns an ordered mapping of display name to freshly constructed policy:
    Full, Oracle, H2O(C), SnapKV(C), PyramidKV(C), InfLLM, SPARQ, PQCache.
    """
    suite: dict[str, KVCachePolicy] = {}
    if include_full:
        suite["full"] = build_policy("full", budget)
    if include_oracle:
        suite["oracle"] = build_policy("oracle", budget)
    suite["h2o(c)"] = build_policy("h2o", budget, compensated=True)
    suite["snapkv(c)"] = build_policy("snapkv", budget, compensated=True)
    suite["pyramidkv(c)"] = build_policy("pyramidkv", budget, compensated=True)
    suite["infllm"] = build_policy("infllm", budget)
    suite["sparq"] = build_policy("sparq", budget)
    suite["pqcache"] = build_policy(
        "pqcache", budget, pq_config=pq_config or PQCacheConfig()
    )
    return suite
