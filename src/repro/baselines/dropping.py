"""KVCache *dropping* baselines: StreamingLLM, H2O, SnapKV, PyramidKV.

These methods permanently discard key/value pairs judged unimportant, so
nothing is ever fetched back from CPU (zero extra communication), but tokens
whose importance only becomes apparent later cannot be recovered — the
failure mode the paper highlights (§1, §4.2).

In the paper's quality experiments the dropping methods are given a
"compensated" budget — extra tokens worth the same memory as the offloading
methods' selected tokens plus transferred relevance data.  The
``compensated`` flag reproduces that setting (methods labelled H2O(C),
SnapKV(C), PyramidKV(C)).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..llm.config import ModelConfig
from ..llm.kvcache import KVCache
from ..llm.model import PrefillResult
from .base import KVCachePolicy, SelectionBudget

__all__ = [
    "StreamingLLMPolicy",
    "H2OPolicy",
    "SnapKVPolicy",
    "PyramidKVPolicy",
]


class _DroppingPolicy(KVCachePolicy):
    """Shared select path of the dropping baselines.

    Every dropping method resolves a per-layer *static-ish* middle set (empty
    for StreamingLLM, the retained/selected sets for H2O/SnapKV/PyramidKV)
    and assembles it with the current initial/local segments.  Expressing
    that as one :meth:`_select_middle` hook lets the base provide both the
    per-request :meth:`select` and the fused-round :meth:`select_batch`
    (grouped sort-dedup via :meth:`KVCachePolicy._assemble_batch`) without
    duplicating the geometry handling per method.
    """

    def _select_middle(
        self, layer_index: int, config: ModelConfig
    ) -> list[np.ndarray]:
        """Middle-token indices per KV head for ``layer_index``."""
        raise NotImplementedError

    def select(self, layer_index: int, query: np.ndarray, cache: KVCache):
        config = self._require_config()
        segments = self.budget.segments(len(cache[layer_index]))
        return self._assemble(self._select_middle(layer_index, config), segments)

    @classmethod
    def select_batch(cls, layer_index, items, timings=None):
        """Grouped assemble across requests — bitwise equal to the loop."""
        prepared = []
        for policy, _query, cache in items:
            config = policy._require_config()
            segments = policy.budget.segments(len(cache[layer_index]))
            prepared.append(
                (policy, policy._select_middle(layer_index, config), segments)
            )
        return KVCachePolicy._assemble_batch(prepared)


def _compensated_budget(budget: SelectionBudget, prompt_len: int, enabled: bool) -> int:
    """Middle-token budget, optionally enlarged by the communication ratio.

    The compensation converts the offloading methods' extra communication
    (comm_ratio of the keys' memory) into an equivalent number of extra
    key/value pairs: keys+values are ``2 * d_h`` halfwords per head while the
    relevance data is ``comm_ratio * d_h``, i.e. ``comm_ratio / 2`` extra
    tokens per token of context.
    """
    base = budget.middle_budget(prompt_len)
    if not enabled:
        return base
    extra = int(round(prompt_len * budget.comm_ratio / 2.0))
    return base + extra


class StreamingLLMPolicy(_DroppingPolicy):
    """Attention sinks + sliding window (LM-Infinite / StreamingLLM).

    Keeps only the initial tokens and the most recent ``num_local`` tokens;
    every middle token is dropped.  Included as the simplest dropping
    baseline and as a sanity floor for retrieval-heavy tasks.
    """

    name = "streaming-llm"
    is_dropping = True

    def _select_middle(
        self, layer_index: int, config: ModelConfig
    ) -> list[np.ndarray]:
        return [np.empty(0, dtype=np.int64) for _ in range(config.num_kv_heads)]


class H2OPolicy(_DroppingPolicy):
    """Heavy-Hitter Oracle: retain tokens with the largest accumulated
    attention scores observed so far.

    The retained set is decided per layer and per KV head right after
    prefilling (using the accumulated column sums of the prompt's attention
    matrix) and then evolves greedily: each new decoded token enters the set
    and, when over budget, the lowest-scoring retained token is evicted
    permanently.  Evicted tokens can never return — the core limitation the
    paper contrasts with retrieval-based methods.
    """

    name = "h2o"
    is_dropping = True

    def __init__(self, budget: SelectionBudget, compensated: bool = True) -> None:
        super().__init__(budget)
        self.compensated = compensated
        if compensated:
            self.name = "h2o(c)"
        self._retained: list[list[np.ndarray]] = []
        self._scores: list[list[np.ndarray]] = []

    def _prepare(self, config: ModelConfig, prefill: PrefillResult) -> None:
        self._retained = []
        self._scores = []
        k = _compensated_budget(self.budget, prefill.seq_len, self.compensated)
        segments = self.budget.segments(prefill.seq_len)
        middle = segments.middle_indices
        for aggregates in prefill.aggregates:
            per_head_idx = []
            per_head_score = []
            for head in range(config.num_kv_heads):
                if middle.size == 0:
                    per_head_idx.append(np.empty(0, dtype=np.int64))
                    per_head_score.append(np.empty(0, dtype=np.float64))
                    continue
                acc = aggregates.accumulated_scores[head, middle]
                keep = self._topk(acc, middle, k)
                per_head_idx.append(np.sort(keep))
                score_map = dict(zip(middle.tolist(), acc.tolist()))
                per_head_score.append(
                    np.array([score_map[i] for i in np.sort(keep).tolist()])
                )
            self._retained.append(per_head_idx)
            self._scores.append(per_head_score)

    def _select_middle(
        self, layer_index: int, config: ModelConfig
    ) -> list[np.ndarray]:
        if not self._retained:
            raise ConfigurationError("H2O policy used before prefill")
        return [self._retained[layer_index][h] for h in range(config.num_kv_heads)]

    def on_decode_step(self, cache: KVCache) -> None:
        """Greedy heavy-hitter update after a token was generated.

        Tokens leaving the local window compete for a place in the retained
        set using their (approximate) accumulated score; the weakest retained
        token is evicted when the budget is exceeded.
        """
        config = self._require_config()
        k = _compensated_budget(self.budget, self.prompt_len, self.compensated)
        seq_len = cache.seq_len
        segments = self.budget.segments(seq_len)
        middle = segments.middle_indices
        if middle.size == 0:
            return
        newly_middle = middle[-1]
        for layer_index in range(config.num_layers):
            layer_cache = cache[layer_index]
            for head in range(config.num_kv_heads):
                retained = self._retained[layer_index][head]
                scores = self._scores[layer_index][head]
                if newly_middle in retained:
                    continue
                # Score the candidate with its key norm as a cheap proxy for
                # accumulated attention (no additional attention passes are
                # available to a dropping method after prefill).
                candidate_score = float(
                    np.linalg.norm(layer_cache.keys[head, newly_middle, :])
                )
                retained = np.append(retained, newly_middle)
                scores = np.append(scores, candidate_score)
                if retained.size > k:
                    drop = int(np.argmin(scores))
                    retained = np.delete(retained, drop)
                    scores = np.delete(scores, drop)
                self._retained[layer_index][head] = retained
                self._scores[layer_index][head] = scores


class SnapKVPolicy(_DroppingPolicy):
    """SnapKV: choose important tokens from the prompt's final-segment
    attention, with pooling to keep neighbourhoods together.

    The selection is made once after prefilling (per layer, per KV head) from
    the observation-window aggregate scores and never revisited.  Works well
    when the question sits at the end of the prompt, degrades when it does
    not — reproduced by the Table 3 benchmark.
    """

    name = "snapkv"
    is_dropping = True

    def __init__(
        self,
        budget: SelectionBudget,
        compensated: bool = True,
        pool_size: int = 7,
    ) -> None:
        super().__init__(budget)
        if pool_size <= 0 or pool_size % 2 == 0:
            raise ConfigurationError("pool_size must be a positive odd number")
        self.compensated = compensated
        self.pool_size = pool_size
        if compensated:
            self.name = "snapkv(c)"
        self._selected: list[list[np.ndarray]] = []

    def _layer_budget(self, layer_index: int, num_layers: int, k: int) -> int:
        """Per-layer budget; uniform for SnapKV, overridden by PyramidKV."""
        return k

    @staticmethod
    def _max_pool_1d(scores: np.ndarray, pool_size: int) -> np.ndarray:
        """Symmetric 1-D max pooling used by SnapKV to keep local context."""
        if scores.size == 0:
            return scores
        half = pool_size // 2
        padded = np.pad(scores, (half, half), mode="edge")
        windows = np.lib.stride_tricks.sliding_window_view(padded, pool_size)
        return windows.max(axis=-1)

    def _prepare(self, config: ModelConfig, prefill: PrefillResult) -> None:
        self._selected = []
        k = _compensated_budget(self.budget, prefill.seq_len, self.compensated)
        segments = self.budget.segments(prefill.seq_len)
        middle = segments.middle_indices
        num_layers = len(prefill.aggregates)
        for layer_index, aggregates in enumerate(prefill.aggregates):
            layer_k = self._layer_budget(layer_index, num_layers, k)
            per_head = []
            for head in range(config.num_kv_heads):
                if middle.size == 0:
                    per_head.append(np.empty(0, dtype=np.int64))
                    continue
                window = aggregates.window_scores[head, middle]
                pooled = self._max_pool_1d(window, self.pool_size)
                per_head.append(np.sort(self._topk(pooled, middle, layer_k)))
            self._selected.append(per_head)

    def _select_middle(
        self, layer_index: int, config: ModelConfig
    ) -> list[np.ndarray]:
        return [self._selected[layer_index][h] for h in range(config.num_kv_heads)]


class PyramidKVPolicy(SnapKVPolicy):
    """PyramidKV: SnapKV selection with a depth-decaying per-layer budget.

    Lower layers receive a larger share of the total budget and higher layers
    a smaller one, keeping the overall memory identical to SnapKV.
    """

    name = "pyramidkv"
    is_dropping = True

    def __init__(
        self,
        budget: SelectionBudget,
        compensated: bool = True,
        pool_size: int = 7,
        decay: float = 2.0,
    ) -> None:
        super().__init__(budget, compensated=compensated, pool_size=pool_size)
        if decay < 1.0:
            raise ConfigurationError("decay must be >= 1.0")
        self.decay = decay
        self.name = "pyramidkv(c)" if compensated else "pyramidkv"

    def _layer_budget(self, layer_index: int, num_layers: int, k: int) -> int:
        """Linear interpolation from ``decay * k`` (layer 0) down to
        ``k / decay`` (last layer), preserving the average budget ``k``."""
        if num_layers == 1:
            return k
        top = k * self.decay
        bottom = k / self.decay
        frac = layer_index / (num_layers - 1)
        return max(int(round(top + (bottom - top) * frac)), 1)
