"""PQCache expressed as a :class:`~repro.baselines.base.KVCachePolicy`.

This is the glue between the algorithmic core (:class:`PQCacheManager`) and
the generation loop: PQ construction happens in ``on_prefill`` (paper
Algorithm 1) — or incrementally across prefill chunks when the serving
engine runs chunked prefill — approximate top-k retrieval plus GPU-cache
bookkeeping happens in ``select`` (Algorithm 2), and tokens leaving the
local window receive PQ codes in ``on_decode_step``.

Incremental construction (chunked prefill)
------------------------------------------
Under the engine's chunked-prefill pipeline the policy receives one
``on_prefill_chunk`` call per chunk: once ``sketch_tokens`` prompt tokens
have arrived (or the prompt ends first) the codebooks are fitted from a
sampled sketch of the keys seen so far, later chunks are stream-encoded with
those codebooks as they arrive, and ``finish_prefill`` re-runs Lloyd
iterations over the full key set (:meth:`PQCacheManager.refine`) and
re-encodes — mirroring how the paper overlaps K-Means with prefill compute
so construction never sits on the critical path.

Prefix reuse
------------
The pre-refine state (sketch codebooks + streamed codes) is a pure function
of the prompt prefix, the PQ configuration and the sketch schedule — so on a
shared-prefix cache hit the engine hands this policy an earlier request's
:class:`~repro.core.pqcache.PQSnapshot` via :meth:`attach_prefix` and the
manager adopts it copy-on-write instead of re-clustering; the final
refinement still runs over the full prompt, which is exactly what the cold
pipeline would have done from the same pre-refine state, keeping decode
outputs byte-identical between hit and cold paths.  ``finish_prefill``
captures this request's own pre-refine snapshot so the engine can cache it
for the next request.
"""

from __future__ import annotations

import numpy as np

from ..core.adaptive import AdaptiveIterationPlanner
from ..core.pqcache import (
    PQCacheConfig,
    PQCacheManager,
    PQSnapshot,
    append_tokens_grouped,
    topk_middle_grouped,
)
from ..errors import ConfigurationError
from ..llm.config import ModelConfig
from ..llm.kvcache import KVCache
from ..llm.model import PrefillResult
from .base import KVCachePolicy, SelectionBudget

__all__ = ["PQCachePolicy"]


class PQCachePolicy(KVCachePolicy):
    """Selective attention driven by Product Quantization retrieval.

    Args:
        budget: shared token/communication budget.
        pq_config: PQ hyper-parameters.
        planner: optional adaptive iteration planner (paper §3.3); when
            present the K-Means budget is derived from the prompt length
            instead of the static ``max_kmeans_iters``.
        incremental: build the PQ index chunk by chunk when the engine runs
            chunked prefill (sketch fit → stream encode → refine).  With
            monolithic prefill this flag has no effect.
        sketch_tokens: prompt tokens to wait for (and sample size used)
            before fitting the sketch codebooks.
        refine_iters: Lloyd iteration cap of the final refinement pass;
            ``None`` uses the config's ``max_kmeans_iters`` (or the planner's
            budget when a planner is set).
        refresh_every: ParisKV-style drift handling — every ``N`` decode
            steps the codebooks are re-refined over all currently-encoded
            keys (:meth:`PQCacheManager.refine`, warm-started from the
            current centroids) so retrieval quality tracks the drifting key
            distribution as generation appends tokens.  The serving engine
            bills each refresh as a clustering timeline task via
            :meth:`~repro.baselines.base.KVCachePolicy.consume_maintenance`.
            ``None`` (default) disables refreshing.
    """

    name = "pqcache"
    is_dropping = False
    supports_incremental_prefill = True
    #: selection reads only PQ codes and segment geometry — never the
    #: prefill attention aggregates — so prefix reuse is not limited to
    #: aggregate-snapshot boundaries.
    needs_prefill_aggregates = False

    def __init__(
        self,
        budget: SelectionBudget,
        pq_config: PQCacheConfig | None = None,
        planner: AdaptiveIterationPlanner | None = None,
        incremental: bool = True,
        sketch_tokens: int = 256,
        refine_iters: int | None = None,
        refresh_every: int | None = None,
    ) -> None:
        super().__init__(budget)
        if refresh_every is not None and int(refresh_every) <= 0:
            raise ConfigurationError("refresh_every must be a positive integer")
        self.pq_config = pq_config or PQCacheConfig()
        #: optional adaptive iteration planner (paper §3.3); when present the
        #: K-Means budget is derived from the prompt length instead of the
        #: static ``max_kmeans_iters``.
        self.planner = planner
        self.incremental = incremental
        self.sketch_tokens = int(sketch_tokens)
        self.refine_iters = refine_iters
        self.refresh_every = None if refresh_every is None else int(refresh_every)
        self.manager: PQCacheManager | None = None
        self._encoded_until = 0
        self._steps_since_refresh = 0
        self._prefix_snapshot: PQSnapshot | None = None
        self._attached_snapshot: PQSnapshot | None = None

    # ----------------------------------------------------------- lifecycle

    def _max_iters(self, prompt_len: int) -> int | None:
        if self.planner is not None:
            return self.planner.max_iterations_for(prompt_len)
        return None

    def _prepare(self, config: ModelConfig, prefill: PrefillResult) -> None:
        self.manager = PQCacheManager(config, self.pq_config)
        self.manager.build(
            prefill.kvcache, max_iters=self._max_iters(prefill.seq_len)
        )
        self._encoded_until = prefill.seq_len

    def on_prefill_chunk(
        self,
        config: ModelConfig,
        kvcache: KVCache,
        start: int,
        stop: int,
        total_len: int,
    ) -> None:
        """Incremental construction step for one arrived prefill chunk."""
        if not self.incremental:
            return
        self.config = config
        if self.manager is None:
            self.manager = PQCacheManager(config, self.pq_config)
        if not self.manager.is_built:
            # Wait for a meaningful sketch (or the whole prompt, whichever
            # comes first) before fitting.  The fit boundary is *schedule
            # independent* — exactly ``min(sketch_tokens, total_len)`` tokens,
            # never "wherever the scheduler's chunk happened to end" — so the
            # pre-refine state is a pure function of the prompt prefix and
            # the config: any chunking (and any prefix-cache consumer)
            # reproduces the same codebooks bit for bit.  Tokens beyond the
            # boundary that arrived in the same chunk are stream-encoded
            # immediately after, like any later chunk.
            target = min(self.sketch_tokens, total_len)
            if stop >= target:
                self.manager.build_incremental(
                    kvcache,
                    upto=target,
                    max_iters=self._max_iters(total_len),
                    sample_tokens=self.sketch_tokens,
                )
                self._encoded_until = target
                if stop > target:
                    for layer_index in range(config.num_layers):
                        keys = kvcache[layer_index].keys[:, target:stop, :]
                        self.manager.append_tokens(layer_index, keys)
                    self._encoded_until = stop
            return
        # Codebooks exist: stream-encode the chunk with the current
        # centroids, one batched call per layer (no re-clustering).
        for layer_index in range(config.num_layers):
            keys = kvcache[layer_index].keys[:, start:stop, :]
            self.manager.append_tokens(layer_index, keys)
        self._encoded_until = stop

    # -------------------------------------------------------- prefix reuse

    def prefix_fingerprint(self):
        """Key under which this policy's PQ artifacts are shareable.

        Reuse requires the consumer's cold pipeline to be a deterministic
        function of the shared prefix: incremental construction with a static
        iteration budget qualifies; an adaptive planner derives the budget
        from the (request-specific) prompt length, so it opts out.
        """
        if not self.incremental or self.planner is not None:
            return None
        return ("pqcache", self.pq_config, self.sketch_tokens)

    def attach_prefix(
        self,
        config: ModelConfig,
        kvcache: KVCache,
        snapshot,
        prefix_len: int,
    ) -> bool:
        """Adopt a shared prefix's sketch codebooks and codes (no k-means).

        The snapshot is sliced to the shared ``prefix_len``; any matched
        tokens beyond the snapshot's coverage are stream-encoded from the
        reused keys.  Afterwards the policy state equals what its own cold
        pipeline would hold after ``prefix_len`` prompt tokens.
        """
        fingerprint = self.prefix_fingerprint()
        if fingerprint is None or not isinstance(snapshot, PQSnapshot):
            return False
        if snapshot.fingerprint != fingerprint:
            return False
        # Soundness gate: this request's own cold pipeline fits its sketch
        # at min(sketch_tokens, total_len) tokens.  Reuse is exact only when
        # the producer fitted at the canonical full-sketch boundary (its
        # prompt covered sketch_tokens) and the shared prefix covers it too;
        # a short-prompt producer's codebooks (fitted at its total_len)
        # would differ from what this request's cold run would build.
        if snapshot.sketch_upto != self.sketch_tokens:
            return False
        if prefix_len < self.sketch_tokens:
            return False
        self.config = config
        upto = min(prefix_len, snapshot.num_tokens)
        self.manager = PQCacheManager(config, self.pq_config)
        self.manager.attach(snapshot, upto)
        self._attached_snapshot = snapshot
        if upto < prefix_len:
            for layer_index in range(config.num_layers):
                keys = kvcache[layer_index].keys[:, upto:prefix_len, :]
                self.manager.append_tokens(layer_index, keys)
        self._encoded_until = prefix_len
        return True

    def prefix_snapshot(self) -> PQSnapshot | None:
        """Pre-refine snapshot captured by :meth:`finish_prefill`, if any."""
        return self._prefix_snapshot

    def release_prefix(self) -> None:
        """Drop this request's reference on the attached snapshot."""
        if self._attached_snapshot is not None:
            self._attached_snapshot.release()
            self._attached_snapshot = None

    def finish_prefill(self, config: ModelConfig, prefill: PrefillResult) -> None:
        """Refine the incrementally-built index, or fall back to one-shot."""
        if self.manager is None or not self.manager.is_built:
            # No chunks were observed (monolithic prefill) or the prompt was
            # too short to sketch: build from scratch like the legacy path.
            self.on_prefill(config, prefill)
            return
        self.config = config
        self.prompt_len = prefill.seq_len
        # Capture the pre-refine state for prefix reuse *before* refine
        # mutates it: this is the stage that is a pure function of the
        # prompt prefix (copy-on-write, so the capture is free).
        fingerprint = self.prefix_fingerprint()
        if fingerprint is not None:
            self._prefix_snapshot = self.manager.snapshot(fingerprint)
        refine_iters = self.refine_iters
        if refine_iters is None:
            refine_iters = self._max_iters(prefill.seq_len)
        self.manager.refine(prefill.kvcache, max_iters=refine_iters)
        self._encoded_until = prefill.seq_len

    def on_decode_step(self, cache: KVCache) -> None:
        """Assign PQ codes to tokens that have left the local window.

        After a decode step the sequence grew by one; any tokens whose
        indices now fall inside the middle segment but have no codes yet are
        encoded with the existing centroids (Algorithm 2 lines 3-5) — all
        pending tokens and all KV heads of a layer in one
        :meth:`~repro.core.pqcache.PQCacheManager.append_tokens` call.
        """
        if self.manager is None:
            return
        config = self._require_config()
        start, middle_end = self._pending_encode_range(cache)
        if start < middle_end:
            for layer_index in range(config.num_layers):
                keys = cache[layer_index].keys[:, start:middle_end, :]
                self.manager.append_tokens(layer_index, keys)
            self._encoded_until = middle_end
        self._maybe_refresh(cache)

    def _pending_encode_range(self, cache: KVCache) -> tuple[int, int]:
        """Token range ``[start, middle_end)`` awaiting PQ codes, if any."""
        segments = self.budget.segments(cache.seq_len)
        middle_end = (
            int(segments.middle_indices[-1]) + 1 if segments.middle_indices.size else 0
        )
        return self._encoded_until, middle_end

    def _maybe_refresh(self, cache: KVCache) -> None:
        """Count one decode step and re-refine codebooks every N steps."""
        if self.refresh_every is None or self.manager is None:
            return
        if not self.manager.is_built:
            return
        self._steps_since_refresh += 1
        if self._steps_since_refresh < self.refresh_every:
            return
        self._steps_since_refresh = 0
        refine_iters = self.refine_iters
        if refine_iters is None:
            refine_iters = self._max_iters(self.prompt_len)
        before = self.manager.total_kmeans_iterations
        self.manager.refine(cache, max_iters=refine_iters)
        config = self._require_config()
        jobs = config.num_layers * config.num_kv_heads * self.pq_config.num_partitions
        iterations = (self.manager.total_kmeans_iterations - before) / max(jobs, 1)
        self._pending_maintenance = {
            "kind": "pq_refresh",
            "tokens": int(self.manager.num_codes(0)),
            "iterations": float(iterations),
        }

    # ----------------------------------------------------------- selection

    def select(self, layer_index: int, query: np.ndarray, cache: KVCache):
        config = self._require_config()
        assert self.manager is not None, "on_prefill must run before select"
        layer_cache = cache[layer_index]
        seq_len = len(layer_cache)
        segments = self.budget.segments(seq_len)
        k = self.budget.middle_budget(self.prompt_len)

        kv_queries = self._kv_queries(query)
        selected = self.manager.topk_middle(layer_index, kv_queries, segments, k)

        # Register the union of per-head fetches with the GPU block cache so
        # hit-rate statistics reflect real traffic.  Layer 0 opens a new
        # decode step: the per-step hit rate aggregates every layer's access
        # of the current step (see CacheStats.step_hit_rate).
        if self.manager.gpu_cache is not None and selected:
            if layer_index == 0:
                self.manager.gpu_cache.begin_step()
            union = (
                np.unique(np.concatenate([s for s in selected if s.size]))
                if any(s.size for s in selected)
                else np.empty(0, dtype=np.int64)
            )
            self.manager.record_fetch(union)
        return self._assemble(selected, segments)

    # ------------------------------------------------------ batch selection

    @classmethod
    def select_batch(cls, layer_index, items, timings=None):
        """Cross-request ADC scoring + top-k for one fused decode round.

        All requests' ``(h_kv, n_middle)`` scoring problems are handed to
        :func:`~repro.core.pqcache.topk_middle_grouped`, which concatenates
        same-shape requests along the head axis and scores each group with
        one vectorized gather — bitwise identical to looping
        :meth:`select`, including the per-request GPU-cache bookkeeping and
        ``last_selected_middle`` side effects.
        """
        jobs = []
        metas = []
        for policy, query, cache in items:
            policy._require_config()
            assert policy.manager is not None, "on_prefill must run before select"
            seq_len = len(cache[layer_index])
            segments = policy.budget.segments(seq_len)
            k = policy.budget.middle_budget(policy.prompt_len)
            kv_queries = policy._kv_queries(query)
            jobs.append((policy.manager, layer_index, kv_queries, segments, k))
            metas.append((policy, segments))
        grouped = topk_middle_grouped(jobs, timings=timings)
        results = []
        for (policy, segments), selected in zip(metas, grouped):
            manager = policy.manager
            if manager.gpu_cache is not None and selected:
                if layer_index == 0:
                    manager.gpu_cache.begin_step()
                union = (
                    np.unique(np.concatenate([s for s in selected if s.size]))
                    if any(s.size for s in selected)
                    else np.empty(0, dtype=np.int64)
                )
                manager.record_fetch(union)
            results.append(policy._assemble(selected, segments))
        return results

    @classmethod
    def on_decode_step_batch(cls, items):
        """Cross-request post-append PQ encoding for one fused decode round.

        Requests with pending middle tokens share one
        :meth:`~repro.core.pq.ProductQuantizer.encode_batch` call per layer
        (via :func:`~repro.core.pqcache.append_tokens_grouped`); each
        policy's code buffer, ``_encoded_until`` and refresh counter end up
        exactly as the per-item :meth:`on_decode_step` loop would leave
        them — per-request state is fully isolated, so running the appends
        layer-major across requests cannot change any request's codes.
        """
        pending = []
        for policy, cache in items:
            if policy.manager is None:
                continue
            config = policy._require_config()
            start, middle_end = policy._pending_encode_range(cache)
            if start < middle_end:
                pending.append((policy, cache, start, middle_end, config.num_layers))
        if pending:
            num_layers = max(entry[4] for entry in pending)
            for layer_index in range(num_layers):
                append_tokens_grouped(
                    [
                        (policy.manager, layer_index,
                         cache[layer_index].keys[:, start:middle_end, :])
                        for policy, cache, start, middle_end, layers in pending
                        if layer_index < layers
                    ]
                )
            for policy, _, _, middle_end, _ in pending:
                policy._encoded_until = middle_end
        for policy, cache in items:
            if policy.manager is not None:
                policy._maybe_refresh(cache)

    # -------------------------------------------------------- communication

    def step_communication_bytes(self, seq_len: int) -> dict:
        """Per-step CPU→GPU traffic estimate.

        Blocking bytes (the top-k key/value fetch) are scaled by the GPU
        block cache's *per-step* hit rate — the aggregated hit/miss split of
        the current decode step's retrievals across all layers — not the
        cumulative lifetime rate, which would let early cold misses (or a
        long warm streak) distort the estimate of the current step.  The
        cumulative rate remains available via
        ``manager.gpu_cache.stats.hit_rate`` for reporting.
        """
        config = self._require_config()
        assert self.manager is not None
        k = self.budget.middle_budget(self.prompt_len)
        comm = self.manager.step_communication_bytes(seq_len, k)
        cache = self.manager.gpu_cache
        if cache is not None and cache.stats.lookups:
            comm["blocking"] *= 1.0 - cache.stats.step_hit_rate
        return comm

    # ----------------------------------------------------------- reporting

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "pq_partitions": self.pq_config.num_partitions,
                "pq_bits": self.pq_config.num_bits,
                "gpu_cache_tokens": self.pq_config.gpu_cache_tokens,
                "adaptive_planner": self.planner is not None,
                "refresh_every": self.refresh_every,
            }
        )
        return info
