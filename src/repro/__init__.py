"""PQCache reproduction: Product Quantization-based KVCache management for
long-context LLM inference (SIGMOD 2025).

Public API highlights
---------------------
* :class:`repro.serve.InferenceEngine` — the request-centric serving engine:
  submit :class:`repro.serve.Request` objects (prompt + per-request
  :class:`repro.serve.SamplingParams` + :class:`repro.serve.PolicySpec`), get
  continuous-batched decoding with incrementally streamed
  :class:`repro.serve.RequestOutput` tokens and per-request serving metrics
  (TTFT, TPOT, tokens attended, communication bytes) on a simulated clock.
* :class:`repro.core.PQCacheManager` / :class:`repro.core.PQCacheConfig` —
  the PQ-based KVCache index.
* :class:`repro.baselines.PQCachePolicy` and the baseline policies —
  selective-attention strategies; build them per request through
  :func:`repro.baselines.build_policy` / :class:`repro.serve.PolicySpec`.
* :class:`repro.llm.TransformerLM` — the NumPy decoder-only substrate
  (stateless across requests; one KVCache per request).
  :func:`repro.llm.greedy_generate` remains as a thin single-request
  compatibility wrapper over the engine.
* :mod:`repro.workloads` — synthetic long-context task generators.
* :mod:`repro.eval` — quality evaluation harness (drives the engine in
  teacher-forcing mode).
* :mod:`repro.memory` / :mod:`repro.analysis` — latency and memory models,
  also powering the engine's simulated wall-clock accounting.
"""

from . import analysis, baselines, core, eval, llm, memory, retrieval, serve, workloads
from .errors import (
    CapacityError,
    ConfigurationError,
    DimensionError,
    NotFittedError,
    ReproError,
    SchedulingError,
    WorkloadError,
)

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "eval",
    "llm",
    "memory",
    "retrieval",
    "serve",
    "workloads",
    "ReproError",
    "ConfigurationError",
    "DimensionError",
    "NotFittedError",
    "CapacityError",
    "SchedulingError",
    "WorkloadError",
    "__version__",
]
