"""PQCache reproduction: Product Quantization-based KVCache management for
long-context LLM inference (SIGMOD 2025).

Public API highlights
---------------------
* :class:`repro.core.PQCacheManager` / :class:`repro.core.PQCacheConfig` —
  the PQ-based KVCache index.
* :class:`repro.baselines.PQCachePolicy` and the baseline policies —
  selective-attention strategies pluggable into the generation loop.
* :class:`repro.llm.TransformerLM` — the NumPy decoder-only substrate.
* :mod:`repro.workloads` — synthetic long-context task generators.
* :mod:`repro.eval` — quality evaluation harness.
* :mod:`repro.memory` / :mod:`repro.analysis` — latency and memory models.
"""

from . import analysis, baselines, core, eval, llm, memory, retrieval, workloads
from .errors import (
    CapacityError,
    ConfigurationError,
    DimensionError,
    NotFittedError,
    ReproError,
    SchedulingError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "eval",
    "llm",
    "memory",
    "retrieval",
    "workloads",
    "ReproError",
    "ConfigurationError",
    "DimensionError",
    "NotFittedError",
    "CapacityError",
    "SchedulingError",
    "WorkloadError",
    "__version__",
]
