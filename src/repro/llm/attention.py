"""Attention kernels for the transformer substrate.

Two code paths mirror the paper's two phases:

* :func:`causal_attention` — full causal self-attention used during
  prefilling (all queries against all earlier keys).
* :func:`decode_attention` — single-query attention for a decode step,
  optionally restricted to a subset of token indices per key/value head;
  this is the "selective attention" kernel every KVCache policy feeds.

Grouped-Query Attention is handled by mapping each query head to its
key/value head (``kv_head = q_head // group_size``); query-head counts that
are not a multiple of the KV-head count raise :class:`DimensionError` instead
of silently mis-grouping.

:func:`decode_attention` is vectorized across KV heads: per-head selections
are gathered into dense ``(heads, tokens, d_h)`` tensors (heads with equal
selection lengths are batched together, so no padding enters any softmax
reduction and results stay bitwise identical to a per-head einsum loop) and
scored with one einsum + softmax per length group instead of a Python loop
over every ``kv_head x group`` pair.
"""

from __future__ import annotations

import numpy as np

from ..errors import DimensionError
from ..utils import softmax

__all__ = [
    "causal_attention",
    "decode_attention",
    "attention_scores_single_query",
    "expand_kv_heads",
]


def expand_kv_heads(tensor: np.ndarray, group_size: int) -> np.ndarray:
    """Repeat KV heads so they align with query heads.

    ``(h_kv, s, d_h) -> (h_kv * group_size, s, d_h)`` with each KV head
    repeated ``group_size`` times consecutively.
    """
    if group_size <= 0:
        raise DimensionError("group_size must be positive")
    return np.repeat(tensor, group_size, axis=0)


def causal_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    return_scores: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Full causal self-attention.

    Args:
        queries: ``(h, s, d_h)`` query vectors.
        keys: ``(h_kv, s, d_h)`` key vectors.
        values: ``(h_kv, s, d_h)`` value vectors.
        return_scores: also return the post-softmax attention scores
            ``(h, s, s)`` (needed by baselines such as H2O and SnapKV).

    Returns:
        ``(h, s, d_h)`` attention output, optionally with the score tensor.
    """
    queries = np.asarray(queries, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    h, s, d_h = queries.shape
    h_kv = keys.shape[0]
    if h % h_kv != 0:
        raise DimensionError("query heads must be a multiple of kv heads")
    group = h // h_kv
    k_exp = expand_kv_heads(keys, group)
    v_exp = expand_kv_heads(values, group)

    logits = np.einsum("hqd,hkd->hqk", queries, k_exp) / np.sqrt(d_h)
    mask = np.triu(np.ones((s, s), dtype=bool), k=1)
    logits = np.where(mask[None, :, :], -np.inf, logits)
    scores = softmax(logits, axis=-1)
    output = np.einsum("hqk,hkd->hqd", scores, v_exp)
    if return_scores:
        return output, scores
    return output


def attention_scores_single_query(
    query: np.ndarray,
    keys: np.ndarray,
    group_size: int,
) -> np.ndarray:
    """Pre-softmax logits of one decode query against all keys.

    Args:
        query: ``(h, d_h)`` query of the last token.
        keys: ``(h_kv, s, d_h)`` cached keys.
        group_size: query heads per key/value head.

    Returns:
        ``(h, s)`` scaled logits.
    """
    query = np.asarray(query, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    h, d_h = query.shape
    h_kv = keys.shape[0]
    if h % h_kv != 0:
        raise DimensionError(
            f"query heads ({h}) must be a multiple of kv heads ({h_kv})"
        )
    k_exp = expand_kv_heads(keys, group_size)
    if k_exp.shape[0] != h:
        raise DimensionError(
            f"expanded kv heads {k_exp.shape[0]} do not match query heads {h}"
        )
    return np.einsum("hd,hsd->hs", query, k_exp) / np.sqrt(d_h)


def decode_attention(
    query: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    selected: np.ndarray | list[np.ndarray] | None = None,
) -> np.ndarray:
    """Attention output of one decode step, optionally over a token subset.

    Args:
        query: ``(h, d_h)`` query of the last token.
        keys: ``(h_kv, s, d_h)`` cached keys.
        values: ``(h_kv, s, d_h)`` cached values.
        selected: token indices to attend to.  Either ``None`` (all tokens),
            a single 1-D index array shared by all KV heads, or a list of
            per-KV-head index arrays (PQCache retrieves per head).

    Returns:
        ``(h, d_h)`` attention output.
    """
    query = np.asarray(query, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    h, d_h = query.shape
    h_kv, s, _ = keys.shape
    if h % h_kv != 0:
        raise DimensionError(
            f"query heads ({h}) must be a multiple of kv heads ({h_kv})"
        )
    group = h // h_kv

    if selected is None:
        per_head_indices = [np.arange(s, dtype=np.int64)] * h_kv
    elif isinstance(selected, (list, tuple)):
        if len(selected) != h_kv:
            raise DimensionError(
                f"need {h_kv} per-head index arrays, got {len(selected)}"
            )
        per_head_indices = [np.asarray(idx, dtype=np.int64) for idx in selected]
    else:
        shared = np.asarray(selected, dtype=np.int64)
        per_head_indices = [shared] * h_kv

    # Vectorized across KV heads: heads whose selections have the same
    # length are gathered and scored together with one einsum + softmax.
    # Grouping by exact length (instead of padding to the max and masking)
    # keeps every softmax reduction at its true length, so the result is
    # bitwise identical to scoring each head separately.
    output = np.zeros((h, d_h), dtype=np.float64)
    lengths = np.array([idx.size for idx in per_head_indices], dtype=np.int64)
    q_grouped = query.reshape(h_kv, group, d_h)
    scale = np.sqrt(d_h)
    for t in np.unique(lengths):
        if t == 0:
            continue  # empty selection: the head's output stays zero
        heads = np.flatnonzero(lengths == t)
        indices = np.stack([per_head_indices[kv] for kv in heads])  # (n, t)
        k_sel = keys[heads[:, None], indices]    # (n, t, d_h)
        v_sel = values[heads[:, None], indices]  # (n, t, d_h)
        logits = np.einsum("ngd,ntd->ngt", q_grouped[heads], k_sel) / scale
        weights = softmax(logits, axis=-1)
        out = np.einsum("ngt,ntd->ngd", weights, v_sel)  # (n, group, d_h)
        q_heads = (heads[:, None] * group + np.arange(group)[None, :]).ravel()
        output[q_heads] = out.reshape(-1, d_h)
    return output
