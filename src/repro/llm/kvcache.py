"""Key-Value cache data structures.

The KVCache is the central object that PQCache manages.  This module keeps
the modelling simple and explicit: one :class:`LayerKVCache` per transformer
layer holding ``(h_kv, s, d_h)`` arrays of keys and values, with append
semantics for autoregressive decoding, plus the three-way segmentation the
paper uses (initial tokens, middle tokens, local tokens — §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, DimensionError

__all__ = ["TokenSegments", "LayerKVCache", "KVCache"]


@dataclass(frozen=True)
class TokenSegments:
    """Partition of the token axis into initial / middle / local segments.

    ``initial`` covers ``[0, num_initial)``, ``local`` covers the most recent
    ``num_local`` tokens, and ``middle`` is everything in between.  Initial
    and local tokens stay GPU-resident and always participate in attention;
    middle tokens are the retrieval candidates.
    """

    seq_len: int
    num_initial: int
    num_local: int

    def __post_init__(self) -> None:
        if self.seq_len < 0:
            raise ConfigurationError("seq_len must be >= 0")
        if self.num_initial < 0 or self.num_local < 0:
            raise ConfigurationError("segment sizes must be >= 0")

    @property
    def initial_indices(self) -> np.ndarray:
        end = min(self.num_initial, self.seq_len)
        return np.arange(0, end, dtype=np.int64)

    @property
    def local_indices(self) -> np.ndarray:
        start = max(self.seq_len - self.num_local, min(self.num_initial, self.seq_len))
        return np.arange(start, self.seq_len, dtype=np.int64)

    @property
    def middle_indices(self) -> np.ndarray:
        start = min(self.num_initial, self.seq_len)
        end = max(self.seq_len - self.num_local, start)
        return np.arange(start, end, dtype=np.int64)

    @property
    def num_middle(self) -> int:
        return int(self.middle_indices.size)

    def describe(self) -> dict:
        return {
            "seq_len": self.seq_len,
            "initial": int(self.initial_indices.size),
            "middle": self.num_middle,
            "local": int(self.local_indices.size),
        }


class LayerKVCache:
    """Keys and values of one layer: ``(num_kv_heads, seq, head_dim)``.

    Storage grows by chunked re-allocation, which keeps the append path cheap
    enough for NumPy-based decoding loops.
    """

    _GROWTH = 256

    def __init__(self, num_kv_heads: int, head_dim: int) -> None:
        if num_kv_heads <= 0 or head_dim <= 0:
            raise ConfigurationError("num_kv_heads and head_dim must be positive")
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        self._keys = np.zeros((num_kv_heads, 0, head_dim), dtype=np.float64)
        self._values = np.zeros((num_kv_heads, 0, head_dim), dtype=np.float64)
        self._length = 0

    # ------------------------------------------------------------ capacity

    def __len__(self) -> int:
        return self._length

    @property
    def keys(self) -> np.ndarray:
        """View of the stored keys, shape ``(h_kv, len(self), d_h)``."""
        return self._keys[:, : self._length, :]

    @property
    def values(self) -> np.ndarray:
        """View of the stored values, shape ``(h_kv, len(self), d_h)``."""
        return self._values[:, : self._length, :]

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._length + extra
        capacity = self._keys.shape[1]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity + self._GROWTH, capacity * 2)
        grow = new_capacity - capacity
        pad = np.zeros((self.num_kv_heads, grow, self.head_dim), dtype=np.float64)
        self._keys = np.concatenate([self._keys, pad], axis=1)
        self._values = np.concatenate([self._values, pad.copy()], axis=1)

    # -------------------------------------------------------------- append

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append one or more tokens' keys and values.

        Accepts ``(h_kv, t, d_h)`` or ``(h_kv, d_h)`` (single token).
        """
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if keys.ndim == 2:
            keys = keys[:, None, :]
        if values.ndim == 2:
            values = values[:, None, :]
        if keys.shape != values.shape:
            raise DimensionError("keys and values must have identical shapes")
        if keys.shape[0] != self.num_kv_heads or keys.shape[2] != self.head_dim:
            raise DimensionError(
                f"expected (h_kv={self.num_kv_heads}, t, d_h={self.head_dim}), "
                f"got {keys.shape}"
            )
        t = keys.shape[1]
        self._ensure_capacity(t)
        self._keys[:, self._length: self._length + t, :] = keys
        self._values[:, self._length: self._length + t, :] = values
        self._length += t

    def gather(self, token_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Keys and values of the given token indices: ``(h_kv, k, d_h)``."""
        token_indices = np.asarray(token_indices, dtype=np.int64)
        if token_indices.size and (
            token_indices.min() < 0 or token_indices.max() >= self._length
        ):
            raise DimensionError("token index out of range")
        return (
            self.keys[:, token_indices, :],
            self.values[:, token_indices, :],
        )

    def nbytes(self, dtype_bytes: int = 2) -> int:
        """Modelled storage cost at the given element width (fp16 default)."""
        return 2 * self.num_kv_heads * self._length * self.head_dim * dtype_bytes


class KVCache:
    """Per-layer collection of :class:`LayerKVCache` objects."""

    def __init__(self, num_layers: int, num_kv_heads: int, head_dim: int) -> None:
        if num_layers <= 0:
            raise ConfigurationError("num_layers must be positive")
        self.num_layers = num_layers
        self.layers = [
            LayerKVCache(num_kv_heads, head_dim) for _ in range(num_layers)
        ]

    def __getitem__(self, layer: int) -> LayerKVCache:
        return self.layers[layer]

    def __len__(self) -> int:
        return len(self.layers[0]) if self.layers else 0

    @property
    def seq_len(self) -> int:
        return len(self)

    def segments(self, num_initial: int, num_local: int) -> TokenSegments:
        """Current initial/middle/local partition of the token axis."""
        return TokenSegments(
            seq_len=self.seq_len, num_initial=num_initial, num_local=num_local
        )

    def nbytes(self, dtype_bytes: int = 2) -> int:
        return sum(layer.nbytes(dtype_bytes) for layer in self.layers)
