"""Key-Value cache data structures: monolithic and paged (block-based).

The KVCache is the central object that PQCache manages.  Two storage designs
coexist:

* **Monolithic** — one :class:`LayerKVCache` per transformer layer holding
  ``(h_kv, s, d_h)`` arrays of keys and values with amortised-growth append
  semantics.  This is the default for standalone generation: the cache is
  private to one sequence and freed with it.
* **Paged** — a :class:`PagedKVCache` whose physical storage is fixed-size
  token *blocks* drawn from a shared, refcounted :class:`BlockAllocator`
  (vLLM-style).  A :class:`BlockTable` maps logical token positions to
  physical blocks, blocks can be shared between requests (a forked table
  increfs them), and writes into a shared block copy it first
  (copy-on-write) — which is what lets the serving engine's prefix cache
  reuse a common prompt prefix across requests without ever letting one
  request corrupt another's view.  Each layer additionally keeps a
  contiguous *assembled mirror* of its tokens so the NumPy attention kernels
  read the exact same ``(h_kv, s, d_h)`` views as the monolithic cache —
  paged and monolithic storage are bitwise interchangeable for compute.

Both designs share the three-way segmentation the paper uses (initial
tokens, middle tokens, local tokens — §3.4) via :class:`TokenSegments`.

Tiered placement (GPU ↔ CPU pinned ↔ disk)
------------------------------------------
The block pool models *GPU* residency.  Under pool pressure the serving
engine moves whole block chains down the memory hierarchy through a
:class:`SwapSpace`: swap-out copies a chain's block contents into a CPU
tier (demoting cold entries onward to a disk tier when the CPU tier fills),
frees the pool blocks, and returns a :class:`SwappedBlocks` handle; swap-in
allocates fresh pool blocks and restores the contents bitwise.  The same
store backs the prefix cache's disk spill of cold chains.  Exhausting every
tier raises :class:`~repro.errors.CapacityError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CapacityError, ConfigurationError, DimensionError
from .kvcodec import EncodedKV, KVBlockCodec, RawCodec

__all__ = [
    "TokenSegments",
    "LayerKVCache",
    "KVCache",
    "BlockAllocator",
    "BlockTable",
    "PagedLayerKVCache",
    "PagedKVCache",
    "SwappedBlocks",
    "SwapSpace",
]


@dataclass(frozen=True)
class TokenSegments:
    """Partition of the token axis into initial / middle / local segments.

    ``initial`` covers ``[0, num_initial)``, ``local`` covers the most recent
    ``num_local`` tokens, and ``middle`` is everything in between.  Initial
    and local tokens stay GPU-resident and always participate in attention;
    middle tokens are the retrieval candidates.
    """

    seq_len: int
    num_initial: int
    num_local: int

    def __post_init__(self) -> None:
        if self.seq_len < 0:
            raise ConfigurationError("seq_len must be >= 0")
        if self.num_initial < 0 or self.num_local < 0:
            raise ConfigurationError("segment sizes must be >= 0")

    @property
    def initial_indices(self) -> np.ndarray:
        end = min(self.num_initial, self.seq_len)
        return np.arange(0, end, dtype=np.int64)

    @property
    def local_indices(self) -> np.ndarray:
        start = max(self.seq_len - self.num_local, min(self.num_initial, self.seq_len))
        return np.arange(start, self.seq_len, dtype=np.int64)

    @property
    def middle_indices(self) -> np.ndarray:
        start = min(self.num_initial, self.seq_len)
        end = max(self.seq_len - self.num_local, start)
        return np.arange(start, end, dtype=np.int64)

    @property
    def num_middle(self) -> int:
        return int(self.middle_indices.size)

    def describe(self) -> dict:
        return {
            "seq_len": self.seq_len,
            "initial": int(self.initial_indices.size),
            "middle": self.num_middle,
            "local": int(self.local_indices.size),
        }


class LayerKVCache:
    """Keys and values of one layer: ``(num_kv_heads, seq, head_dim)``.

    Storage grows by chunked re-allocation, which keeps the append path cheap
    enough for NumPy-based decoding loops.
    """

    _GROWTH = 256

    def __init__(
        self, num_kv_heads: int, head_dim: int, dtype_bytes: int = 2
    ) -> None:
        if num_kv_heads <= 0 or head_dim <= 0:
            raise ConfigurationError("num_kv_heads and head_dim must be positive")
        if dtype_bytes not in (1, 2, 4, 8):
            raise ConfigurationError("dtype_bytes must be one of 1, 2, 4, 8")
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        #: modelled element width the byte accounting defaults to
        self.dtype_bytes = dtype_bytes
        self._keys = np.zeros((num_kv_heads, 0, head_dim), dtype=np.float64)
        self._values = np.zeros((num_kv_heads, 0, head_dim), dtype=np.float64)
        self._length = 0

    # ------------------------------------------------------------ capacity

    def __len__(self) -> int:
        return self._length

    @property
    def keys(self) -> np.ndarray:
        """View of the stored keys, shape ``(h_kv, len(self), d_h)``."""
        return self._keys[:, : self._length, :]

    @property
    def values(self) -> np.ndarray:
        """View of the stored values, shape ``(h_kv, len(self), d_h)``."""
        return self._values[:, : self._length, :]

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._length + extra
        capacity = self._keys.shape[1]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity + self._GROWTH, capacity * 2)
        grow = new_capacity - capacity
        pad = np.zeros((self.num_kv_heads, grow, self.head_dim), dtype=np.float64)
        self._keys = np.concatenate([self._keys, pad], axis=1)
        self._values = np.concatenate([self._values, pad.copy()], axis=1)

    # -------------------------------------------------------------- append

    def _validate_append(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Normalise append operands to ``(h_kv, t, d_h)`` and check shapes."""
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if keys.ndim == 2:
            keys = keys[:, None, :]
        if values.ndim == 2:
            values = values[:, None, :]
        if keys.shape != values.shape:
            raise DimensionError("keys and values must have identical shapes")
        if keys.shape[0] != self.num_kv_heads or keys.shape[2] != self.head_dim:
            raise DimensionError(
                f"expected (h_kv={self.num_kv_heads}, t, d_h={self.head_dim}), "
                f"got {keys.shape}"
            )
        return keys, values

    def _store(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Write already-validated ``(h_kv, t, d_h)`` operands."""
        t = keys.shape[1]
        self._ensure_capacity(t)
        self._keys[:, self._length: self._length + t, :] = keys
        self._values[:, self._length: self._length + t, :] = values
        self._length += t

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append one or more tokens' keys and values.

        Accepts ``(h_kv, t, d_h)`` or ``(h_kv, d_h)`` (single token).
        """
        keys, values = self._validate_append(keys, values)
        self._store(keys, values)

    def gather(self, token_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Keys and values of the given token indices: ``(h_kv, k, d_h)``."""
        token_indices = np.asarray(token_indices, dtype=np.int64)
        if token_indices.size and (
            token_indices.min() < 0 or token_indices.max() >= self._length
        ):
            raise DimensionError("token index out of range")
        return (
            self.keys[:, token_indices, :],
            self.values[:, token_indices, :],
        )

    def nbytes(self, dtype_bytes: "int | None" = None) -> int:
        """Modelled storage cost at the given element width.

        Defaults to the width configured at construction (the model
        config's ``dtype_bytes``), so byte accounting follows the modelled
        storage dtype instead of assuming fp16.
        """
        if dtype_bytes is None:
            dtype_bytes = self.dtype_bytes
        return 2 * self.num_kv_heads * self._length * self.head_dim * dtype_bytes


class KVCache:
    """Per-layer collection of :class:`LayerKVCache` objects."""

    def __init__(
        self, num_layers: int, num_kv_heads: int, head_dim: int,
        dtype_bytes: int = 2,
    ) -> None:
        if num_layers <= 0:
            raise ConfigurationError("num_layers must be positive")
        self.num_layers = num_layers
        self.layers = [
            LayerKVCache(num_kv_heads, head_dim, dtype_bytes)
            for _ in range(num_layers)
        ]

    def __getitem__(self, layer: int) -> LayerKVCache:
        return self.layers[layer]

    def __len__(self) -> int:
        return len(self.layers[0]) if self.layers else 0

    @property
    def seq_len(self) -> int:
        return len(self)

    def segments(self, num_initial: int, num_local: int) -> TokenSegments:
        """Current initial/middle/local partition of the token axis."""
        return TokenSegments(
            seq_len=self.seq_len, num_initial=num_initial, num_local=num_local
        )

    def nbytes(self, dtype_bytes: "int | None" = None) -> int:
        return sum(layer.nbytes(dtype_bytes) for layer in self.layers)


# --------------------------------------------------------------------- paged


class BlockAllocator:
    """Refcounted pool of fixed-size KV blocks shared by all requests.

    One physical block stores ``block_size`` tokens' keys and values for
    *every* layer — shape ``(num_layers, h_kv, block_size, d_h)`` per tensor —
    so a prefix chain of blocks is layer-agnostic and can be attached to a new
    request wholesale.  Blocks are allocated with refcount 1; sharing
    (:meth:`BlockTable.fork`, the prefix cache) increfs, releases decref, and
    a block whose refcount reaches zero returns to the free list for reuse.

    Attributes:
        eviction_hook: optional callable ``(num_blocks) -> int`` invoked when
            an allocation finds the pool exhausted (no free block, capacity
            reached).  The hook should release references (e.g. evict
            prefix-cache entries) and return how many blocks it freed; the
            allocation is retried once afterwards and raises
            :class:`~repro.errors.CapacityError` if the pool is still full.
    """

    def __init__(
        self,
        num_layers: int,
        num_kv_heads: int,
        head_dim: int,
        block_size: int = 64,
        capacity_blocks: int | None = None,
        dtype_bytes: int = 2,
    ) -> None:
        if num_layers <= 0 or num_kv_heads <= 0 or head_dim <= 0:
            raise ConfigurationError(
                "num_layers, num_kv_heads and head_dim must be positive"
            )
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if capacity_blocks is not None and capacity_blocks <= 0:
            raise ConfigurationError(
                "capacity_blocks must be positive (or None for an unbounded pool)"
            )
        if dtype_bytes not in (1, 2, 4, 8):
            raise ConfigurationError("dtype_bytes must be one of 1, 2, 4, 8")
        #: modelled element width all byte accounting defaults to; the
        #: serving engine sets this from the model config's ``dtype_bytes``
        #: so nothing downstream bills against a hardcoded fp16 baseline
        self.dtype_bytes = dtype_bytes
        self.num_layers = num_layers
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.eviction_hook = None
        self._keys: dict[int, np.ndarray] = {}
        self._values: dict[int, np.ndarray] = {}
        self._refcounts: dict[int, int] = {}
        self._free: list[int] = []
        self._next_id = 0
        #: lifetime counters (allocations counts fresh + recycled blocks)
        self.allocations = 0
        self.cow_copies = 0

    # ---------------------------------------------------------- accounting

    @property
    def num_allocated(self) -> int:
        """Blocks currently referenced by at least one holder."""
        return len(self._refcounts)

    @property
    def num_free(self) -> int:
        """Recycled blocks immediately available without growing the pool."""
        return len(self._free)

    @property
    def num_available(self) -> int | None:
        """Blocks that could still be handed out (``None`` = unbounded)."""
        if self.capacity_blocks is None:
            return None
        return self.capacity_blocks - self.num_allocated

    def tokens_capacity(self) -> int | None:
        """Pool capacity in tokens (``None`` = unbounded)."""
        if self.capacity_blocks is None:
            return None
        return self.capacity_blocks * self.block_size

    def block_nbytes(self, dtype_bytes: "int | None" = None) -> int:
        """Modelled storage cost of one block (defaults to the pool's width)."""
        if dtype_bytes is None:
            dtype_bytes = self.dtype_bytes
        return (
            2 * self.num_layers * self.num_kv_heads * self.block_size
            * self.head_dim * dtype_bytes
        )

    def nbytes(self, dtype_bytes: "int | None" = None) -> int:
        """Modelled storage cost of every live block."""
        return self.num_allocated * self.block_nbytes(dtype_bytes)

    # ---------------------------------------------------------- allocation

    def _block_shape(self) -> tuple[int, int, int, int]:
        return (self.num_layers, self.num_kv_heads, self.block_size, self.head_dim)

    #: blocks requested from the eviction hook per exhaustion event; freeing
    #: a small batch amortises the hook's scan over the next allocations (a
    #: multi-block admission would otherwise fire it once per block).
    _EVICTION_BATCH = 8

    def allocate(self) -> int:
        """Hand out one block with refcount 1.

        Reuses a freed block when possible; otherwise grows the pool up to
        ``capacity_blocks``.  On exhaustion the :attr:`eviction_hook` gets one
        chance to free blocks before :class:`~repro.errors.CapacityError`.
        """
        block_id = self._try_allocate()
        if block_id is None and self.eviction_hook is not None:
            self.eviction_hook(self._EVICTION_BATCH)
            block_id = self._try_allocate()
        if block_id is None:
            raise CapacityError(
                f"KV block pool exhausted: {self.num_allocated}/"
                f"{self.capacity_blocks} blocks in use and nothing evictable"
            )
        return block_id

    def _try_allocate(self) -> int | None:
        if self._free:
            block_id = self._free.pop()
            self._keys[block_id].fill(0.0)
            self._values[block_id].fill(0.0)
        elif self.capacity_blocks is None or self._next_id < self.capacity_blocks:
            block_id = self._next_id
            self._next_id += 1
            self._keys[block_id] = np.zeros(self._block_shape())
            self._values[block_id] = np.zeros(self._block_shape())
        else:
            return None
        self._refcounts[block_id] = 1
        self.allocations += 1
        return block_id

    def _require_live(self, block_id: int) -> None:
        if block_id not in self._refcounts:
            raise ConfigurationError(f"block {block_id} is not allocated")

    def refcount(self, block_id: int) -> int:
        self._require_live(block_id)
        return self._refcounts[block_id]

    def incref(self, block_id: int) -> None:
        self._require_live(block_id)
        self._refcounts[block_id] += 1

    def decref(self, block_id: int) -> bool:
        """Drop one reference; returns True when the block was freed.

        Raises :class:`~repro.errors.ConfigurationError` on refcount
        underflow (decref of a block that is already free) — that is always a
        double-release bug in the caller, never a recoverable condition.
        """
        self._require_live(block_id)
        count = self._refcounts[block_id] - 1
        if count < 0:  # pragma: no cover - _require_live catches first
            raise ConfigurationError(f"refcount underflow on block {block_id}")
        if count == 0:
            del self._refcounts[block_id]
            self._free.append(block_id)
            return True
        self._refcounts[block_id] = count
        return False

    def copy_block(self, block_id: int) -> int:
        """Copy-on-write helper: clone a block's contents into a fresh block.

        The caller still holds its reference on the source block and is
        expected to :meth:`decref` it after swapping its table entry.
        """
        self._require_live(block_id)
        new_id = self.allocate()
        self._keys[new_id][...] = self._keys[block_id]
        self._values[new_id][...] = self._values[block_id]
        self.cow_copies += 1
        return new_id

    # ------------------------------------------------------------- storage

    def block_keys(self, block_id: int) -> np.ndarray:
        """Key storage of a block: ``(num_layers, h_kv, block_size, d_h)``."""
        self._require_live(block_id)
        return self._keys[block_id]

    def block_values(self, block_id: int) -> np.ndarray:
        """Value storage of a block: ``(num_layers, h_kv, block_size, d_h)``."""
        self._require_live(block_id)
        return self._values[block_id]


class BlockTable:
    """Ordered mapping of logical token blocks to physical block ids.

    The table *owns* one allocator reference per listed block; :meth:`fork`
    produces a copy-on-write shallow copy (increfs every block), and
    :meth:`release` drops all references exactly once (idempotent).
    """

    def __init__(
        self, allocator: BlockAllocator, block_ids: "list[int] | None" = None
    ) -> None:
        self.allocator = allocator
        self.block_ids: list[int] = list(block_ids or [])
        self._released = False

    def __len__(self) -> int:
        return len(self.block_ids)

    @property
    def capacity_tokens(self) -> int:
        return len(self.block_ids) * self.allocator.block_size

    @classmethod
    def fork_from(
        cls, allocator: BlockAllocator, block_ids: "list[int]"
    ) -> "BlockTable":
        """Build a table sharing existing blocks (increfs each of them)."""
        for block_id in block_ids:
            allocator.incref(block_id)
        return cls(allocator, list(block_ids))

    def fork(self) -> "BlockTable":
        """Copy-on-write clone of this table."""
        self._require_live()
        return BlockTable.fork_from(self.allocator, self.block_ids)

    def append_new(self) -> int:
        """Allocate and append a fresh block; returns its id."""
        self._require_live()
        block_id = self.allocator.allocate()
        self.block_ids.append(block_id)
        return block_id

    def replace(self, index: int, new_block_id: int) -> None:
        """Swap entry ``index`` for an already-owned block (COW bookkeeping).

        The old block's reference is dropped; the new block's reference is
        assumed to be held already (e.g. from :meth:`BlockAllocator.copy_block`).
        """
        self._require_live()
        old = self.block_ids[index]
        self.block_ids[index] = new_block_id
        self.allocator.decref(old)

    def release(self) -> None:
        """Drop every block reference held by this table (idempotent)."""
        if self._released:
            return
        self._released = True
        for block_id in self.block_ids:
            self.allocator.decref(block_id)
        self.block_ids = []

    @property
    def released(self) -> bool:
        return self._released

    def _require_live(self) -> None:
        if self._released:
            raise ConfigurationError("BlockTable has been released")


class PagedLayerKVCache(LayerKVCache):
    """One layer of a :class:`PagedKVCache`.

    Behaves exactly like :class:`LayerKVCache` for readers (``keys`` /
    ``values`` / ``gather`` are contiguous assembled views), but every append
    is also written through to the owning cache's shared block storage, where
    copy-on-write protects blocks shared with other requests.
    """

    def __init__(self, owner: "PagedKVCache", layer_index: int) -> None:
        super().__init__(owner.allocator.num_kv_heads, owner.allocator.head_dim,
                         owner.allocator.dtype_bytes)
        self._owner = owner
        self._layer_index = layer_index

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys, values = self._validate_append(keys, values)
        # Blocks first: allocation can fail on a bounded pool, and in that
        # case the assembled mirror must not have advanced.
        self._owner._write_blocks(self._layer_index, self._length, keys, values)
        self._store(keys, values)

    def _mirror_append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append to the assembled mirror only (prefix attach path)."""
        super().append(keys, values)


class PagedKVCache(KVCache):
    """Block-based KVCache drawing storage from a shared allocator.

    All layers share one :class:`BlockTable`: a physical block holds the
    keys/values of its token range for every layer, so a cached prefix chain
    attaches in one step.  Construction with ``prefix_table`` /
    ``prefix_len`` starts the cache pre-filled with the first ``prefix_len``
    tokens read out of the shared blocks (the prefix-cache hit path); the
    table passed in must already own its block references (e.g. via
    :meth:`BlockTable.fork_from`) and is owned by this cache from then on.

    Call :meth:`release` when the request no longer needs the shared storage:
    the block references are dropped (blocks whose refcount reaches zero
    return to the allocator's free list) while the assembled per-layer
    mirrors stay readable, so retained outputs keep working after release.
    """

    def __init__(
        self,
        allocator: BlockAllocator,
        prefix_table: BlockTable | None = None,
        prefix_len: int = 0,
    ) -> None:
        self.allocator = allocator
        self.num_layers = allocator.num_layers
        if prefix_len < 0:
            raise ConfigurationError("prefix_len must be >= 0")
        if prefix_len > 0:
            if prefix_table is None:
                raise ConfigurationError("prefix_len > 0 requires a prefix_table")
            if prefix_table.capacity_tokens < prefix_len:
                raise ConfigurationError(
                    f"prefix_table holds {prefix_table.capacity_tokens} tokens, "
                    f"prefix_len={prefix_len} requested"
                )
        self.table = prefix_table if prefix_table is not None else BlockTable(allocator)
        self.cached_prefix_len = prefix_len
        self.layers = [
            PagedLayerKVCache(self, layer) for layer in range(self.num_layers)
        ]
        if prefix_len > 0:
            self._attach_prefix(prefix_len)

    # ------------------------------------------------------------- prefix

    def _attach_prefix(self, prefix_len: int) -> None:
        """Assemble the first ``prefix_len`` tokens from the shared blocks.

        Appends block slices straight into each layer's mirror — one copy
        per element, no concatenated all-layers temporary — since this runs
        on every prefix-cache hit.
        """
        block_size = self.allocator.block_size
        num_blocks = -(-prefix_len // block_size)
        for layer_index, layer in enumerate(self.layers):
            remaining = prefix_len
            for block_id in self.table.block_ids[:num_blocks]:
                take = min(block_size, remaining)
                layer._mirror_append(
                    self.allocator.block_keys(block_id)[layer_index, :, :take, :],
                    self.allocator.block_values(block_id)[layer_index, :, :take, :],
                )
                remaining -= take

    # ------------------------------------------------------------- writes

    def _write_blocks(
        self, layer_index: int, start: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Write one layer's token span ``[start, start+t)`` into the blocks.

        Extends the shared table as the leading layer crosses block
        boundaries and performs copy-on-write on any block that is shared
        with another holder (refcount > 1).
        """
        block_size = self.allocator.block_size
        t = keys.shape[1]
        pos = start
        while pos < start + t:
            block_index = pos // block_size
            offset = pos % block_size
            take = min(block_size - offset, start + t - pos)
            if block_index >= len(self.table.block_ids):
                self.table.append_new()
            block_id = self.table.block_ids[block_index]
            if self.allocator.refcount(block_id) > 1:
                block_id = self.allocator.copy_block(block_id)
                self.table.replace(block_index, block_id)
            rel = pos - start
            self.allocator.block_keys(block_id)[
                layer_index, :, offset: offset + take, :
            ] = keys[:, rel: rel + take, :]
            self.allocator.block_values(block_id)[
                layer_index, :, offset: offset + take, :
            ] = values[:, rel: rel + take, :]
            pos += take

    # ------------------------------------------------------------ release

    def release(self) -> None:
        """Drop the shared block references (mirrors remain readable)."""
        self.table.release()

    @property
    def released(self) -> bool:
        return self.table.released

    def pool_nbytes(self, dtype_bytes: "int | None" = None) -> int:
        """Modelled shared-storage cost of the blocks this cache references."""
        return len(self.table.block_ids) * self.allocator.block_nbytes(dtype_bytes)


# -------------------------------------------------------------------- tiers


@dataclass(eq=False)  # identity semantics: a handle is a unique ticket
class SwappedBlocks:
    """Handle to a block chain whose contents left the GPU pool.

    Two kinds of chain positions coexist:

    * **stored** — the block was exclusively owned by the swapped request
      (refcount 1), so freeing it reclaims pool space; its contents are
      *encoded* through the handle's codec into the handle
      (``keys[i]``/``values[i]`` hold :class:`~repro.llm.kvcodec.EncodedKV`
      payloads) and decoded into a freshly allocated block on swap-in.  The
      encoded form is what occupies the tier and crosses the PCIe/NVMe
      links — the handle's ``stored_wire_nbytes`` is the transfer size the
      engine bills, while ``stored_logical_nbytes`` is what the raw tiers
      would have moved.
    * **pinned** — the block is *shared* (prefix cache, a forked sibling, a
      retained output), so it stays GPU-resident regardless of this request;
      the handle takes one extra reference (``pinned_ids[i]``), no bytes
      move, and swap-in hands the reference straight back to the new table.
      This keeps sharing intact across a preemption — restoring a shared
      4k-token prefix must not duplicate it.

    The handle is single-use: :meth:`SwapSpace.swap_in` consumes it.

    Attributes:
        keys: per-position encoded key payloads (``None`` at pinned ones).
        values: per-position encoded value payloads (``None`` at pinned ones).
        pinned_ids: per-position pinned block id (``None`` at stored ones).
        allocator: pool the pinned references live in.
        tier: current residency of the stored copies — ``"cpu"`` or
            ``"disk"``.  A handle created on the CPU tier may be demoted to
            ``"disk"`` while parked.
        codec: the :class:`~repro.llm.kvcodec.KVBlockCodec` the stored
            positions were encoded with (pins materialised later reuse it).
    """

    keys: "list[EncodedKV | None]"
    values: "list[EncodedKV | None]"
    pinned_ids: "list[int | None]"
    allocator: "BlockAllocator"
    tier: str
    codec: "KVBlockCodec"

    @property
    def num_blocks(self) -> int:
        """Chain length (stored + pinned positions)."""
        return len(self.keys)

    @property
    def stored_blocks(self) -> int:
        """Positions whose contents are parked in the swap space."""
        return sum(1 for k in self.keys if k is not None)

    @property
    def pinned_blocks(self) -> int:
        """Positions held as extra references on GPU-resident shared blocks."""
        return len(self.keys) - self.stored_blocks

    @property
    def stored_wire_nbytes(self) -> int:
        """Encoded bytes the stored positions occupy (transfer size)."""
        return sum(
            k.wire_nbytes + v.wire_nbytes
            for k, v in zip(self.keys, self.values) if k is not None
        )

    @property
    def stored_logical_nbytes(self) -> int:
        """Modelled raw bytes of the stored positions (pre-codec size)."""
        return sum(
            k.logical_nbytes + v.logical_nbytes
            for k, v in zip(self.keys, self.values) if k is not None
        )


@dataclass
class SwapSpaceStats:
    """Lifetime transfer counters of one :class:`SwapSpace`.

    Block counters count chain positions; the byte counters distinguish
    *logical* bytes (the modelled raw size a codec-less tier would move)
    from *wire* bytes (the encoded size that actually occupies the tier and
    crosses the link) so achieved compression ratios fall straight out of
    their quotient.
    """

    swapped_out: int = 0
    swapped_in: int = 0
    demoted: int = 0
    discarded: int = 0
    swapped_out_logical_bytes: int = 0
    swapped_out_wire_bytes: int = 0
    swapped_in_logical_bytes: int = 0
    swapped_in_wire_bytes: int = 0
    #: bytes of CPU-parked handles that cascaded onward to the disk tier
    demoted_logical_bytes: int = 0
    demoted_wire_bytes: int = 0


class SwapSpace:
    """Two lower tiers of the KV hierarchy: CPU pinned memory and disk.

    The GPU block pool (:class:`BlockAllocator`) is the top tier.  A chain
    swapped out of it lands in the CPU tier when there is room; when the CPU
    tier is full, the *oldest parked* CPU handle is demoted to disk to make
    room (GPU → CPU → disk, strictly downward).  A chain may also be placed
    directly on the disk tier (the prefix cache's cold-chain spill).  When
    the target tier — after demotion — still cannot hold the chain,
    :class:`~repro.errors.CapacityError` is raised and nothing is stored.

    Capacities are expressed in blocks of the owning allocator's geometry;
    ``None`` means unbounded (host memory and disk are both effectively
    unbounded relative to a GPU pool, but tests and capacity planning can
    bound them).  All arrays live in process memory either way — the *tier*
    tag drives the byte accounting the latency model charges for PCIe and
    NVMe traffic.

    Every chain passes through a :class:`~repro.llm.kvcodec.KVBlockCodec`
    on the way down: the default (or per-call) codec encodes stored block
    copies into :class:`~repro.llm.kvcodec.EncodedKV` payloads whose
    ``wire_nbytes`` is what the links actually carry.  The default
    :class:`~repro.llm.kvcodec.RawCodec` keeps wire == logical, so a
    codec-less configuration bills exactly what it always did.
    """

    def __init__(
        self,
        cpu_capacity_blocks: int | None = None,
        disk_capacity_blocks: int | None = None,
        codec: "KVBlockCodec | None" = None,
    ) -> None:
        if cpu_capacity_blocks is not None and cpu_capacity_blocks < 0:
            raise ConfigurationError("cpu_capacity_blocks must be >= 0 or None")
        if disk_capacity_blocks is not None and disk_capacity_blocks < 0:
            raise ConfigurationError("disk_capacity_blocks must be >= 0 or None")
        self.cpu_capacity_blocks = cpu_capacity_blocks
        self.disk_capacity_blocks = disk_capacity_blocks
        #: codec applied to stored copies unless ``swap_out`` overrides it
        self.codec: KVBlockCodec = codec if codec is not None else RawCodec()
        #: parked handles in arrival order (oldest first) — demotion order
        self._handles: list[SwappedBlocks] = []
        self.stats = SwapSpaceStats()

    # ---------------------------------------------------------- accounting

    def _tier_blocks(self, tier: str) -> int:
        return sum(h.stored_blocks for h in self._handles if h.tier == tier)

    @property
    def cpu_blocks(self) -> int:
        """Blocks currently parked on the CPU tier."""
        return self._tier_blocks("cpu")

    @property
    def disk_blocks(self) -> int:
        """Blocks currently parked on the disk tier."""
        return self._tier_blocks("disk")

    def nbytes(self, block_nbytes: int) -> int:
        """Modelled bytes parked across both tiers."""
        return (self.cpu_blocks + self.disk_blocks) * block_nbytes

    def _tier_room(self, tier: str, capacity: int | None) -> int | None:
        if capacity is None:
            return None
        return capacity - self._tier_blocks(tier)

    # ------------------------------------------------------------ movement

    def _make_room_on_cpu(self, needed: int) -> int:
        """Demote oldest CPU handles to disk until ``needed`` blocks fit.

        Returns the number of blocks demoted.  Raises
        :class:`~repro.errors.CapacityError` when demotion cannot create
        enough room (the disk tier fills up first).
        """
        demoted = 0
        room = self._tier_room("cpu", self.cpu_capacity_blocks)
        while room is not None and room < needed:
            candidate = next(
                (h for h in self._handles if h.tier == "cpu" and h.stored_blocks),
                None,
            )
            if candidate is None:
                raise CapacityError(
                    f"swap space exhausted: CPU tier holds {self.cpu_blocks}/"
                    f"{self.cpu_capacity_blocks} blocks and nothing is demotable"
                )
            disk_room = self._tier_room("disk", self.disk_capacity_blocks)
            if disk_room is not None and disk_room < candidate.stored_blocks:
                raise CapacityError(
                    f"swap space exhausted: disk tier holds {self.disk_blocks}/"
                    f"{self.disk_capacity_blocks} blocks, cannot absorb a "
                    f"{candidate.stored_blocks}-block demotion"
                )
            candidate.tier = "disk"
            demoted += candidate.stored_blocks
            self.stats.demoted += candidate.stored_blocks
            self.stats.demoted_logical_bytes += candidate.stored_logical_nbytes
            self.stats.demoted_wire_bytes += candidate.stored_wire_nbytes
            room = self._tier_room("cpu", self.cpu_capacity_blocks)
        return demoted

    def swap_out(
        self,
        allocator: BlockAllocator,
        block_ids: "list[int]",
        tier: str = "cpu",
        codec: "KVBlockCodec | None" = None,
    ) -> SwappedBlocks:
        """Move a chain out of the pool into a lower tier.

        Exclusively-owned blocks (refcount 1) are encoded through the codec
        and copied into the tier — they are the ones whose release reclaims
        pool space.  *Shared* blocks (refcount > 1: the prefix cache or
        another request keeps them GPU-resident anyway) are pinned by
        reference instead: no bytes move and swap-in returns the very same
        block, preserving sharing.

        The caller's own pool references are *not* released here — it is
        expected to drop them (release the :class:`BlockTable`) once the
        handle exists, so a failed swap leaves the chain untouched.

        Args:
            allocator: the pool the blocks live in.
            block_ids: chain to move, in order.
            tier: ``"cpu"`` (default; demotes older entries to disk under
                pressure) or ``"disk"`` (direct cold spill).
            codec: overrides the space's default codec for this chain (the
                prefix cache uses this for lossy-on-spill configs).

        Returns:
            A single-use :class:`SwappedBlocks` handle.

        Raises:
            CapacityError: when neither tier can absorb the stored copies.
        """
        if tier not in ("cpu", "disk"):
            raise ConfigurationError(f"unknown swap tier {tier!r}")
        codec = codec if codec is not None else self.codec
        shared = [allocator.refcount(b) > 1 for b in block_ids]
        needed = sum(1 for s in shared if not s)
        if tier == "cpu":
            self._make_room_on_cpu(needed)
        room = self._tier_room(tier, self.cpu_capacity_blocks if tier == "cpu"
                               else self.disk_capacity_blocks)
        if room is not None and room < needed:
            raise CapacityError(
                f"swap space exhausted: {tier} tier cannot hold {needed} "
                "more blocks"
            )
        handle = SwappedBlocks(
            keys=[None if s else codec.encode(allocator.block_keys(b))
                  for b, s in zip(block_ids, shared)],
            values=[None if s else codec.encode(allocator.block_values(b))
                    for b, s in zip(block_ids, shared)],
            pinned_ids=[b if s else None for b, s in zip(block_ids, shared)],
            allocator=allocator,
            tier=tier,
            codec=codec,
        )
        for block_id, is_shared in zip(block_ids, shared):
            if is_shared:
                allocator.incref(block_id)
        self._handles.append(handle)
        self.stats.swapped_out += needed
        self.stats.swapped_out_logical_bytes += handle.stored_logical_nbytes
        self.stats.swapped_out_wire_bytes += handle.stored_wire_nbytes
        return handle

    def swap_in(
        self, handle: SwappedBlocks, allocator: BlockAllocator
    ) -> "list[int]":
        """Restore a parked chain into the pool.

        Consumes the handle.  Stored positions get freshly allocated blocks
        with the parked contents copied back; pinned positions hand their
        (still GPU-resident) block reference straight to the caller.
        Allocation happens first and may raise
        :class:`~repro.errors.CapacityError` (pool full, nothing evictable);
        already-allocated blocks are returned to the pool in that case, so a
        failed swap-in leaves both the pool and the handle consistent.

        Returns:
            The block ids, in chain order, with one reference each owned by
            the caller.
        """
        if handle not in self._handles:
            raise ConfigurationError("swap-in of an unknown or consumed handle")
        fresh: list[int] = []
        try:
            for _ in range(handle.stored_blocks):
                fresh.append(allocator.allocate())
        except CapacityError:
            for block_id in fresh:
                allocator.decref(block_id)
            raise
        restored_logical = handle.stored_logical_nbytes
        restored_wire = handle.stored_wire_nbytes
        new_ids: list[int] = []
        fresh_iter = iter(fresh)
        for keys, values, pinned in zip(
            handle.keys, handle.values, handle.pinned_ids
        ):
            if pinned is not None:
                new_ids.append(pinned)  # the pin reference transfers over
                continue
            block_id = next(fresh_iter)
            allocator.block_keys(block_id)[...] = keys.decode()
            allocator.block_values(block_id)[...] = values.decode()
            new_ids.append(block_id)
        self._handles.remove(handle)
        self.stats.swapped_in += len(fresh)
        self.stats.swapped_in_logical_bytes += restored_logical
        self.stats.swapped_in_wire_bytes += restored_wire
        return new_ids

    def materialize_pins(self, handle: SwappedBlocks) -> int:
        """Convert a parked handle's pinned positions into stored copies.

        Dropping a pin releases the handle's reference on a shared block so
        the *other* holder (typically the prefix cache) regains the power to
        evict or spill it — the engine calls this under extreme pool
        pressure, when keeping swapped requests' shared blocks GPU-resident
        would block an older request.  Positions are materialised one at a
        time until the tier runs out of room; returns how many were copied.
        """
        if handle not in self._handles:
            raise ConfigurationError("unknown or consumed handle")
        materialised = 0
        for index, pinned in enumerate(handle.pinned_ids):
            if pinned is None:
                continue
            # Re-read the tier each iteration: making room can demote this
            # very handle from cpu to disk mid-loop.
            if handle.tier == "cpu":
                try:
                    self._make_room_on_cpu(1)
                except CapacityError:
                    break
            capacity = (self.cpu_capacity_blocks if handle.tier == "cpu"
                        else self.disk_capacity_blocks)
            room = self._tier_room(handle.tier, capacity)
            if room is not None and room < 1:
                break
            enc_keys = handle.codec.encode(handle.allocator.block_keys(pinned))
            enc_values = handle.codec.encode(
                handle.allocator.block_values(pinned)
            )
            handle.keys[index] = enc_keys
            handle.values[index] = enc_values
            handle.pinned_ids[index] = None
            handle.allocator.decref(pinned)
            materialised += 1
            self.stats.swapped_out += 1
            self.stats.swapped_out_logical_bytes += (
                enc_keys.logical_nbytes + enc_values.logical_nbytes
            )
            self.stats.swapped_out_wire_bytes += (
                enc_keys.wire_nbytes + enc_values.wire_nbytes
            )
        return materialised

    def peek(
        self, handle: SwappedBlocks
    ) -> "tuple[list[np.ndarray], list[np.ndarray]]":
        """Read a parked chain's contents without consuming the handle.

        This is the export side of cross-worker chain migration: the owning
        worker's spilled prefix chain is read (modelled as an NVMe read —
        the caller bills it) and copied into another worker's pool, while
        the local parked copy stays valid.  Stored positions return copies
        of the parked arrays; pinned positions read the live (GPU-resident)
        block through the allocator.

        Returns:
            ``(keys, values)`` lists, one ``(num_layers, h_kv, block_size,
            d_h)`` array per chain position, in chain order.
        """
        if handle not in self._handles:
            raise ConfigurationError("peek of an unknown or consumed handle")
        keys: list[np.ndarray] = []
        values: list[np.ndarray] = []
        for k, v, pinned in zip(handle.keys, handle.values, handle.pinned_ids):
            if pinned is not None:
                keys.append(handle.allocator.block_keys(pinned).copy())
                values.append(handle.allocator.block_values(pinned).copy())
            else:
                # decode() may hand back the parked payload itself (raw /
                # byteplane park the exact array) — copy to keep the handle's
                # contents safe from caller mutation.
                keys.append(k.decode().copy())
                values.append(v.decode().copy())
        return keys, values

    def peek_encoded(
        self, handle: SwappedBlocks
    ) -> "tuple[list[EncodedKV], list[EncodedKV]]":
        """Read a parked chain's *encoded* payloads without decoding.

        The migration path ships the wire form as-is: the owning worker
        reads encoded bytes off its tier and the importer decodes exactly
        once — no decode/re-encode round trip, and the parked copy stays
        valid for a later local restore (which is billed independently by
        its own swap-in).  Stored positions return the parked
        :class:`~repro.llm.kvcodec.EncodedKV` objects themselves (they are
        immutable-by-convention); pinned positions encode the live block
        through the handle's codec on the fly.
        """
        if handle not in self._handles:
            raise ConfigurationError("peek of an unknown or consumed handle")
        keys: list[EncodedKV] = []
        values: list[EncodedKV] = []
        for k, v, pinned in zip(handle.keys, handle.values, handle.pinned_ids):
            if pinned is not None:
                keys.append(handle.codec.encode(
                    handle.allocator.block_keys(pinned)))
                values.append(handle.codec.encode(
                    handle.allocator.block_values(pinned)))
            else:
                keys.append(k)
                values.append(v)
        return keys, values

    def discard(self, handle: SwappedBlocks) -> None:
        """Drop a parked chain without restoring it (abort/teardown path).

        Pinned positions release their extra block reference back to the
        pool; stored copies are simply forgotten.
        """
        if handle in self._handles:
            self._handles.remove(handle)
            for pinned in handle.pinned_ids:
                if pinned is not None:
                    handle.allocator.decref(pinned)
            self.stats.discarded += handle.num_blocks

    def describe(self) -> dict:
        return {
            "cpu_blocks": self.cpu_blocks,
            "disk_blocks": self.disk_blocks,
            "cpu_capacity_blocks": self.cpu_capacity_blocks,
            "disk_capacity_blocks": self.disk_capacity_blocks,
            "codec": self.codec.name,
            "swapped_out": self.stats.swapped_out,
            "swapped_in": self.stats.swapped_in,
            "demoted": self.stats.demoted,
            "discarded": self.stats.discarded,
            "swapped_out_logical_bytes": self.stats.swapped_out_logical_bytes,
            "swapped_out_wire_bytes": self.stats.swapped_out_wire_bytes,
            "swapped_in_logical_bytes": self.stats.swapped_in_logical_bytes,
            "swapped_in_wire_bytes": self.stats.swapped_in_wire_bytes,
            "demoted_logical_bytes": self.stats.demoted_logical_bytes,
            "demoted_wire_bytes": self.stats.demoted_wire_bytes,
        }
