"""Decoder-only transformer with GQA, RoPE, RMSNorm and SwiGLU.

This is the inference substrate the rest of the reproduction plugs into.  It
implements exactly the two phases the paper describes (§2.1):

* :meth:`TransformerLM.prefill` — runs all prompt tokens through every layer,
  fills the :class:`~repro.llm.kvcache.KVCache`, and collects the per-layer
  aggregate attention statistics that the dropping baselines (H2O, SnapKV,
  PyramidKV) need.  Aggregates are computed in query blocks so memory stays
  ``O(s)`` — the NumPy analogue of the paper's FlashAttention assumption.
* :meth:`TransformerLM.decode_step` — processes the last generated token only,
  reading keys/values from the cache, with an optional per-layer *selector*
  callback that restricts attention to a subset of tokens.  That callback is
  how every KVCache policy (PQCache and the baselines) is injected.

The model itself is stateless across sequences — all per-sequence state
lives in the :class:`~repro.llm.kvcache.KVCache` each caller owns — which is
what lets the serving engine (:mod:`repro.serve`) interleave decode steps of
many concurrent requests over one shared ``TransformerLM``.

The model is random-initialised: no pretrained weights exist offline.  Its
purpose is to exercise the true code paths (per-head keys with RoPE, GQA
grouping, caches, latency accounting) and to provide logit-fidelity
comparisons between attention policies, not to produce fluent text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..utils import as_rng, softmax
from .attention import causal_attention, expand_kv_heads
from .config import ModelConfig
from .kvcache import KVCache
from .layers import Linear, RMSNorm, SwiGLU
from .rope import apply_rope

__all__ = [
    "LayerWeights",
    "PrefillAggregates",
    "PrefillResult",
    "Selector",
    "TransformerLM",
]


@dataclass
class LayerWeights:
    """Parameters of one transformer layer."""

    attn_norm: RMSNorm
    q_proj: Linear
    k_proj: Linear
    v_proj: Linear
    o_proj: Linear
    ffn_norm: RMSNorm
    ffn: SwiGLU

    @classmethod
    def init(cls, config: ModelConfig, rng: np.random.Generator) -> "LayerWeights":
        d = config.hidden_dim
        kv_dim = config.num_kv_heads * config.head_dim
        return cls(
            attn_norm=RMSNorm.init(d, rng),
            q_proj=Linear.init(d, d, rng),
            k_proj=Linear.init(d, kv_dim, rng),
            v_proj=Linear.init(d, kv_dim, rng),
            o_proj=Linear.init(d, d, rng),
            ffn_norm=RMSNorm.init(d, rng),
            ffn=SwiGLU.init(d, config.ffn_dim, rng),
        )

    @property
    def num_parameters(self) -> int:
        return sum(
            module.num_parameters
            for module in (
                self.attn_norm, self.q_proj, self.k_proj, self.v_proj,
                self.o_proj, self.ffn_norm, self.ffn,
            )
        )


@dataclass
class PrefillAggregates:
    """Per-layer attention statistics collected during prefilling.

    Attributes:
        accumulated_scores: ``(h_kv, s)`` attention mass each key received,
            summed over all prompt queries and averaged over the query heads
            in each GQA group (used by H2O-style policies).
        window_scores: ``(h_kv, s)`` attention mass each key received from
            the last ``observation_window`` prompt queries (used by
            SnapKV / PyramidKV).
        observation_window: how many trailing queries contributed to
            ``window_scores``.
    """

    accumulated_scores: np.ndarray
    window_scores: np.ndarray
    observation_window: int


@dataclass
class PrefillResult:
    """Everything the decoding phase needs after prefilling."""

    kvcache: KVCache
    last_hidden: np.ndarray                       # (d,)
    logits: np.ndarray                            # (vocab,)
    aggregates: list[PrefillAggregates]           # one per layer
    prompt_queries: list[np.ndarray] | None       # per layer (h, s, d_h) or None
    seq_len: int


# A selector receives (layer_index, query (h, d_h), layer cache) and returns
# either None (attend to everything) or a per-KV-head list of token indices.
Selector = Callable[[int, np.ndarray, "KVCache"], Sequence[np.ndarray] | np.ndarray | None]


class TransformerLM:
    """Random-initialised decoder-only language model.

    Args:
        config: model geometry.
        seed: seed for weight initialisation.
        embedding_overrides: optional mapping ``token_id -> (d,) vector``
            allowing workloads to plant structured embeddings (e.g. giving a
            "needle" token an embedding correlated with the question token)
            while keeping the rest of the vocabulary random.
        qk_coupling: in ``[0, 1]``; interpolates each layer's key projection
            towards its query projection.  A trained LLM's retrieval heads
            align queries with the keys of semantically matching tokens; a
            random-initialised model has no such alignment, so the synthetic
            evaluation harness uses a non-zero coupling to recover the
            "matching tokens attend to each other" behaviour that makes
            planted evidence retrievable (see DESIGN.md substitutions).
        rope_base: RoPE theta base; larger values weaken the positional
            rotation, which the evaluation harness uses so that evidence far
            from the question is not positionally suppressed.
    """

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        embedding_overrides: dict[int, np.ndarray] | None = None,
        qk_coupling: float = 0.0,
        rope_base: float = 10000.0,
    ) -> None:
        if not 0.0 <= qk_coupling <= 1.0:
            raise ConfigurationError("qk_coupling must be in [0, 1]")
        self.config = config
        self.qk_coupling = qk_coupling
        self.rope_base = rope_base
        rng = as_rng(seed)
        d = config.hidden_dim
        scale = 1.0 / np.sqrt(d)
        self.embedding = rng.normal(0.0, scale, size=(config.vocab_size, d))
        if embedding_overrides:
            for token_id, vector in embedding_overrides.items():
                vector = np.asarray(vector, dtype=np.float64).reshape(-1)
                if vector.shape[0] != d:
                    raise DimensionError(
                        f"embedding override for token {token_id} must have dim {d}"
                    )
                self.embedding[int(token_id)] = vector
        self.layers = [LayerWeights.init(config, rng) for _ in range(config.num_layers)]
        if qk_coupling > 0.0:
            self._couple_query_key(qk_coupling)
        self.final_norm = RMSNorm.init(d, rng)
        # Weight tying keeps the classifier consistent with planted embeddings,
        # which is what makes retrieval tasks decodable by argmax.
        self.lm_head = self.embedding

    # ------------------------------------------------------------- helpers

    def _couple_query_key(self, coupling: float) -> None:
        """Blend each KV head's key projection towards the query projection
        of the first query head in its GQA group, preserving the weight scale."""
        cfg = self.config
        mix = np.sqrt(max(1.0 - coupling ** 2, 0.0))
        for layer in self.layers:
            q_w = layer.q_proj.weight.reshape(cfg.num_heads, cfg.head_dim, cfg.hidden_dim)
            k_w = layer.k_proj.weight.reshape(cfg.num_kv_heads, cfg.head_dim, cfg.hidden_dim)
            for kv_head in range(cfg.num_kv_heads):
                q_head = kv_head * cfg.gqa_group_size
                k_w[kv_head] = coupling * q_w[q_head] + mix * k_w[kv_head]
            layer.k_proj.weight = k_w.reshape(cfg.num_kv_heads * cfg.head_dim, cfg.hidden_dim)

    @property
    def num_parameters(self) -> int:
        total = int(self.embedding.size) + self.final_norm.num_parameters
        total += sum(layer.num_parameters for layer in self.layers)
        return total

    def _project_qkv(
        self, layer: LayerWeights, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project normed hidden states into per-head Q, K, V with RoPE."""
        cfg = self.config
        s = hidden.shape[0]
        normed = layer.attn_norm(hidden)
        q = layer.q_proj(normed).reshape(s, cfg.num_heads, cfg.head_dim)
        k = layer.k_proj(normed).reshape(s, cfg.num_kv_heads, cfg.head_dim)
        v = layer.v_proj(normed).reshape(s, cfg.num_kv_heads, cfg.head_dim)
        q = q.transpose(1, 0, 2)  # (h, s, d_h)
        k = k.transpose(1, 0, 2)  # (h_kv, s, d_h)
        v = v.transpose(1, 0, 2)
        q = apply_rope(q, positions, base=self.rope_base)
        k = apply_rope(k, positions, base=self.rope_base)
        return q, k, v

    # ------------------------------------------------------------- prefill

    def prefill(
        self,
        token_ids: Sequence[int],
        observation_window: int = 32,
        collect_queries: bool = False,
        query_block: int = 256,
    ) -> PrefillResult:
        """Run the prompt through the model and fill the KVCache.

        Args:
            token_ids: prompt token ids.
            observation_window: trailing query count used for the SnapKV-style
                window aggregate.
            collect_queries: also return per-layer prompt queries (needed by
                the Oracle policy's offline analysis and by tests).
            query_block: block size for the streaming attention aggregation.

        Returns:
            A :class:`PrefillResult`.
        """
        token_ids = np.asarray(list(token_ids), dtype=np.int64)
        if token_ids.size == 0:
            raise ConfigurationError("prompt must contain at least one token")
        cfg = self.config
        s = int(token_ids.size)
        positions = np.arange(s)
        hidden = self.embedding[token_ids]
        cache = KVCache(cfg.num_layers, cfg.num_kv_heads, cfg.head_dim)
        aggregates: list[PrefillAggregates] = []
        all_queries: list[np.ndarray] | None = [] if collect_queries else None
        group = cfg.gqa_group_size
        window = min(observation_window, s)

        for layer_index, layer in enumerate(self.layers):
            q, k, v = self._project_qkv(layer, hidden, positions)
            cache[layer_index].append(k, v)
            if all_queries is not None:
                all_queries.append(q)

            # Streaming causal attention with O(s * block) memory, while
            # accumulating the column-sum statistics the baselines need.
            k_exp = expand_kv_heads(k, group)
            v_exp = expand_kv_heads(v, group)
            acc = np.zeros((cfg.num_heads, s), dtype=np.float64)
            win = np.zeros((cfg.num_heads, s), dtype=np.float64)
            outputs = np.empty((cfg.num_heads, s, cfg.head_dim), dtype=np.float64)
            for start in range(0, s, query_block):
                stop = min(start + query_block, s)
                q_blk = q[:, start:stop, :]
                logits = np.einsum("hqd,hkd->hqk", q_blk, k_exp) / np.sqrt(cfg.head_dim)
                cols = np.arange(s)[None, :]
                rows = np.arange(start, stop)[:, None]
                logits = np.where(cols > rows, -np.inf, logits)
                scores = softmax(logits, axis=-1)
                outputs[:, start:stop, :] = np.einsum("hqk,hkd->hqd", scores, v_exp)
                acc += scores.sum(axis=1)
                overlap_start = max(start, s - window)
                if overlap_start < stop:
                    win += scores[:, overlap_start - start: stop - start, :].sum(axis=1)

            # Reduce query-head statistics to KV heads (mean over the group),
            # since selection happens at KV-head granularity.
            acc_kv = acc.reshape(cfg.num_kv_heads, group, s).mean(axis=1)
            win_kv = win.reshape(cfg.num_kv_heads, group, s).mean(axis=1)
            aggregates.append(
                PrefillAggregates(
                    accumulated_scores=acc_kv,
                    window_scores=win_kv,
                    observation_window=window,
                )
            )

            attn_out = outputs.transpose(1, 0, 2).reshape(s, cfg.hidden_dim)
            hidden = hidden + layer.o_proj(attn_out)
            hidden = hidden + layer.ffn(layer.ffn_norm(hidden))

        final = self.final_norm(hidden[-1])
        logits = self.lm_head @ final
        return PrefillResult(
            kvcache=cache,
            last_hidden=hidden[-1],
            logits=logits,
            aggregates=aggregates,
            prompt_queries=all_queries,
            seq_len=s,
        )

    # -------------------------------------------------------------- decode

    def decode_step(
        self,
        token_id: int,
        cache: KVCache,
        selector: Selector | None = None,
    ) -> np.ndarray:
        """Process one generated token and return next-token logits.

        The token's key/value are appended to the cache *before* attention so
        the new token can always attend to itself, matching standard
        implementations.

        Args:
            token_id: id of the last generated token.
            cache: KVCache filled by :meth:`prefill` (and previous steps).
            selector: optional per-layer token selector implementing
                selective attention.  ``None`` reproduces full attention.

        Returns:
            ``(vocab,)`` next-token logits.
        """
        cfg = self.config
        position = np.asarray([cache.seq_len])
        hidden = self.embedding[int(token_id)][None, :]  # (1, d)
        group = cfg.gqa_group_size

        for layer_index, layer in enumerate(self.layers):
            q, k, v = self._project_qkv(layer, hidden, position)
            layer_cache = cache[layer_index]
            layer_cache.append(k[:, 0, :], v[:, 0, :])
            query = q[:, 0, :]  # (h, d_h)

            selected = None
            if selector is not None:
                selected = selector(layer_index, query, cache)

            keys = layer_cache.keys
            values = layer_cache.values
            seq = keys.shape[1]
            if selected is None:
                per_head = [np.arange(seq, dtype=np.int64)] * cfg.num_kv_heads
            elif isinstance(selected, (list, tuple)):
                per_head = [np.asarray(idx, dtype=np.int64) for idx in selected]
            else:
                per_head = [np.asarray(selected, dtype=np.int64)] * cfg.num_kv_heads

            attn_out = np.zeros((cfg.num_heads, cfg.head_dim), dtype=np.float64)
            for kv_head, indices in enumerate(per_head):
                if indices.size == 0:
                    continue
                k_sel = keys[kv_head, indices, :]
                v_sel = values[kv_head, indices, :]
                for g in range(group):
                    q_head = kv_head * group + g
                    logits = (k_sel @ query[q_head]) / np.sqrt(cfg.head_dim)
                    weights = softmax(logits)
                    attn_out[q_head] = weights @ v_sel

            hidden = hidden + layer.o_proj(attn_out.reshape(1, cfg.hidden_dim))
            hidden = hidden + layer.ffn(layer.ffn_norm(hidden))

        final = self.final_norm(hidden[0])
        return self.lm_head @ final
