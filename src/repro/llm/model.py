"""Decoder-only transformer with GQA, RoPE, RMSNorm and SwiGLU.

This is the inference substrate the rest of the reproduction plugs into.  It
implements exactly the two phases the paper describes (§2.1):

* :meth:`TransformerLM.prefill` — runs all prompt tokens through every layer,
  fills the :class:`~repro.llm.kvcache.KVCache`, and collects the per-layer
  aggregate attention statistics that the dropping baselines (H2O, SnapKV,
  PyramidKV) need.  Since the chunked-prefill redesign this is a thin loop
  over :meth:`TransformerLM.prefill_chunk`: callers that need to interleave a
  long prompt with other work (the serving engine's chunked-prefill
  scheduler) drive :class:`PrefillState` directly via
  :meth:`TransformerLM.begin_prefill` / :meth:`TransformerLM.prefill_chunk` /
  :meth:`TransformerLM.finish_prefill`.
* :meth:`TransformerLM.decode_step` — processes the last generated token only,
  reading keys/values from the cache, with an optional per-layer *selector*
  callback that restricts attention to a subset of tokens.  That callback is
  how every KVCache policy (PQCache and the baselines) is injected.

The model itself is stateless across sequences — all per-sequence state
lives in the :class:`~repro.llm.kvcache.KVCache` each caller owns (and, for a
prompt that is still being prefilled, in its :class:`PrefillState`) — which is
what lets the serving engine (:mod:`repro.serve`) interleave prefill chunks
and decode steps of many concurrent requests over one shared
``TransformerLM``.

Chunk-size invariance
---------------------
Chunked prefilling is **bitwise identical** to single-shot prefilling: any
partition of the prompt into chunks produces the same KVCache contents,
aggregates and logits, bit for bit.  Every floating-point reduction in the
prefill path is therefore written to be independent of how rows are batched:

* dense projections run on a fixed global row-block grid
  (:data:`PREFILL_ROW_BLOCK` rows, zero-padded), because BLAS ``matmul``
  results for one row change with the operand's row count;
* attention logits and weighted sums use non-optimized ``einsum``
  contractions, whose per-element accumulation over the contracted axis does
  not depend on how the other axes are sliced;
* softmax denominators and the accumulated/windowed score statistics use
  strictly sequential reductions (``np.add.accumulate``), which are invariant
  to trailing masked-out zeros and to chunk boundaries (unlike NumPy's
  pairwise ``sum``).

Row-wise operations (RMSNorm, SiLU, RoPE, residual adds) only reduce along
the fixed feature axis and are invariant as-is.

Decode rounds get the same treatment at request granularity: decode-time
dense ops run on fixed ``(DECODE_ROW_BLOCK, d)`` zero-padded operands (see
:func:`_decode_rows`), so a request's decode step is bitwise identical
whether it runs alone through :meth:`TransformerLM.decode_step` or packed
with other requests into one :meth:`TransformerLM.decode_step_batch` round.

The model is random-initialised: no pretrained weights exist offline.  Its
purpose is to exercise the true code paths (per-head keys with RoPE, GQA
grouping, caches, latency accounting) and to provide logit-fidelity
comparisons between attention policies, not to produce fluent text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..utils import as_rng, softmax
from .attention import decode_attention, expand_kv_heads
from .config import ModelConfig
from .kvcache import KVCache
from .layers import Linear, RMSNorm, SwiGLU
from .rope import apply_rope

__all__ = [
    "BatchSelector",
    "DECODE_ROW_BLOCK",
    "LayerWeights",
    "PrefillAggregates",
    "PrefillResult",
    "PrefillState",
    "PREFILL_ROW_BLOCK",
    "Selector",
    "TransformerLM",
]

#: Row-block size of the fixed global grid used for dense projections during
#: prefilling.  Blocks are aligned to absolute token positions and zero-padded
#: to exactly this many rows, so a token's projection is computed from an
#: identically-shaped ``matmul`` regardless of chunk boundaries.
PREFILL_ROW_BLOCK = 256

#: Row-block size of the fixed-shape dense operands used during decoding.
#: Every decode-time projection/FFN ``matmul`` runs on exactly this many rows
#: (zero-padded), whether the engine decodes requests one at a time or fuses
#: a whole batch into one round — see :func:`_decode_rows`.
DECODE_ROW_BLOCK = 8


def _blocked_rows(fn, rows: np.ndarray, global_start: int) -> np.ndarray:
    """Apply a row-wise dense op on the fixed global row-block grid.

    ``fn`` must map ``(PREFILL_ROW_BLOCK, d_in)`` to
    ``(PREFILL_ROW_BLOCK, d_out)`` row-independently (a :class:`Linear` or
    :class:`SwiGLU`).  Rows are placed at ``global_start + i`` on the grid and
    missing grid rows are zero-padded, so each row's result is bitwise
    independent of which other rows happen to share its chunk.
    """
    block = PREFILL_ROW_BLOCK
    s = rows.shape[0]
    pieces: list[np.ndarray] = []
    pos = 0
    while pos < s:
        g = global_start + pos
        offset = g % block
        take = min(block - offset, s - pos)
        if offset == 0 and take == block:
            pieces.append(fn(rows[pos: pos + block]))
        else:
            padded = np.zeros((block, rows.shape[1]), dtype=np.float64)
            padded[offset: offset + take] = rows[pos: pos + take]
            pieces.append(fn(padded)[offset: offset + take])
        pos += take
    if len(pieces) == 1:
        return pieces[0]
    return np.concatenate(pieces, axis=0)


def _decode_rows(fn, rows: np.ndarray) -> np.ndarray:
    """Apply a row-wise dense op on fixed ``(DECODE_ROW_BLOCK, d)`` operands.

    BLAS ``matmul`` results for one row change with the operand's row count
    (the reason prefill projections run on the :data:`PREFILL_ROW_BLOCK`
    grid), but within a *fixed* operand shape each row's result is bitwise
    independent of both its offset in the block and the other rows' contents
    — GEMM computes every output row from its own input row only, with a
    per-element accumulation order fixed by the operand shapes.  The decode
    paths rely on exactly that: the per-request loop runs each token's row
    alone in a zero-padded block, the fused round packs up to
    :data:`DECODE_ROW_BLOCK` requests' rows into the same shape (streaming
    each weight matrix once per round instead of once per request), and both
    see identical per-row results.
    """
    block = DECODE_ROW_BLOCK
    b = rows.shape[0]
    pieces: list[np.ndarray] = []
    for pos in range(0, b, block):
        take = min(block, b - pos)
        if take == block:
            pieces.append(fn(rows[pos: pos + block]))
        else:
            padded = np.zeros((block, rows.shape[1]), dtype=np.float64)
            padded[:take] = rows[pos: pos + take]
            pieces.append(fn(padded)[:take])
    if len(pieces) == 1:
        return pieces[0]
    return np.concatenate(pieces, axis=0)


def _accumulate_rows(
    totals: np.ndarray,
    scores: np.ndarray,
    capture_rows: "list[tuple[int, int]] | None" = None,
) -> "list[np.ndarray] | None":
    """Fold per-query score rows into running per-key totals sequentially.

    ``totals`` is ``(h, >=width)`` and ``scores`` is ``(h, q, width)``; the
    update is the strictly sequential scan
    ``totals = (...((totals + s_0) + s_1)... + s_{q-1})``, so the result does
    not depend on how queries were grouped into blocks or chunks (NumPy's
    pairwise ``sum(axis=1)`` would).

    ``capture_rows`` requests mid-scan snapshots: each ``(j, width_j)`` entry
    yields a copy of the totals *after folding the first ``j`` score rows*,
    restricted to the first ``width_j`` keys.  Because the scan is strictly
    sequential, such a snapshot is bitwise identical to the totals a prefill
    that *stopped* after those queries would hold — which is what lets the
    prefix cache resume a prefill mid-prompt without perturbing a single bit
    of the accumulated aggregates.
    """
    width = scores.shape[2]
    stacked = np.concatenate([totals[:, None, :width], scores], axis=1)
    scan = np.add.accumulate(stacked, axis=1)
    totals[:, :width] = scan[:, -1, :]
    if not capture_rows:
        return None
    return [scan[:, j, :w].copy() for j, w in capture_rows]


@dataclass
class LayerWeights:
    """Parameters of one transformer layer."""

    attn_norm: RMSNorm
    q_proj: Linear
    k_proj: Linear
    v_proj: Linear
    o_proj: Linear
    ffn_norm: RMSNorm
    ffn: SwiGLU

    @classmethod
    def init(cls, config: ModelConfig, rng: np.random.Generator) -> "LayerWeights":
        d = config.hidden_dim
        kv_dim = config.num_kv_heads * config.head_dim
        return cls(
            attn_norm=RMSNorm.init(d, rng),
            q_proj=Linear.init(d, d, rng),
            k_proj=Linear.init(d, kv_dim, rng),
            v_proj=Linear.init(d, kv_dim, rng),
            o_proj=Linear.init(d, d, rng),
            ffn_norm=RMSNorm.init(d, rng),
            ffn=SwiGLU.init(d, config.ffn_dim, rng),
        )

    @property
    def num_parameters(self) -> int:
        return sum(
            module.num_parameters
            for module in (
                self.attn_norm, self.q_proj, self.k_proj, self.v_proj,
                self.o_proj, self.ffn_norm, self.ffn,
            )
        )


@dataclass
class PrefillAggregates:
    """Per-layer attention statistics collected during prefilling.

    Attributes:
        accumulated_scores: ``(h_kv, s)`` attention mass each key received,
            summed over all prompt queries and averaged over the query heads
            in each GQA group (used by H2O-style policies).
        window_scores: ``(h_kv, s)`` attention mass each key received from
            the last ``observation_window`` prompt queries (used by
            SnapKV / PyramidKV).
        observation_window: how many trailing queries contributed to
            ``window_scores``.
    """

    accumulated_scores: np.ndarray
    window_scores: np.ndarray
    observation_window: int


@dataclass
class PrefillResult:
    """Everything the decoding phase needs after prefilling.

    ``cached_prefix_len`` is non-zero for prefills resumed from a cached
    prefix; when the resume was performed *without* an accumulated-score
    snapshot (``prefix_acc_scores``), the ``aggregates`` cover only the
    queries the model actually processed — callers that consume aggregates
    (the dropping baselines) must resume with a snapshot (the serving engine
    enforces this via ``KVCachePolicy.needs_prefill_aggregates``).

    ``acc_snapshots`` maps each requested snapshot boundary ``L`` to the
    per-layer ``(num_heads, L)`` accumulated-score state after the first
    ``L`` prompt queries — the payload a future resumed prefill needs.
    """

    kvcache: KVCache
    last_hidden: np.ndarray                       # (d,)
    logits: np.ndarray                            # (vocab,)
    aggregates: list[PrefillAggregates]           # one per layer
    prompt_queries: list[np.ndarray] | None       # per layer (h, s, d_h) or None
    seq_len: int
    cached_prefix_len: int = 0
    acc_snapshots: dict = field(default_factory=dict)


@dataclass
class PrefillState:
    """Resumable state of a (possibly chunked) prefill in progress.

    Created by :meth:`TransformerLM.begin_prefill`; advanced by
    :meth:`TransformerLM.prefill_chunk`; turned into a :class:`PrefillResult`
    by :meth:`TransformerLM.finish_prefill`.  The serving engine keeps one of
    these per ``PREFILLING`` request so a long prompt can be processed a few
    hundred tokens at a time, interleaved with other requests' work.

    Attributes:
        token_ids: the full prompt (known upfront — chunking only changes
            *when* tokens are processed, not what the prompt is).
        observation_window: effective trailing-query window
            (``min(requested, seq_len)``) for the SnapKV-style aggregate.
        query_block: query-block size of the streaming attention loop.
        kvcache: cache being filled; after chunk ``i`` it holds exactly the
            tokens processed so far, for every layer.
        next_pos: index of the first unprocessed token.
        acc_scores: per layer ``(num_heads, seq_len)`` running column sums of
            attention mass (sequentially accumulated, see module docstring).
        window_scores: per layer ``(num_heads, seq_len)`` running column sums
            restricted to the last ``observation_window`` queries.
        chunk_queries: per layer list of per-chunk query tensors when query
            collection was requested, else ``None``.
        prefix_len: tokens attached from a cached prefix — the model never
            re-processes them (``next_pos`` starts there and the kvcache
            already holds their keys/values for every layer).
        acc_snapshot_boundaries: sorted token boundaries at which the running
            accumulated-score state should be captured into
            ``acc_snapshots`` (the prefix cache's resume payload).
        acc_snapshots: boundary → per-layer ``(num_heads, L)`` snapshots.
        last_hidden: final hidden state, available once complete.
        logits: next-token logits of the last prompt token, once complete.
    """

    token_ids: np.ndarray
    observation_window: int
    query_block: int
    kvcache: KVCache
    acc_scores: list[np.ndarray]
    window_scores: list[np.ndarray]
    chunk_queries: list[list[np.ndarray]] | None
    next_pos: int = 0
    prefix_len: int = 0
    acc_snapshot_boundaries: tuple = ()
    acc_snapshots: dict = field(default_factory=dict)
    last_hidden: np.ndarray | None = None
    logits: np.ndarray | None = None

    @property
    def seq_len(self) -> int:
        """Total prompt length."""
        return int(self.token_ids.size)

    @property
    def num_processed(self) -> int:
        """Tokens prefilled so far."""
        return self.next_pos

    @property
    def remaining_tokens(self) -> int:
        """Tokens still to prefill."""
        return self.seq_len - self.next_pos

    @property
    def is_complete(self) -> bool:
        return self.next_pos >= self.seq_len


# A selector receives (layer_index, query (h, d_h), layer cache) and returns
# either None (attend to everything) or a per-KV-head list of token indices.
Selector = Callable[[int, np.ndarray, "KVCache"], Sequence[np.ndarray] | np.ndarray | None]

# A batch selector receives (layer_index, per-request queries, per-request
# caches) and returns one selection per request, each in the same format a
# plain :data:`Selector` would return for that request.
BatchSelector = Callable[
    [int, "list[np.ndarray]", "list[KVCache]"],
    "list[Sequence[np.ndarray] | np.ndarray | None]",
]


class TransformerLM:
    """Random-initialised decoder-only language model.

    Args:
        config: model geometry.
        seed: seed for weight initialisation.
        embedding_overrides: optional mapping ``token_id -> (d,) vector``
            allowing workloads to plant structured embeddings (e.g. giving a
            "needle" token an embedding correlated with the question token)
            while keeping the rest of the vocabulary random.
        qk_coupling: in ``[0, 1]``; interpolates each layer's key projection
            towards its query projection.  A trained LLM's retrieval heads
            align queries with the keys of semantically matching tokens; a
            random-initialised model has no such alignment, so the synthetic
            evaluation harness uses a non-zero coupling to recover the
            "matching tokens attend to each other" behaviour that makes
            planted evidence retrievable (see DESIGN.md substitutions).
        rope_base: RoPE theta base; larger values weaken the positional
            rotation, which the evaluation harness uses so that evidence far
            from the question is not positionally suppressed.
    """

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        embedding_overrides: dict[int, np.ndarray] | None = None,
        qk_coupling: float = 0.0,
        rope_base: float = 10000.0,
    ) -> None:
        if not 0.0 <= qk_coupling <= 1.0:
            raise ConfigurationError("qk_coupling must be in [0, 1]")
        self.config = config
        self.qk_coupling = qk_coupling
        self.rope_base = rope_base
        rng = as_rng(seed)
        d = config.hidden_dim
        scale = 1.0 / np.sqrt(d)
        self.embedding = rng.normal(0.0, scale, size=(config.vocab_size, d))
        if embedding_overrides:
            for token_id, vector in embedding_overrides.items():
                vector = np.asarray(vector, dtype=np.float64).reshape(-1)
                if vector.shape[0] != d:
                    raise DimensionError(
                        f"embedding override for token {token_id} must have dim {d}"
                    )
                self.embedding[int(token_id)] = vector
        self.layers = [LayerWeights.init(config, rng) for _ in range(config.num_layers)]
        if qk_coupling > 0.0:
            self._couple_query_key(qk_coupling)
        self.final_norm = RMSNorm.init(d, rng)
        # Weight tying keeps the classifier consistent with planted embeddings,
        # which is what makes retrieval tasks decodable by argmax.
        self.lm_head = self.embedding

    # ------------------------------------------------------------- helpers

    def _couple_query_key(self, coupling: float) -> None:
        """Blend each KV head's key projection towards the query projection
        of the first query head in its GQA group, preserving the weight scale."""
        cfg = self.config
        mix = np.sqrt(max(1.0 - coupling ** 2, 0.0))
        for layer in self.layers:
            q_w = layer.q_proj.weight.reshape(cfg.num_heads, cfg.head_dim, cfg.hidden_dim)
            k_w = layer.k_proj.weight.reshape(cfg.num_kv_heads, cfg.head_dim, cfg.hidden_dim)
            for kv_head in range(cfg.num_kv_heads):
                q_head = kv_head * cfg.gqa_group_size
                k_w[kv_head] = coupling * q_w[q_head] + mix * k_w[kv_head]
            layer.k_proj.weight = k_w.reshape(cfg.num_kv_heads * cfg.head_dim, cfg.hidden_dim)

    @property
    def num_parameters(self) -> int:
        total = int(self.embedding.size) + self.final_norm.num_parameters
        total += sum(layer.num_parameters for layer in self.layers)
        return total

    def _decode_project_qkv(
        self,
        layer: LayerWeights,
        hidden_rows: np.ndarray,
        positions: "Sequence[np.ndarray]",
    ) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray]]":
        """Per-request Q/K/V for a decode round, on the fixed decode block.

        ``hidden_rows`` stacks one ``(d,)`` last-token hidden state per
        request; projections run through :func:`_decode_rows`, so a row's
        results are bitwise identical whether it is projected alone (the
        per-request loop) or alongside the rest of a fused batch.  RMSNorm
        and RoPE reduce along per-row axes only and are batch-invariant
        as-is.

        Returns one ``(q, k, v)`` triple per request, each head-major with a
        single token: ``q`` is ``(num_heads, 1, head_dim)``, ``k``/``v`` are
        ``(num_kv_heads, 1, head_dim)``.
        """
        cfg = self.config
        normed = layer.attn_norm(hidden_rows)
        q_all = _decode_rows(layer.q_proj, normed)
        k_all = _decode_rows(layer.k_proj, normed)
        v_all = _decode_rows(layer.v_proj, normed)
        triples = []
        for i, position in enumerate(positions):
            q = q_all[i].reshape(1, cfg.num_heads, cfg.head_dim).transpose(1, 0, 2)
            k = k_all[i].reshape(1, cfg.num_kv_heads, cfg.head_dim).transpose(1, 0, 2)
            v = v_all[i].reshape(1, cfg.num_kv_heads, cfg.head_dim).transpose(1, 0, 2)
            q = apply_rope(q, position, base=self.rope_base)
            k = apply_rope(k, position, base=self.rope_base)
            triples.append((q, k, v))
        return triples

    # ------------------------------------------------------------- prefill

    def begin_prefill(
        self,
        token_ids: Sequence[int],
        observation_window: int = 32,
        collect_queries: bool = False,
        query_block: int = 256,
        kvcache: KVCache | None = None,
        prefix_len: int = 0,
        prefix_acc_scores: "list[np.ndarray] | None" = None,
        acc_snapshot_boundaries: "Sequence[int] | None" = None,
    ) -> PrefillState:
        """Start a (possibly chunked) prefill of ``token_ids``.

        Args:
            token_ids: prompt token ids.
            observation_window: trailing query count used for the SnapKV-style
                window aggregate.
            collect_queries: also collect per-layer prompt queries (needed by
                the Oracle policy's offline analysis and by tests).
            query_block: block size for the streaming attention aggregation.
            kvcache: cache to fill; defaults to a fresh monolithic
                :class:`~repro.llm.kvcache.KVCache`.  The serving engine
                passes a :class:`~repro.llm.kvcache.PagedKVCache` here.
            prefix_len: resume-from-offset — the first ``prefix_len`` prompt
                tokens are already present in ``kvcache`` (a shared-prefix
                hit) and are *not* re-processed.  Requires ``kvcache``.
            prefix_acc_scores: per-layer ``(num_heads, prefix_len)``
                accumulated-score snapshots captured by the prefill that
                produced the prefix; when given, the resumed aggregates are
                bitwise identical to a cold prefill's.  Without it the
                ``acc`` aggregates only cover the resumed queries.
            acc_snapshot_boundaries: token boundaries (each in
                ``(prefix_len, seq_len]``) at which to capture the running
                accumulated-score state for future resumes.

        Returns:
            A fresh :class:`PrefillState` with ``prefix_len`` tokens already
            accounted as processed.
        """
        token_ids = np.asarray(list(token_ids), dtype=np.int64)
        if token_ids.size == 0:
            raise ConfigurationError("prompt must contain at least one token")
        if observation_window <= 0:
            raise ConfigurationError("observation_window must be positive")
        if query_block <= 0:
            raise ConfigurationError("query_block must be positive")
        cfg = self.config
        s = int(token_ids.size)
        prefix_len = int(prefix_len)
        if prefix_len < 0:
            raise ConfigurationError("prefix_len must be >= 0")
        if prefix_len >= s:
            raise ConfigurationError(
                f"prefix_len ({prefix_len}) must leave at least one prompt "
                f"token to process (prompt has {s})"
            )
        if prefix_len > 0:
            if kvcache is None:
                raise ConfigurationError("prefix_len > 0 requires a kvcache")
            if collect_queries:
                raise ConfigurationError(
                    "collect_queries is incompatible with prefix resume: the "
                    "cached prefix's queries were never materialised"
                )
            if len(kvcache) != prefix_len:
                raise ConfigurationError(
                    f"kvcache holds {len(kvcache)} tokens, prefix_len="
                    f"{prefix_len} expected"
                )
        elif kvcache is not None and len(kvcache) != 0:
            raise ConfigurationError("a fresh prefill requires an empty kvcache")
        if kvcache is None:
            kvcache = KVCache(
                cfg.num_layers, cfg.num_kv_heads, cfg.head_dim, cfg.dtype_bytes
            )

        acc_scores = [np.zeros((cfg.num_heads, s)) for _ in range(cfg.num_layers)]
        if prefix_acc_scores is not None:
            if prefix_len == 0:
                raise ConfigurationError(
                    "prefix_acc_scores requires a non-zero prefix_len"
                )
            if len(prefix_acc_scores) != cfg.num_layers:
                raise ConfigurationError(
                    f"prefix_acc_scores must have {cfg.num_layers} per-layer "
                    f"entries, got {len(prefix_acc_scores)}"
                )
            for layer_index, snapshot in enumerate(prefix_acc_scores):
                snapshot = np.asarray(snapshot, dtype=np.float64)
                if snapshot.shape != (cfg.num_heads, prefix_len):
                    raise DimensionError(
                        f"prefix_acc_scores[{layer_index}] must have shape "
                        f"({cfg.num_heads}, {prefix_len}), got {snapshot.shape}"
                    )
                acc_scores[layer_index][:, :prefix_len] = snapshot

        boundaries: tuple[int, ...] = ()
        if acc_snapshot_boundaries:
            boundaries = tuple(sorted({int(b) for b in acc_snapshot_boundaries}))
            for boundary in boundaries:
                if not prefix_len < boundary <= s:
                    raise ConfigurationError(
                        f"acc snapshot boundary {boundary} outside "
                        f"({prefix_len}, {s}]"
                    )

        return PrefillState(
            token_ids=token_ids,
            observation_window=min(observation_window, s),
            query_block=int(query_block),
            kvcache=kvcache,
            acc_scores=acc_scores,
            window_scores=[
                np.zeros((cfg.num_heads, s)) for _ in range(cfg.num_layers)
            ],
            chunk_queries=(
                [[] for _ in range(cfg.num_layers)] if collect_queries else None
            ),
            next_pos=prefix_len,
            prefix_len=prefix_len,
            acc_snapshot_boundaries=boundaries,
        )

    def prefill_chunk(self, state: PrefillState, num_tokens: int) -> int:
        """Process the next ``num_tokens`` prompt tokens through every layer.

        Appends the chunk's keys/values to the state's KVCache, accumulates
        the attention aggregates, and — once the last chunk completes —
        computes the final hidden state and next-token logits.  Results are
        bitwise independent of the chunking (see module docstring).

        Args:
            state: prefill state from :meth:`begin_prefill`.
            num_tokens: chunk-size budget; the chunk is clipped to the
                remaining prompt.

        Returns:
            The number of tokens actually processed.
        """
        if state.is_complete:
            raise ConfigurationError("prefill is already complete")
        if num_tokens <= 0:
            raise ConfigurationError("num_tokens must be positive")
        cfg = self.config
        start = state.next_pos
        stop = min(start + num_tokens, state.seq_len)
        t = stop - start
        group = cfg.gqa_group_size
        positions = np.arange(start, stop)
        hidden = self.embedding[state.token_ids[start:stop]]
        # First prompt query that counts towards the windowed aggregate.
        window_start = state.seq_len - state.observation_window

        for layer_index, layer in enumerate(self.layers):
            normed = layer.attn_norm(hidden)
            q = _blocked_rows(layer.q_proj, normed, start)
            k = _blocked_rows(layer.k_proj, normed, start)
            v = _blocked_rows(layer.v_proj, normed, start)
            q = q.reshape(t, cfg.num_heads, cfg.head_dim).transpose(1, 0, 2)
            k = k.reshape(t, cfg.num_kv_heads, cfg.head_dim).transpose(1, 0, 2)
            v = v.reshape(t, cfg.num_kv_heads, cfg.head_dim).transpose(1, 0, 2)
            q = apply_rope(q, positions, base=self.rope_base)
            k = apply_rope(k, positions, base=self.rope_base)
            layer_cache = state.kvcache[layer_index]
            layer_cache.append(k, v)
            if state.chunk_queries is not None:
                state.chunk_queries[layer_index].append(q)

            # Streaming causal attention of the chunk's queries over every
            # key cached so far (earlier chunks + this one), with O(t * block)
            # extra memory, while accumulating the column-sum statistics the
            # baselines need.  Each query block attends only keys up to its
            # own last row — later keys are causally masked for every query
            # in the block, and all reductions here are width-stable, so
            # skipping them is bitwise-free (and halves the work).
            k_exp = expand_kv_heads(layer_cache.keys, group)
            v_exp = expand_kv_heads(layer_cache.values, group)
            acc = state.acc_scores[layer_index]
            win = state.window_scores[layer_index]
            outputs = np.empty((cfg.num_heads, t, cfg.head_dim))
            for b0 in range(0, t, state.query_block):
                b1 = min(b0 + state.query_block, t)
                width = start + b1
                q_blk = q[:, b0:b1, :]
                logits = np.einsum(
                    "hqd,hkd->hqk", q_blk, k_exp[:, :width, :]
                ) / np.sqrt(cfg.head_dim)
                cols = np.arange(width)[None, :]
                rows = np.arange(start + b0, start + b1)[:, None]
                logits = np.where(cols > rows, -np.inf, logits)
                # Width-stable softmax: the max ignores the -inf mask and the
                # denominator is a strictly sequential scan, so a row's
                # weights do not depend on how many masked future keys the
                # block happens to carry.
                peak = np.max(logits, axis=-1, keepdims=True)
                scores = np.exp(logits - peak)
                scores /= np.add.accumulate(scores, axis=-1)[..., -1:]
                outputs[:, b0:b1, :] = np.einsum(
                    "hqk,hkd->hqd", scores, v_exp[:, :width, :]
                )
                # Accumulated-score snapshot boundaries that fall inside this
                # query block are captured mid-scan: the totals after query
                # L-1, restricted to keys [0, L), are exactly what a prefill
                # resumed at L needs as its accumulated-score init.
                captures = [
                    (boundary - (start + b0), boundary)
                    for boundary in state.acc_snapshot_boundaries
                    if start + b0 < boundary <= start + b1
                ]
                captured = _accumulate_rows(acc, scores, captures or None)
                if captured:
                    for (_, boundary), snapshot in zip(captures, captured):
                        sink = state.acc_snapshots.setdefault(
                            boundary, [None] * cfg.num_layers
                        )
                        sink[layer_index] = snapshot
                w0 = max(start + b0, window_start)
                if w0 < start + b1:
                    _accumulate_rows(win, scores[:, w0 - (start + b0):, :])

            attn_out = outputs.transpose(1, 0, 2).reshape(t, cfg.hidden_dim)
            hidden = hidden + _blocked_rows(layer.o_proj, attn_out, start)
            hidden = hidden + _blocked_rows(
                layer.ffn, layer.ffn_norm(hidden), start
            )

        state.next_pos = stop
        if state.is_complete:
            state.last_hidden = hidden[-1]
            final = self.final_norm(hidden[-1])
            state.logits = self.lm_head @ final
        return t

    def finish_prefill(self, state: PrefillState) -> PrefillResult:
        """Package a completed :class:`PrefillState` as a :class:`PrefillResult`."""
        if not state.is_complete:
            raise ConfigurationError(
                f"prefill incomplete: {state.num_processed}/{state.seq_len} "
                "tokens processed"
            )
        cfg = self.config
        s = state.seq_len
        group = cfg.gqa_group_size
        aggregates: list[PrefillAggregates] = []
        for layer_index in range(cfg.num_layers):
            # Reduce query-head statistics to KV heads (mean over the group),
            # since selection happens at KV-head granularity.
            acc = state.acc_scores[layer_index]
            win = state.window_scores[layer_index]
            aggregates.append(
                PrefillAggregates(
                    accumulated_scores=acc.reshape(cfg.num_kv_heads, group, s).mean(axis=1),
                    window_scores=win.reshape(cfg.num_kv_heads, group, s).mean(axis=1),
                    observation_window=state.observation_window,
                )
            )
        all_queries: list[np.ndarray] | None = None
        if state.chunk_queries is not None:
            all_queries = [
                chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=1)
                for chunks in state.chunk_queries
            ]
        assert state.last_hidden is not None and state.logits is not None
        return PrefillResult(
            kvcache=state.kvcache,
            last_hidden=state.last_hidden,
            logits=state.logits,
            aggregates=aggregates,
            prompt_queries=all_queries,
            seq_len=s,
            cached_prefix_len=state.prefix_len,
            acc_snapshots=dict(state.acc_snapshots),
        )

    def prefill(
        self,
        token_ids: Sequence[int],
        observation_window: int = 32,
        collect_queries: bool = False,
        query_block: int = 256,
        chunk_size: int | None = None,
    ) -> PrefillResult:
        """Run the prompt through the model and fill the KVCache.

        A thin loop over :meth:`prefill_chunk`; the result is bitwise
        identical for every ``chunk_size`` (``None`` processes the whole
        prompt in one chunk).

        Args:
            token_ids: prompt token ids.
            observation_window: trailing query count used for the SnapKV-style
                window aggregate.
            collect_queries: also return per-layer prompt queries (needed by
                the Oracle policy's offline analysis and by tests).
            query_block: block size for the streaming attention aggregation.
            chunk_size: tokens per prefill chunk.

        Returns:
            A :class:`PrefillResult`.
        """
        state = self.begin_prefill(
            token_ids,
            observation_window=observation_window,
            collect_queries=collect_queries,
            query_block=query_block,
        )
        step = state.seq_len if chunk_size is None else int(chunk_size)
        while not state.is_complete:
            self.prefill_chunk(state, step)
        return self.finish_prefill(state)

    # -------------------------------------------------------------- decode

    def decode_step(
        self,
        token_id: int,
        cache: KVCache,
        selector: Selector | None = None,
    ) -> np.ndarray:
        """Process one generated token and return next-token logits.

        The token's key/value are appended to the cache *before* attention so
        the new token can always attend to itself, matching standard
        implementations.

        Args:
            token_id: id of the last generated token.
            cache: KVCache filled by :meth:`prefill` (and previous steps).
            selector: optional per-layer token selector implementing
                selective attention.  ``None`` reproduces full attention.

        Returns:
            ``(vocab,)`` next-token logits.
        """
        cfg = self.config
        position = np.asarray([cache.seq_len])
        hidden = self.embedding[int(token_id)][None, :]  # (1, d)

        for layer_index, layer in enumerate(self.layers):
            ((q, k, v),) = self._decode_project_qkv(layer, hidden, [position])
            layer_cache = cache[layer_index]
            layer_cache.append(k[:, 0, :], v[:, 0, :])
            query = q[:, 0, :]  # (h, d_h)

            selected = None
            if selector is not None:
                selected = selector(layer_index, query, cache)

            attn_out = decode_attention(
                query, layer_cache.keys, layer_cache.values, selected
            )

            hidden = hidden + _decode_rows(
                layer.o_proj, attn_out.reshape(1, cfg.hidden_dim)
            )
            hidden = hidden + _decode_rows(layer.ffn, layer.ffn_norm(hidden))

        final = self.final_norm(hidden[0])
        return self.lm_head @ final

    def decode_step_batch(
        self,
        token_ids: Sequence[int],
        caches: "Sequence[KVCache]",
        selector: BatchSelector | None = None,
        timings: "dict[str, float] | None" = None,
    ) -> "list[np.ndarray]":
        """Process one generated token for *each* request in one fused round.

        Bitwise identical to calling :meth:`decode_step` once per request, in
        order: every dense op (projections, o_proj, FFN) packs the requests'
        rows into the same fixed-shape :func:`_decode_rows` blocks the
        per-request path pads with zeros — each row's result is independent
        of its block-mates — norms/RoPE/lm_head reduce along per-request axes
        only, and attention extends
        :func:`~repro.llm.attention.decode_attention`'s length-grouping across
        ``(request, kv_head)`` entries — the non-optimized einsum contraction
        makes each entry's result independent of which other entries share its
        group.  The win is weight reuse: one padded GEMM per dense op per
        layer streams each weight matrix once per *round* instead of once per
        request, plus one einsum per distinct selection length per layer
        instead of one per request per layer.

        Args:
            token_ids: last generated token id of each request.
            caches: one KVCache per request (appended in request order).
            selector: optional batch selector; receives all requests' queries
                and caches for a layer at once and returns one per-request
                selection (each in :data:`Selector` return format).
            timings: optional accumulator for host wall-clock stage seconds —
                ``"gather"`` (selected key/value stacking) and ``"attention"``
                (grouped einsum + softmax) are added into it.

        Returns:
            One ``(vocab,)`` logits array per request.
        """
        cfg = self.config
        n = len(caches)
        if len(token_ids) != n:
            raise DimensionError(
                f"got {len(token_ids)} token ids for {n} caches"
            )
        if n == 0:
            return []
        h_kv = cfg.num_kv_heads
        group = cfg.gqa_group_size
        scale = np.sqrt(cfg.head_dim)
        # Positions are captured before any appends, matching the per-request
        # path where each request reads its own pre-append seq_len.
        positions = [np.asarray([cache.seq_len]) for cache in caches]
        hidden_rows = np.stack([self.embedding[int(t)] for t in token_ids])

        for layer_index, layer in enumerate(self.layers):
            queries: list[np.ndarray] = []
            keys_all: list[np.ndarray] = []
            values_all: list[np.ndarray] = []
            triples = self._decode_project_qkv(layer, hidden_rows, positions)
            for i, (q, k, v) in enumerate(triples):
                layer_cache = caches[i][layer_index]
                layer_cache.append(k[:, 0, :], v[:, 0, :])
                queries.append(q[:, 0, :])
                keys_all.append(layer_cache.keys)
                values_all.append(layer_cache.values)

            if selector is not None:
                raw = selector(layer_index, queries, list(caches))
                if len(raw) != n:
                    raise DimensionError(
                        f"batch selector returned {len(raw)} selections "
                        f"for {n} requests"
                    )
            else:
                raw = [None] * n

            # Per-request normalization, same semantics as decode_step /
            # decode_attention: None attends to everything, a list/tuple is
            # per-KV-head, anything else is shared across KV heads.
            per_request: list[list[np.ndarray]] = []
            for i in range(n):
                selected = raw[i]
                if selected is None:
                    seq = keys_all[i].shape[1]
                    per_head = [np.arange(seq, dtype=np.int64)] * h_kv
                elif isinstance(selected, (list, tuple)):
                    if len(selected) != h_kv:
                        raise DimensionError(
                            f"request {i}: selected has {len(selected)} "
                            f"entries, expected {h_kv} KV heads"
                        )
                    per_head = [np.asarray(idx, dtype=np.int64) for idx in selected]
                else:
                    shared = np.asarray(selected, dtype=np.int64)
                    per_head = [shared] * h_kv
                per_request.append(per_head)

            # Length-grouped attention over (request, kv_head) entries: one
            # einsum per distinct selection length.  Gathers are exact copies
            # and einsum accumulates per output element over the contracted
            # axis only, so each entry's rows are bitwise independent of its
            # group-mates.
            attn_outs = [
                np.zeros((cfg.num_heads, cfg.head_dim), dtype=np.float64)
                for _ in range(n)
            ]
            entries = [(i, kv) for i in range(n) for kv in range(h_kv)]
            lengths = np.array(
                [per_request[i][kv].size for i, kv in entries], dtype=np.int64
            )
            q_grouped = [query.reshape(h_kv, group, cfg.head_dim) for query in queries]
            for t in np.unique(lengths):
                if t == 0:
                    continue
                gather_start = perf_counter()
                rows = np.flatnonzero(lengths == t)
                k_sel = np.stack(
                    [keys_all[entries[r][0]][entries[r][1], per_request[entries[r][0]][entries[r][1]], :]
                     for r in rows]
                )
                v_sel = np.stack(
                    [values_all[entries[r][0]][entries[r][1], per_request[entries[r][0]][entries[r][1]], :]
                     for r in rows]
                )
                q_sel = np.stack(
                    [q_grouped[entries[r][0]][entries[r][1]] for r in rows]
                )
                attn_start = perf_counter()
                logits = np.einsum("ngd,ntd->ngt", q_sel, k_sel) / scale
                weights = softmax(logits, axis=-1)
                out = np.einsum("ngt,ntd->ngd", weights, v_sel)
                for row_pos, r in enumerate(rows):
                    i, kv = entries[r]
                    attn_outs[i][kv * group: (kv + 1) * group] = out[row_pos]
                if timings is not None:
                    timings["gather"] = (
                        timings.get("gather", 0.0) + attn_start - gather_start
                    )
                    timings["attention"] = (
                        timings.get("attention", 0.0)
                        + perf_counter() - attn_start
                    )

            attn_rows = np.stack(
                [attn_outs[i].reshape(cfg.hidden_dim) for i in range(n)]
            )
            hidden_rows = hidden_rows + _decode_rows(layer.o_proj, attn_rows)
            hidden_rows = hidden_rows + _decode_rows(
                layer.ffn, layer.ffn_norm(hidden_rows)
            )

        return [
            self.lm_head @ self.final_norm(hidden_rows[i]) for i in range(n)
        ]
