"""Legacy single-sequence generation API.

Since the serving redesign, the canonical way to generate is the
request-centric :class:`repro.serve.InferenceEngine`; this module keeps the
original one-shot :func:`greedy_generate` signature alive as a thin
compatibility wrapper over a one-request engine, so existing tests,
benchmarks and examples keep working unchanged while sharing the engine's
code path.

It also defines the :data:`StepSelections` type that both APIs use to report
per-layer selection decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .model import PrefillResult, TransformerLM

__all__ = ["GenerationResult", "StepSelections", "greedy_generate"]

#: Selection record of ONE decode step: one entry per transformer layer,
#: each either ``None`` (the policy attended to everything) or the list of
#: per-KV-head selected token index arrays.
StepSelections = list[list[np.ndarray] | None]


@dataclass
class GenerationResult:
    """Output of :func:`greedy_generate`.

    Attributes:
        token_ids: generated token ids (prompt not included).
        logits: per-step next-token logits, shape ``(steps, vocab)``.
        selections: one :data:`StepSelections` per decode step.
        prefill: the prefill result used to seed generation.
    """

    token_ids: list[int]
    logits: np.ndarray
    selections: list[StepSelections]
    prefill: PrefillResult


def greedy_generate(
    model: TransformerLM,
    prompt_ids: Sequence[int],
    max_new_tokens: int,
    policy=None,
    forbidden_ids: Sequence[int] = (),
    observation_window: int = 32,
) -> GenerationResult:
    """Greedy decoding with an optional selective-attention policy.

    This is a compatibility wrapper: it submits one request to a
    single-slot :class:`repro.serve.InferenceEngine` and repackages the
    final :class:`repro.serve.RequestOutput` — output-identical to the
    pre-engine implementation.

    Args:
        model: the transformer substrate.
        prompt_ids: prompt token ids.
        max_new_tokens: number of decode steps to run.
        policy: a :class:`~repro.baselines.base.KVCachePolicy` or ``None``
            for full attention.
        forbidden_ids: token ids never emitted (e.g. padding / separators),
            useful for keeping synthetic tasks on their answer vocabulary.
        observation_window: trailing-query window for prefill aggregates.

    Returns:
        A :class:`GenerationResult`.
    """
    # Imported lazily: repro.serve depends on this module for StepSelections.
    from ..serve import (
        InferenceEngine,
        PolicySpec,
        Request,
        SamplingParams,
        SchedulerConfig,
    )

    sampling = SamplingParams(
        max_new_tokens=max_new_tokens,
        forbidden_ids=tuple(int(t) for t in forbidden_ids),
        observation_window=observation_window,
    )
    request = Request(
        prompt_ids=list(prompt_ids),
        sampling=sampling,
        policy_spec=PolicySpec.from_instance(policy) if policy is not None else None,
    )
    engine = InferenceEngine(model, scheduler_config=SchedulerConfig(max_batch_size=1))
    output = engine.run([request])[request.request_id]
    assert output.logits is not None and output.selections is not None
    assert output.prefill is not None
    return GenerationResult(
        token_ids=output.token_ids,
        logits=output.logits,
        selections=output.selections,
        prefill=output.prefill,
    )
