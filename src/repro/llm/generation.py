"""Autoregressive generation loop with pluggable KVCache policies.

The loop mirrors the paper's serving flow: one prefill, then repeated decode
steps.  A :class:`~repro.baselines.base.KVCachePolicy` is consulted at every
layer of every decode step to pick which middle tokens participate in
attention; the policy also reports the CPU-GPU communication it incurred so
the latency models in :mod:`repro.memory` can be driven by the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .model import PrefillResult, TransformerLM

__all__ = ["GenerationResult", "greedy_generate"]


@dataclass
class GenerationResult:
    """Output of :func:`greedy_generate`.

    Attributes:
        token_ids: generated token ids (prompt not included).
        logits: per-step next-token logits, shape ``(steps, vocab)``.
        selections: per-step, per-layer list of per-KV-head selected token
            index arrays (``None`` when the policy attends to everything).
        prefill: the prefill result used to seed generation.
    """

    token_ids: list[int]
    logits: np.ndarray
    selections: list[list[object]]
    prefill: PrefillResult


def greedy_generate(
    model: TransformerLM,
    prompt_ids: Sequence[int],
    max_new_tokens: int,
    policy=None,
    forbidden_ids: Sequence[int] = (),
    observation_window: int = 32,
) -> GenerationResult:
    """Greedy decoding with an optional selective-attention policy.

    Args:
        model: the transformer substrate.
        prompt_ids: prompt token ids.
        max_new_tokens: number of decode steps to run.
        policy: a :class:`~repro.baselines.base.KVCachePolicy` or ``None``
            for full attention.
        forbidden_ids: token ids never emitted (e.g. padding / separators),
            useful for keeping synthetic tasks on their answer vocabulary.
        observation_window: trailing-query window for prefill aggregates.

    Returns:
        A :class:`GenerationResult`.
    """
    if max_new_tokens <= 0:
        raise ConfigurationError("max_new_tokens must be positive")

    prefill = model.prefill(list(prompt_ids), observation_window=observation_window)
    if policy is not None:
        policy.on_prefill(model.config, prefill)

    forbidden = np.asarray(list(forbidden_ids), dtype=np.int64)
    generated: list[int] = []
    all_logits = []
    all_selections: list[list[object]] = []

    logits = prefill.logits.copy()
    if forbidden.size:
        logits[forbidden] = -np.inf
    next_token = int(np.argmax(logits))

    for _ in range(max_new_tokens):
        generated.append(next_token)
        step_selections: list[object] = []

        if policy is None:
            selector = None
        else:
            def selector(layer_index, query, cache, _policy=policy, _log=step_selections):
                chosen = _policy.select(layer_index, query, cache)
                _log.append(chosen)
                return chosen

        logits = model.decode_step(next_token, prefill.kvcache, selector)
        if policy is not None:
            policy.on_decode_step(prefill.kvcache)
        all_selections.append(step_selections)
        all_logits.append(logits)

        masked = logits.copy()
        if forbidden.size:
            masked[forbidden] = -np.inf
        next_token = int(np.argmax(masked))

    return GenerationResult(
        token_ids=generated,
        logits=np.stack(all_logits, axis=0) if all_logits else np.zeros((0, model.config.vocab_size)),
        selections=all_selections,
        prefill=prefill,
    )
