"""Primitive layers of the transformer substrate: RMSNorm, linear
projections, and the SwiGLU feed-forward network.

Weights are plain NumPy arrays initialised from a seeded generator; the
substrate is a *random-initialised* model (there is no way to train or load
an 8B checkpoint offline), used for attention-trace collection, logit
fidelity comparisons between attention policies, latency/complexity
accounting, and end-to-end integration tests of the PQCache machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DimensionError
from ..utils import as_rng

__all__ = ["rms_norm", "Linear", "RMSNorm", "SwiGLU"]


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalisation (no mean subtraction)."""
    x = np.asarray(x, dtype=np.float64)
    variance = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


@dataclass
class Linear:
    """Bias-free linear projection ``y = x @ W.T`` (Llama convention)."""

    weight: np.ndarray  # (out_features, in_features)

    @classmethod
    def init(
        cls,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        scale: float | None = None,
    ) -> "Linear":
        scale = scale if scale is not None else 1.0 / np.sqrt(in_features)
        weight = rng.normal(0.0, scale, size=(out_features, in_features))
        return cls(weight=weight)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.weight.shape[1]:
            raise DimensionError(
                f"expected input dim {self.weight.shape[1]}, got {x.shape[-1]}"
            )
        return x @ self.weight.T

    @property
    def num_parameters(self) -> int:
        return int(self.weight.size)


@dataclass
class RMSNorm:
    """RMSNorm with a learned (here: randomly initialised near 1) gain."""

    weight: np.ndarray
    eps: float = 1e-6

    @classmethod
    def init(cls, dim: int, rng: np.random.Generator) -> "RMSNorm":
        # Gains near 1.0 keep activations well-scaled in the random model.
        weight = 1.0 + 0.01 * rng.normal(size=dim)
        return cls(weight=weight)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return rms_norm(x, self.weight, self.eps)

    @property
    def num_parameters(self) -> int:
        return int(self.weight.size)


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU activation ``x * sigmoid(x)`` with overflow-safe sigmoid."""
    return x / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class SwiGLU:
    """SwiGLU feed-forward block: ``down(silu(gate(x)) * up(x))``."""

    gate: Linear
    up: Linear
    down: Linear

    @classmethod
    def init(cls, dim: int, ffn_dim: int, rng: np.random.Generator) -> "SwiGLU":
        return cls(
            gate=Linear.init(dim, ffn_dim, rng),
            up=Linear.init(dim, ffn_dim, rng),
            down=Linear.init(ffn_dim, dim, rng),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.down(silu(self.gate(x)) * self.up(x))

    @property
    def num_parameters(self) -> int:
        return self.gate.num_parameters + self.up.num_parameters + self.down.num_parameters
