"""Transformer inference substrate: configs, layers, KVCache, model,
generation loop and tokenizer."""

from .attention import causal_attention, decode_attention, expand_kv_heads
from .config import ModelConfig
from .generation import GenerationResult, StepSelections, greedy_generate
from .kvcache import KVCache, LayerKVCache, TokenSegments
from .model import PrefillAggregates, PrefillResult, Selector, TransformerLM
from .rope import apply_rope, rope_frequencies
from .tokenizer import SimpleTokenizer

__all__ = [
    "causal_attention",
    "decode_attention",
    "expand_kv_heads",
    "ModelConfig",
    "GenerationResult",
    "StepSelections",
    "greedy_generate",
    "KVCache",
    "LayerKVCache",
    "TokenSegments",
    "PrefillAggregates",
    "PrefillResult",
    "Selector",
    "TransformerLM",
    "apply_rope",
    "rope_frequencies",
    "SimpleTokenizer",
]
