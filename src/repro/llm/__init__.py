"""Transformer inference substrate: configs, layers, KVCache, model,
generation loop and tokenizer."""

from .attention import causal_attention, decode_attention, expand_kv_heads
from .config import ModelConfig
from .generation import GenerationResult, StepSelections, greedy_generate
from .kvcache import (
    BlockAllocator,
    BlockTable,
    KVCache,
    LayerKVCache,
    PagedKVCache,
    PagedLayerKVCache,
    SwappedBlocks,
    SwapSpace,
    TokenSegments,
)
from .kvcodec import (
    CODEC_NAMES,
    BytePlaneCodec,
    EncodedKV,
    Int4OutlierCodec,
    IntQuantCodec,
    KVBlockCodec,
    RawCodec,
    get_codec,
)
from .model import (
    DECODE_ROW_BLOCK,
    PREFILL_ROW_BLOCK,
    BatchSelector,
    PrefillAggregates,
    PrefillResult,
    PrefillState,
    Selector,
    TransformerLM,
)
from .rope import apply_rope, rope_frequencies
from .tokenizer import SimpleTokenizer

__all__ = [
    "causal_attention",
    "decode_attention",
    "expand_kv_heads",
    "ModelConfig",
    "GenerationResult",
    "StepSelections",
    "greedy_generate",
    "BlockAllocator",
    "BlockTable",
    "KVCache",
    "LayerKVCache",
    "PagedKVCache",
    "PagedLayerKVCache",
    "SwappedBlocks",
    "SwapSpace",
    "TokenSegments",
    "CODEC_NAMES",
    "BytePlaneCodec",
    "EncodedKV",
    "Int4OutlierCodec",
    "IntQuantCodec",
    "KVBlockCodec",
    "RawCodec",
    "get_codec",
    "DECODE_ROW_BLOCK",
    "PREFILL_ROW_BLOCK",
    "BatchSelector",
    "PrefillAggregates",
    "PrefillResult",
    "PrefillState",
    "Selector",
    "TransformerLM",
    "apply_rope",
    "rope_frequencies",
    "SimpleTokenizer",
]
