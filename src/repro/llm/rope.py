"""Rotary position embeddings (RoPE).

Llama and Mistral both encode positions by rotating query/key sub-pairs, so
the substrate implements the same scheme: each consecutive pair of dimensions
``(2i, 2i+1)`` is rotated by an angle ``pos * theta^{-2i/d}``.  Keeping RoPE
faithful matters for the reproduction because the PQ codebooks are trained on
*post-rotation* keys, exactly as PQCache quantizes the keys that attention
actually consumes.
"""

from __future__ import annotations

import numpy as np

from ..errors import DimensionError

__all__ = ["rope_frequencies", "apply_rope", "rotate_half"]


def rope_frequencies(head_dim: int, positions: np.ndarray, base: float = 10000.0) -> tuple[np.ndarray, np.ndarray]:
    """Cosine/sine tables for ``positions``.

    Returns ``(cos, sin)`` arrays of shape ``(len(positions), head_dim)``
    where the tables are duplicated across the two halves of the head
    dimension, matching the Llama "rotate-half" formulation.
    """
    if head_dim % 2 != 0:
        raise DimensionError("head_dim must be even for RoPE")
    positions = np.asarray(positions, dtype=np.float64).reshape(-1)
    inv_freq = 1.0 / (base ** (np.arange(0, head_dim, 2, dtype=np.float64) / head_dim))
    angles = np.outer(positions, inv_freq)  # (n, head_dim / 2)
    angles = np.concatenate([angles, angles], axis=-1)  # (n, head_dim)
    return np.cos(angles), np.sin(angles)


def rotate_half(x: np.ndarray) -> np.ndarray:
    """Rotate the two halves of the last dimension: ``(-x2, x1)``."""
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)


def apply_rope(
    vectors: np.ndarray,
    positions: np.ndarray,
    base: float = 10000.0,
) -> np.ndarray:
    """Apply rotary embeddings to per-head vectors.

    Args:
        vectors: ``(..., seq, head_dim)`` queries or keys.
        positions: ``(seq,)`` integer positions of each vector.
        base: RoPE theta base.

    Returns:
        Rotated vectors of the same shape.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    head_dim = vectors.shape[-1]
    seq = vectors.shape[-2]
    positions = np.asarray(positions).reshape(-1)
    if positions.shape[0] != seq:
        raise DimensionError(
            f"positions length {positions.shape[0]} does not match sequence {seq}"
        )
    cos, sin = rope_frequencies(head_dim, positions, base)
    return vectors * cos + rotate_half(vectors) * sin
