"""Pluggable KV block codecs for downward tier transitions.

Every byte a KV block moves down the memory hierarchy — preemption swap-out
(GPU → CPU), CPU → disk demotion, cold prefix-chain spill, cross-worker
migration — crosses the simulated PCIe/NVMe links at the *wire* size this
module produces.  Two codec families exist:

* **Lossless** (:class:`BytePlaneCodec`, the engine default): the modelled
  storage dtype's byte image (fp16 by default) is split into byte planes and
  each plane stored in whichever of three bitwise-invertible encodings is
  smallest — raw, run-length, or palette bit-packing.  Exponent/sign planes
  of real KV tensors concentrate on few values and pack well; mantissa
  planes are near-random and stay raw, so the overall ratio is modest
  (~1.05-1.2x on dense activations) but the restore is *exact*.  This is
  the only family allowed on paths covered by the byte-identity invariant.
* **Lossy** (:class:`IntQuantCodec` int8/int4 per-channel à la KVQuant,
  :class:`Int4OutlierCodec` with exact outlier extraction à la MILLION):
  opt-in per engine config, only for quality-tolerant spilled prefix chains
  and migration.  Each encode declares a per-element error bound
  (:attr:`EncodedKV.error_bound`) that the decode provably satisfies, and
  encoding is deterministic — the same block always produces the same bytes.

The NumPy substrate stores KV as float64 arrays that *model* fp16 storage
(``ModelConfig.dtype_bytes``); the raw tiers have always billed fp16 bytes
for float64 payloads.  The lossless codec follows the same convention: the
wire size is measured by genuinely packing the modelled-dtype image (the
pack/unpack pair is bitwise-invertible and property-tested), while the
parked payload keeps the exact float64 values so a restore is bit-for-bit.
Lossy codecs genuinely round-trip through their quantised form — a lossy
restore differs from the original, within the declared bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "EncodedKV",
    "KVBlockCodec",
    "RawCodec",
    "BytePlaneCodec",
    "IntQuantCodec",
    "Int4OutlierCodec",
    "byteplane_pack",
    "byteplane_unpack",
    "get_codec",
    "CODEC_NAMES",
]

#: modelled element width -> numpy dtype of the storage image
_IMAGE_DTYPES = {2: np.float16, 4: np.float32, 8: np.float64}


# ------------------------------------------------------------- byte planes


def _rle_encode(plane: np.ndarray) -> bytes:
    """Run-length encode one byte plane as (count u8, value u8) pairs."""
    n = plane.size
    if n == 0:
        return b""
    boundaries = np.flatnonzero(np.diff(plane)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    lengths = ends - starts
    values = plane[starts]
    # Runs longer than 255 split into ceil(len/255) chunks: full 255s with
    # the remainder on the last chunk of each run.
    chunks = (lengths + 254) // 255
    out_values = np.repeat(values, chunks).astype(np.uint8)
    out_counts = np.full(out_values.size, 255, dtype=np.uint8)
    last = np.cumsum(chunks) - 1
    remainder = lengths - (chunks - 1) * 255
    out_counts[last] = remainder.astype(np.uint8)
    return np.stack([out_counts, out_values], axis=1).tobytes()


def _rle_decode(blob: bytes, n: int) -> np.ndarray:
    pairs = np.frombuffer(blob, dtype=np.uint8).reshape(-1, 2)
    out = np.repeat(pairs[:, 1], pairs[:, 0])
    if out.size != n:
        raise ConfigurationError("corrupt RLE plane: length mismatch")
    return out


def _palette_encode(plane: np.ndarray) -> "bytes | None":
    """Palette + bit-packed indices; ``None`` when it cannot win over raw."""
    palette = np.unique(plane)
    d = int(palette.size)
    if d < 2 or d > 128:  # >7 bits/elem cannot beat raw by a useful margin
        return None
    bits = max(int(np.ceil(np.log2(d))), 1)
    codes = np.searchsorted(palette, plane).astype(np.uint8)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint8)
    bit_matrix = (codes[:, None] >> shifts) & 1
    packed = np.packbits(bit_matrix.reshape(-1))
    return bytes([d]) + palette.tobytes() + packed.tobytes()


def _palette_decode(blob: bytes, n: int) -> np.ndarray:
    d = blob[0]
    palette = np.frombuffer(blob[1: 1 + d], dtype=np.uint8)
    bits = max(int(np.ceil(np.log2(d))), 1)
    packed = np.frombuffer(blob[1 + d:], dtype=np.uint8)
    flat = np.unpackbits(packed)[: n * bits].reshape(n, bits)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint8)
    codes = (flat << shifts).sum(axis=1)
    return palette[codes]


#: per-plane encodings, tried in order; ties go to the lower mode id so the
#: packed bytes are a deterministic function of the input
_PLANE_RAW, _PLANE_RLE, _PLANE_PALETTE = 0, 1, 2


def byteplane_pack(image: np.ndarray) -> bytes:
    """Pack an array's byte image plane-by-plane; bitwise invertible.

    The array is viewed as raw bytes and split into ``itemsize`` planes
    (plane ``i`` holds byte ``i`` of every element).  Each plane is stored
    in the smallest of three encodings — raw, run-length, or palette
    bit-packing — behind a 5-byte record header (mode u8 + payload length
    u32le).  ``byteplane_unpack`` restores the exact input bytes.
    """
    image = np.ascontiguousarray(image)
    raw = np.frombuffer(image.tobytes(), dtype=np.uint8)
    itemsize = image.dtype.itemsize
    planes = raw.reshape(-1, itemsize) if itemsize > 1 else raw.reshape(-1, 1)
    records: list[bytes] = []
    for i in range(planes.shape[1]):
        plane = np.ascontiguousarray(planes[:, i])
        candidates = [(_PLANE_RAW, plane.tobytes()), (_PLANE_RLE, _rle_encode(plane))]
        palette = _palette_encode(plane)
        if palette is not None:
            candidates.append((_PLANE_PALETTE, palette))
        mode, payload = min(candidates, key=lambda c: (len(c[1]), c[0]))
        records.append(bytes([mode]) + len(payload).to_bytes(4, "little") + payload)
    return b"".join(records)


def byteplane_unpack(blob: bytes, shape: "tuple[int, ...]", dtype) -> np.ndarray:
    """Invert :func:`byteplane_pack` given the original shape and dtype."""
    dtype = np.dtype(dtype)
    n = int(np.prod(shape, dtype=np.int64)) if shape else 1
    planes: list[np.ndarray] = []
    offset = 0
    for _ in range(dtype.itemsize):
        mode = blob[offset]
        length = int.from_bytes(blob[offset + 1: offset + 5], "little")
        payload = blob[offset + 5: offset + 5 + length]
        offset += 5 + length
        if mode == _PLANE_RAW:
            plane = np.frombuffer(payload, dtype=np.uint8)
        elif mode == _PLANE_RLE:
            plane = _rle_decode(payload, n)
        elif mode == _PLANE_PALETTE:
            plane = _palette_decode(payload, n)
        else:
            raise ConfigurationError(f"corrupt byteplane blob: mode {mode}")
        if plane.size != n:
            raise ConfigurationError("corrupt byteplane blob: plane length")
        planes.append(plane)
    raw = np.stack(planes, axis=1).reshape(-1) if dtype.itemsize > 1 else planes[0]
    return np.frombuffer(raw.tobytes(), dtype=dtype).reshape(shape).copy()


# ------------------------------------------------------------------ codecs


@dataclass(eq=False)
class EncodedKV:
    """One tensor of one KV block in its parked (encoded) form.

    Attributes:
        codec: name of the codec that produced it.
        shape: original array shape.
        logical_nbytes: modelled storage size of the original at the codec's
            element width — what raw tiers would have moved.
        wire_nbytes: bytes the encoded form occupies on the wire / the tier.
        error_bound: per-element absolute error guarantee of the decode
            (``None`` for lossless codecs — the restore is exact).
        payload: codec-specific parked representation.
        decoder: the codec instance that can decode this payload.
    """

    codec: str
    shape: "tuple[int, ...]"
    logical_nbytes: int
    wire_nbytes: int
    payload: object = field(repr=False)
    decoder: "KVBlockCodec" = field(repr=False)
    error_bound: "float | None" = None

    def decode(self) -> np.ndarray:
        """Restore the parked tensor (exact for lossless codecs)."""
        return self.decoder.decode(self)


class KVBlockCodec:
    """Base class of KV block codecs.

    A codec encodes one tensor at a time (a block's keys or values, any
    shape whose second-to-last axis is the token axis) into an
    :class:`EncodedKV` carrying both the logical (modelled-dtype) size and
    the achieved wire size, and decodes it back.  ``encode_flops`` /
    ``decode_flops`` are the CPU costs the latency model bills as
    dependency-linked codec stages on the swap/spill/migration timelines.
    """

    name: str = "abstract"
    lossless: bool = True
    #: estimated CPU work per logical byte (encode / decode)
    _ENCODE_FLOPS_PER_BYTE = 0.0
    _DECODE_FLOPS_PER_BYTE = 0.0

    def __init__(self, dtype_bytes: int = 2) -> None:
        if dtype_bytes not in (1, 2, 4, 8):
            raise ConfigurationError("dtype_bytes must be one of 1, 2, 4, 8")
        self.dtype_bytes = dtype_bytes

    def logical_nbytes(self, array: np.ndarray) -> int:
        """Modelled storage size of ``array`` at the codec's element width."""
        return int(array.size) * self.dtype_bytes

    def encode(self, array: np.ndarray) -> EncodedKV:
        raise NotImplementedError

    def decode(self, encoded: EncodedKV) -> np.ndarray:
        raise NotImplementedError

    def encode_flops(self, logical_nbytes: float) -> float:
        """CPU FLOPs to encode ``logical_nbytes`` of KV."""
        return self._ENCODE_FLOPS_PER_BYTE * float(logical_nbytes)

    def decode_flops(self, logical_nbytes: float) -> float:
        """CPU FLOPs to decode back ``logical_nbytes`` of KV."""
        return self._DECODE_FLOPS_PER_BYTE * float(logical_nbytes)

    def _check(self, encoded: EncodedKV) -> None:
        if encoded.codec != self.name:
            raise ConfigurationError(
                f"codec {self.name!r} cannot decode {encoded.codec!r} payload"
            )

    def describe(self) -> dict:
        return {
            "name": self.name,
            "lossless": self.lossless,
            "dtype_bytes": self.dtype_bytes,
        }


class RawCodec(KVBlockCodec):
    """Identity codec: wire bytes == logical bytes (the pre-codec tiers)."""

    name = "raw"
    lossless = True

    def encode(self, array: np.ndarray) -> EncodedKV:
        array = np.asarray(array)
        logical = self.logical_nbytes(array)
        return EncodedKV(
            codec=self.name, shape=array.shape, logical_nbytes=logical,
            wire_nbytes=logical, payload=array.copy(), decoder=self,
        )

    def decode(self, encoded: EncodedKV) -> np.ndarray:
        self._check(encoded)
        return encoded.payload


class BytePlaneCodec(KVBlockCodec):
    """Lossless byte-plane packing of the modelled-dtype image.

    The wire size is what :func:`byteplane_pack` achieves on the block's
    modelled-dtype (fp16 by default) byte image; the parked payload keeps
    the exact substrate values, so the restore is bit-for-bit — the codec
    is safe wherever the byte-identity invariant applies.  Worst case
    (incompressible planes) the wire size exceeds the logical size by the
    5-byte per-plane record headers only.
    """

    name = "byteplane"
    lossless = True
    _ENCODE_FLOPS_PER_BYTE = 6.0
    _DECODE_FLOPS_PER_BYTE = 3.0

    def __init__(self, dtype_bytes: int = 2) -> None:
        super().__init__(dtype_bytes)
        if dtype_bytes not in _IMAGE_DTYPES:
            raise ConfigurationError(
                "byteplane codec needs a float storage image "
                f"(dtype_bytes in {sorted(_IMAGE_DTYPES)}), got {dtype_bytes}"
            )
        self._image_dtype = _IMAGE_DTYPES[dtype_bytes]

    def encode(self, array: np.ndarray) -> EncodedKV:
        array = np.asarray(array, dtype=np.float64)
        blob = byteplane_pack(array.astype(self._image_dtype))
        return EncodedKV(
            codec=self.name, shape=array.shape,
            logical_nbytes=self.logical_nbytes(array),
            wire_nbytes=len(blob), payload=array.copy(), decoder=self,
        )

    def decode(self, encoded: EncodedKV) -> np.ndarray:
        self._check(encoded)
        return encoded.payload


class IntQuantCodec(KVBlockCodec):
    """Per-channel integer quantisation over the token axis (KVQuant-style).

    A channel is one ``(..., d_h)`` lane at a fixed position of every axis
    except the token axis (``axis=-2``); each channel gets its own affine
    ``(min, scale)`` pair stored as float32, and every element becomes a
    ``bits``-bit code.  Decoding is ``min + code * scale``; the per-element
    error is at most half a quantisation step plus the float32 rounding of
    the channel parameters, declared on the result as ``error_bound``.
    Encoding is pure deterministic NumPy: the same block always produces the
    same bytes.
    """

    lossless = False
    _ENCODE_FLOPS_PER_BYTE = 8.0
    _DECODE_FLOPS_PER_BYTE = 4.0

    def __init__(self, bits: int, dtype_bytes: int = 2) -> None:
        super().__init__(dtype_bytes)
        if bits not in (4, 8):
            raise ConfigurationError("quantisation bits must be 4 or 8")
        self.bits = bits
        self.name = f"int{bits}"

    # ---------------------------------------------------------- internals

    def _quantise(
        self, array: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        """Codes + float32 channel params + declared error bound."""
        levels = (1 << self.bits) - 1
        scale = (hi - lo) / levels
        scale = np.where(scale > 0.0, scale, 1.0)
        lo32 = lo.astype(np.float32)
        scale32 = scale.astype(np.float32)
        codes = np.clip(
            np.rint((array - lo) / scale), 0, levels
        ).astype(np.uint8)
        # Half a step, plus the float32 rounding of (lo, scale) the decode
        # actually uses: |lo-lo32| <= eps*|lo| and code*|scale-scale32| <=
        # levels*eps*scale, with eps = 2^-24 for float32.
        eps = float(np.finfo(np.float32).eps)
        bound = float(
            np.max(scale / 2.0 + eps * (np.abs(lo) + levels * scale))
        )
        return codes, lo32, scale32, bound

    def _pack_codes(self, codes: np.ndarray) -> np.ndarray:
        flat = codes.reshape(-1)
        if self.bits == 8:
            return flat.copy()
        if flat.size % 2:
            flat = np.concatenate([flat, np.zeros(1, dtype=np.uint8)])
        return (flat[0::2] << 4) | flat[1::2]

    def _unpack_codes(self, packed: np.ndarray, n: int) -> np.ndarray:
        if self.bits == 8:
            return packed[:n]
        out = np.empty(packed.size * 2, dtype=np.uint8)
        out[0::2] = packed >> 4
        out[1::2] = packed & 0x0F
        return out[:n]

    def _wire_nbytes(self, n_elements: int, n_channels: int) -> int:
        code_bytes = (n_elements * self.bits + 7) // 8
        return code_bytes + n_channels * 2 * 4  # float32 (min, scale)

    # -------------------------------------------------------------- codec

    def encode(self, array: np.ndarray) -> EncodedKV:
        array = np.asarray(array, dtype=np.float64)
        if array.ndim < 2:
            raise ConfigurationError(
                "quantisation needs a token axis (ndim >= 2)"
            )
        lo = array.min(axis=-2, keepdims=True)
        hi = array.max(axis=-2, keepdims=True)
        codes, lo32, scale32, bound = self._quantise(array, lo, hi)
        n_channels = int(np.prod(lo.shape, dtype=np.int64))
        return EncodedKV(
            codec=self.name, shape=array.shape,
            logical_nbytes=self.logical_nbytes(array),
            wire_nbytes=self._wire_nbytes(int(array.size), n_channels),
            payload=(self._pack_codes(codes), lo32, scale32),
            decoder=self, error_bound=bound,
        )

    def decode(self, encoded: EncodedKV) -> np.ndarray:
        self._check(encoded)
        packed, lo32, scale32 = encoded.payload
        n = int(np.prod(encoded.shape, dtype=np.int64))
        codes = self._unpack_codes(packed, n).reshape(encoded.shape)
        return (
            lo32.astype(np.float64)
            + codes.astype(np.float64) * scale32.astype(np.float64)
        )


class Int4OutlierCodec(IntQuantCodec):
    """Int4 per-channel quantisation with exact outlier extraction.

    MILLION-style outlier immunisation: the top ``outlier_fraction`` of a
    block's elements by magnitude are stored exactly (billed index + value)
    and excluded from the channel ranges, so a handful of extreme
    activations cannot blow up every channel's quantisation step.  The
    declared error bound covers the quantised remainder; outliers restore
    exactly.
    """

    lossless = False
    _ENCODE_FLOPS_PER_BYTE = 12.0
    _DECODE_FLOPS_PER_BYTE = 6.0

    def __init__(self, dtype_bytes: int = 2, outlier_fraction: float = 1.0 / 64.0) -> None:
        super().__init__(bits=4, dtype_bytes=dtype_bytes)
        if not 0.0 < outlier_fraction < 1.0:
            raise ConfigurationError("outlier_fraction must be in (0, 1)")
        self.name = "int4-outlier"
        self.outlier_fraction = outlier_fraction

    def encode(self, array: np.ndarray) -> EncodedKV:
        array = np.asarray(array, dtype=np.float64)
        if array.ndim < 2:
            raise ConfigurationError(
                "quantisation needs a token axis (ndim >= 2)"
            )
        flat = array.reshape(-1)
        num_outliers = max(int(np.ceil(flat.size * self.outlier_fraction)), 1)
        # argpartition is deterministic for a fixed input; sorting the picked
        # indices makes the payload canonical regardless of partition order.
        picked = np.argpartition(np.abs(flat), -num_outliers)[-num_outliers:]
        outlier_idx = np.sort(picked).astype(np.int64)
        outlier_val = flat[outlier_idx].copy()
        masked = array.copy().reshape(-1)
        masked[outlier_idx] = np.nan
        masked = masked.reshape(array.shape)
        with np.errstate(all="ignore"):
            lo = np.nanmin(masked, axis=-2, keepdims=True)
            hi = np.nanmax(masked, axis=-2, keepdims=True)
        # Channels that were entirely outliers have no remainder to quantise.
        lo = np.where(np.isnan(lo), 0.0, lo)
        hi = np.where(np.isnan(hi), 0.0, hi)
        codes, lo32, scale32, bound = self._quantise(
            np.where(np.isnan(masked), lo, masked), lo, hi
        )
        n_channels = int(np.prod(lo.shape, dtype=np.int64))
        # Outliers ride the wire exactly: a 4-byte index plus the value at
        # the modelled element width.
        wire = (
            self._wire_nbytes(int(array.size), n_channels)
            + num_outliers * (4 + self.dtype_bytes)
        )
        return EncodedKV(
            codec=self.name, shape=array.shape,
            logical_nbytes=self.logical_nbytes(array),
            wire_nbytes=wire,
            payload=(self._pack_codes(codes), lo32, scale32,
                     outlier_idx, outlier_val),
            decoder=self, error_bound=bound,
        )

    def decode(self, encoded: EncodedKV) -> np.ndarray:
        self._check(encoded)
        packed, lo32, scale32, outlier_idx, outlier_val = encoded.payload
        n = int(np.prod(encoded.shape, dtype=np.int64))
        codes = self._unpack_codes(packed, n).reshape(encoded.shape)
        out = (
            lo32.astype(np.float64)
            + codes.astype(np.float64) * scale32.astype(np.float64)
        )
        flat = out.reshape(-1)
        flat[outlier_idx] = outlier_val
        return flat.reshape(encoded.shape)


# ---------------------------------------------------------------- registry


_CODEC_FACTORIES = {
    "raw": lambda dtype_bytes: RawCodec(dtype_bytes),
    "byteplane": lambda dtype_bytes: BytePlaneCodec(dtype_bytes),
    "int8": lambda dtype_bytes: IntQuantCodec(8, dtype_bytes),
    "int4": lambda dtype_bytes: IntQuantCodec(4, dtype_bytes),
    "int4-outlier": lambda dtype_bytes: Int4OutlierCodec(dtype_bytes),
}

#: codec names accepted by :func:`get_codec` and the engine config
CODEC_NAMES = tuple(_CODEC_FACTORIES)


def get_codec(
    spec: "str | KVBlockCodec | None", dtype_bytes: int = 2
) -> KVBlockCodec:
    """Resolve a codec config value to a codec instance.

    ``None`` means the identity (raw) codec; a string is looked up in the
    registry and constructed at the given modelled element width; an
    instance passes through unchanged (its own ``dtype_bytes`` wins).
    """
    if spec is None:
        return RawCodec(dtype_bytes)
    if isinstance(spec, KVBlockCodec):
        return spec
    try:
        factory = _CODEC_FACTORIES[spec]
    except KeyError:
        raise ConfigurationError(
            f"unknown KV codec {spec!r}; valid: {', '.join(CODEC_NAMES)}"
        ) from None
    return factory(dtype_bytes)
