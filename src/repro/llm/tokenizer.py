"""A small deterministic tokenizer for the synthetic workloads.

Real benchmarks (LongBench, InfiniteBench) ship with model-specific BPE
tokenizers.  The synthetic workloads in this reproduction only need a stable,
reversible mapping from words to integer ids within the substrate's
vocabulary, so we use a word-level tokenizer with a hash-based fallback for
out-of-vocabulary words.  Special tokens occupy the first ids.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["SimpleTokenizer"]


@dataclass
class SimpleTokenizer:
    """Word-level tokenizer with deterministic hashing for unknown words.

    Attributes:
        vocab_size: total id space; ids below ``num_special`` are reserved.
        num_special: number of reserved special tokens.
    """

    vocab_size: int = 512
    num_special: int = 4

    PAD = 0
    BOS = 1
    EOS = 2
    SEP = 3

    _word_to_id: dict = field(default_factory=dict, repr=False)
    _id_to_word: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.vocab_size <= self.num_special:
            raise ConfigurationError("vocab_size must exceed num_special")

    # -------------------------------------------------------------- encode

    def _hash_word(self, word: str) -> int:
        digest = hashlib.blake2b(word.encode("utf-8"), digest_size=8).digest()
        span = self.vocab_size - self.num_special
        return self.num_special + int.from_bytes(digest, "little") % span

    def token_id(self, word: str) -> int:
        """Stable id for ``word`` (registers it for decoding)."""
        if word in self._word_to_id:
            return self._word_to_id[word]
        token = self._hash_word(word)
        self._word_to_id[word] = token
        # Hash collisions are possible with a small vocab; keep the first
        # registered word for decoding, which is sufficient for synthetic
        # scoring because answers are compared as ids.
        self._id_to_word.setdefault(token, word)
        return token

    def encode(self, text: str, add_bos: bool = True) -> list[int]:
        """Tokenize whitespace-separated text into ids."""
        ids = [self.BOS] if add_bos else []
        ids.extend(self.token_id(word) for word in text.split())
        return ids

    def decode(self, ids: list[int]) -> str:
        """Best-effort reverse mapping (unknown ids render as ``<id>``)."""
        words = []
        for token in ids:
            if token == self.BOS:
                continue
            if token == self.EOS:
                break
            if token == self.SEP:
                words.append("|")
                continue
            words.append(self._id_to_word.get(int(token), f"<{int(token)}>"))
        return " ".join(words)

    def __len__(self) -> int:
        return self.vocab_size
