"""Model geometry configuration for the transformer inference substrate.

The reproduction cannot load Llama-3.1-8B or Mistral-7B weights, but the
paper's complexity analysis, memory accounting, and latency models only need
the architectural *geometry* (hidden size, head counts, layer count, GQA
grouping).  :class:`ModelConfig` captures that geometry; the named
constructors mirror the models used in the paper plus small variants used by
the functional tests and table benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ModelConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Decoder-only transformer geometry.

    Attributes:
        num_layers: number of transformer layers (``L``).
        hidden_dim: model width (``d``).
        num_heads: query heads (``h``).
        num_kv_heads: key/value heads (``h_kv``), GQA when < ``num_heads``.
        ffn_dim: intermediate size of the SwiGLU feed-forward network.
        vocab_size: vocabulary size for the embedding / classifier.
        max_context: maximum supported context length.
        dtype_bytes: bytes per parameter / activation element (2 = fp16).
        name: human-readable label used in reports.
    """

    num_layers: int
    hidden_dim: int
    num_heads: int
    num_kv_heads: int
    ffn_dim: int
    vocab_size: int = 32000
    max_context: int = 131072
    dtype_bytes: int = 2
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ConfigurationError("num_layers must be positive")
        if self.hidden_dim <= 0:
            raise ConfigurationError("hidden_dim must be positive")
        if self.num_heads <= 0 or self.num_kv_heads <= 0:
            raise ConfigurationError("head counts must be positive")
        if self.hidden_dim % self.num_heads != 0:
            raise ConfigurationError("hidden_dim must be divisible by num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ConfigurationError(
                "num_heads must be divisible by num_kv_heads (GQA grouping)"
            )
        if self.ffn_dim <= 0 or self.vocab_size <= 0:
            raise ConfigurationError("ffn_dim and vocab_size must be positive")
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ConfigurationError("dtype_bytes must be one of 1, 2, 4, 8")

    # ------------------------------------------------------------ geometry

    @property
    def head_dim(self) -> int:
        """Per-head dimensionality (``d_h``)."""
        return self.hidden_dim // self.num_heads

    @property
    def gqa_group_size(self) -> int:
        """Number of query heads sharing one key/value head."""
        return self.num_heads // self.num_kv_heads

    # ---------------------------------------------------------- accounting

    def kv_bytes_per_token_per_layer(self) -> int:
        """KVCache bytes for one token in one layer (keys + values)."""
        return 2 * self.num_kv_heads * self.head_dim * self.dtype_bytes

    def kv_bytes_per_token(self) -> int:
        """KVCache bytes for one token across all layers."""
        return self.num_layers * self.kv_bytes_per_token_per_layer()

    def kvcache_bytes(self, seq_len: int, batch_size: int = 1) -> int:
        """Total KVCache size for a batch of ``seq_len``-token sequences."""
        return batch_size * seq_len * self.kv_bytes_per_token()

    def attention_flops_prefill(self, seq_len: int) -> float:
        """Approximate FLOPs of one layer's attention during prefilling."""
        d_h = self.head_dim
        qk = 2.0 * self.num_heads * seq_len * seq_len * d_h
        av = 2.0 * self.num_heads * seq_len * seq_len * d_h
        proj = 2.0 * 4 * seq_len * self.hidden_dim * self.hidden_dim
        return qk + av + proj

    def ffn_flops_prefill(self, seq_len: int) -> float:
        """Approximate FLOPs of one layer's SwiGLU FFN during prefilling."""
        return 2.0 * 3 * seq_len * self.hidden_dim * self.ffn_dim

    def layer_flops_prefill(self, seq_len: int) -> float:
        """Total FLOPs of a single layer during prefilling."""
        return self.attention_flops_prefill(seq_len) + self.ffn_flops_prefill(seq_len)

    def attention_flops_prefill_chunk(self, chunk_len: int, prefix_len: int) -> float:
        """Attention FLOPs of one layer for one prefill chunk.

        A chunk of ``chunk_len`` queries attends to all ``prefix_len``
        already-cached tokens plus itself.  The quadratic terms telescope:
        summing over the chunks of a prompt reproduces
        :meth:`attention_flops_prefill` of the full length exactly, so
        chunked and monolithic prefills are charged identical total compute.
        """
        d_h = self.head_dim
        total = prefix_len + chunk_len
        quad = float(total) ** 2 - float(prefix_len) ** 2
        qk = 2.0 * self.num_heads * quad * d_h
        av = 2.0 * self.num_heads * quad * d_h
        proj = 2.0 * 4 * chunk_len * self.hidden_dim * self.hidden_dim
        return qk + av + proj

    def layer_flops_prefill_chunk(self, chunk_len: int, prefix_len: int) -> float:
        """Total FLOPs of a single layer for one prefill chunk."""
        return self.attention_flops_prefill_chunk(chunk_len, prefix_len) + \
            self.ffn_flops_prefill(chunk_len)

    def layer_flops_decode(self, seq_len: int, attended_tokens: int | None = None) -> float:
        """FLOPs of a single layer for one decode step.

        ``attended_tokens`` restricts the attention term to the selective
        attention budget (``k`` + init + local tokens); ``None`` means full
        attention over ``seq_len`` tokens.
        """
        attended = seq_len if attended_tokens is None else attended_tokens
        d_h = self.head_dim
        qk = 2.0 * self.num_heads * attended * d_h
        av = 2.0 * self.num_heads * attended * d_h
        proj = 2.0 * 4 * self.hidden_dim * self.hidden_dim
        ffn = 2.0 * 3 * self.hidden_dim * self.ffn_dim
        return qk + av + proj + ffn

    # ------------------------------------------------------ named variants

    @classmethod
    def llama3_8b(cls) -> "ModelConfig":
        """Geometry of Llama-3.1-8B (128K context) as used in Tables 2-4."""
        return cls(
            num_layers=32, hidden_dim=4096, num_heads=32, num_kv_heads=8,
            ffn_dim=14336, vocab_size=128256, max_context=131072,
            name="llama-3.1-8b",
        )

    @classmethod
    def mistral_7b(cls) -> "ModelConfig":
        """Geometry of Mistral-7B-Instruct-v0.2 (32K context)."""
        return cls(
            num_layers=32, hidden_dim=4096, num_heads=32, num_kv_heads=8,
            ffn_dim=14336, vocab_size=32000, max_context=32768,
            name="mistral-7b-inst-v0.2",
        )

    @classmethod
    def llama2_13b(cls) -> "ModelConfig":
        """13B geometry used in the Figure 1 memory study."""
        return cls(
            num_layers=40, hidden_dim=5120, num_heads=40, num_kv_heads=40,
            ffn_dim=13824, vocab_size=32000, max_context=4096,
            name="llama-2-13b",
        )

    @classmethod
    def llama3_70b(cls) -> "ModelConfig":
        """Geometry of Llama-3.1-70B used in Table 6."""
        return cls(
            num_layers=80, hidden_dim=8192, num_heads=64, num_kv_heads=8,
            ffn_dim=28672, vocab_size=128256, max_context=131072,
            name="llama-3.1-70b",
        )

    @classmethod
    def tiny(cls, seed_name: str = "tiny") -> "ModelConfig":
        """Small geometry that runs quickly under NumPy; used by functional
        tests, examples, and the quality benchmarks."""
        return cls(
            num_layers=4, hidden_dim=256, num_heads=8, num_kv_heads=2,
            ffn_dim=512, vocab_size=512, max_context=65536, name=seed_name,
        )

    @classmethod
    def small(cls) -> "ModelConfig":
        """Mid-sized geometry for integration tests that need more heads."""
        return cls(
            num_layers=6, hidden_dim=512, num_heads=8, num_kv_heads=4,
            ffn_dim=1024, vocab_size=1024, max_context=65536, name="small",
        )
