"""Small shared helpers used across the library.

The helpers here deliberately stay free of project-specific concepts: random
number handling, shape validation, and a couple of numerically careful
primitives (softmax, log-sum-exp) that several subsystems need.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import DimensionError

__all__ = [
    "as_rng",
    "check_2d",
    "check_matrix",
    "softmax",
    "log_softmax",
    "topk_indices",
    "batched",
    "sizeof_fmt",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.  Centralising this makes every stochastic
    component of the library reproducible from a single integer.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_2d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Validate that ``array`` is a 2-D float array and return it as float64."""
    arr = np.asarray(array, dtype=np.float64)
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise DimensionError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def check_matrix(array: np.ndarray, cols: int, name: str = "array") -> np.ndarray:
    """Validate a 2-D array with exactly ``cols`` columns."""
    arr = check_2d(array, name)
    if arr.shape[1] != cols:
        raise DimensionError(
            f"{name} must have {cols} columns, got {arr.shape[1]}"
        )
    return arr


def softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of a 1-D score vector, sorted
    by descending score.

    Ties are broken deterministically by the lowest index: the result is the
    first ``k`` entries of a stable sort on ``(-score, index)``, so equal
    scores at the ``k``-th boundary always resolve the same way on every
    platform (``argpartition`` alone leaves that order unspecified).

    ``k`` larger than the vector length returns all indices.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise DimensionError(f"scores must be 1-D, got shape {scores.shape}")
    k = min(int(k), scores.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    neg = -scores
    # Partition once to find the k-th largest value.  Entries strictly above
    # it (always fewer than k) are stable-sorted; the tie group *at* the
    # boundary value is taken in ascending index order to fill the remaining
    # slots.  This keeps the whole selection O(n + k log k) even when the
    # score vector is dense with ties (a full sort of the tie group could
    # degenerate to O(n log n)).
    kth = np.partition(neg, k - 1)[k - 1]
    strict = np.flatnonzero(neg < kth)
    boundary = np.flatnonzero(neg == kth)
    if strict.size + boundary.size < k:
        # Non-finite scores (NaN) break the partition invariants; fall back
        # to the reference stable sort.
        return np.argsort(neg, kind="stable")[:k].astype(np.int64)
    order = np.argsort(neg[strict], kind="stable")
    return np.concatenate(
        [strict[order], boundary[: k - strict.size]]
    ).astype(np.int64)


def batched(items: Sequence, batch_size: int) -> Iterable[Sequence]:
    """Yield successive slices of ``items`` of length ``batch_size``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    for start in range(0, len(items), batch_size):
        yield items[start:start + batch_size]


def sizeof_fmt(num_bytes: float) -> str:
    """Human-readable byte count (e.g. ``"1.5 GiB"``)."""
    size = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(size) < 1024.0 or unit == "TiB":
            return f"{size:.2f} {unit}"
        size /= 1024.0
    return f"{size:.2f} TiB"
