#!/usr/bin/env python
"""Concurrent serving demo: continuous batching over mixed traffic.

Ten requests with heterogeneous prompt lengths (512-2048 tokens),
per-request token budgets and per-request KVCache policies are pushed into
an ``InferenceEngine`` with a 4-slot batch.  The engine admits requests as
slots free up (continuous batching), interleaves their decode rounds, and
streams tokens incrementally; at the end we print each request's serving
metrics and the engine-level throughput on the simulated paper-testbed
clock (RTX 4090 + PCIe 1.0 x16).

Run with::

    python examples/serving_concurrent.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SelectionBudget
from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)

#: (prompt length, policy, max_new_tokens) per request — deliberately mixed.
TRAFFIC = [
    (512, "pqcache", 8),
    (768, "snapkv", 4),
    (1024, "pqcache", 6),
    (640, "h2o", 8),
    (2048, "pqcache", 4),
    (896, "sparq", 6),
    (1280, "infllm", 4),
    (560, "streaming-llm", 8),
    (1536, "pqcache", 6),
    (720, "full", 4),
]


def main() -> None:
    config = ModelConfig.tiny()
    model = TransformerLM(config, seed=0)
    engine = InferenceEngine(
        model,
        scheduler_config=SchedulerConfig(max_batch_size=4, max_prefills_per_step=2),
    )
    budget = SelectionBudget(token_ratio=0.2, comm_ratio=1 / 128,
                             num_initial=4, num_local=32)

    rng = np.random.default_rng(7)
    requests = []
    for prompt_len, policy_name, max_new in TRAFFIC:
        prompt = rng.integers(4, config.vocab_size, size=prompt_len).tolist()
        requests.append(Request(
            prompt_ids=prompt,
            sampling=SamplingParams(max_new_tokens=max_new),
            policy_spec=PolicySpec.named(policy_name, budget),
        ))
        engine.submit(requests[-1])

    print(f"submitted {len(requests)} requests "
          f"(prompts {min(t[0] for t in TRAFFIC)}-{max(t[0] for t in TRAFFIC)} "
          f"tokens) into a {engine.scheduler.config.max_batch_size}-slot batch\n")

    step = 0
    while engine.has_unfinished:
        outputs = engine.step()
        step += 1
        finished = [o.request_id for o in outputs if o.finished]
        streamed = sum(len(o.new_token_ids) for o in outputs)
        print(f"step {step:2d}: running={engine.num_running} "
              f"waiting={engine.num_waiting} streamed={streamed} tokens"
              + (f"  finished={finished}" if finished else ""))

    print("\nper-request serving metrics (simulated clock):")
    header = f"{'request':>8} {'policy':>14} {'prompt':>7} {'tokens':>7} " \
             f"{'TTFT ms':>9} {'TPOT ms':>9} {'attended':>9}"
    print(header)
    for request, (_, policy_name, _) in zip(requests, TRAFFIC):
        m = engine.final_output(request.request_id).metrics
        print(f"{request.request_id:>8} {policy_name:>14} "
              f"{m.num_prompt_tokens:>7} {m.num_generated_tokens:>7} "
              f"{1e3 * m.ttft:>9.1f} {1e3 * m.tpot:>9.2f} "
              f"{m.mean_attended_tokens:>9.0f}")

    stats = engine.metrics
    print(f"\nengine: {stats.steps} steps, {stats.decode_rounds} decode rounds, "
          f"{stats.generated_tokens} tokens in {stats.clock:.3f} simulated s "
          f"({stats.requests_per_second:.1f} req/s, "
          f"{stats.tokens_per_second:.1f} tok/s)")


if __name__ == "__main__":
    main()
