#!/usr/bin/env python
"""Needle-in-a-Haystack: where in the document can each method still find it?

Builds a (context length x needle depth) grid of passkey-retrieval episodes
and prints one text heat map per method, mirroring the paper's Figure 9.

Run with::

    python examples/needle_in_haystack.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SelectionBudget, build_policy
from repro.core import PQCacheConfig
from repro.eval import EvaluationHarness
from repro.llm import ModelConfig
from repro.workloads import NeedleGrid

CONTEXT_LENGTHS = (256, 512, 768)
DEPTHS = (0.1, 0.3, 0.5, 0.7, 0.9)
METHODS = ("full", "pqcache", "snapkv", "h2o", "infllm")


def heatmap(matrix: np.ndarray) -> str:
    """Render a score matrix as a text heat map (rows = depth)."""
    shades = " .:-=+*#%@"
    lines = []
    for row, depth in zip(matrix, DEPTHS):
        cells = "".join(shades[min(int(v / 100 * (len(shades) - 1)), len(shades) - 1)] * 3
                        for v in row)
        lines.append(f"  depth {depth:.1f} |{cells}|")
    header = "            " + "".join(f"{length:^3d}"[:3] for length in CONTEXT_LENGTHS)
    return "\n".join(lines + [f"  lengths    {' '.join(str(l) for l in CONTEXT_LENGTHS)}"])


def main() -> None:
    harness = EvaluationHarness(ModelConfig.tiny(), seed=0, qk_coupling=1.0)
    budget = SelectionBudget(token_ratio=0.1, comm_ratio=1 / 64,
                             num_initial=4, num_local=16)
    pq_config = PQCacheConfig(num_partitions=2, num_bits=6, max_kmeans_iters=12,
                              gpu_cache_tokens=0)
    grid = NeedleGrid(context_lengths=CONTEXT_LENGTHS, depth_fractions=DEPTHS,
                      samples_per_cell=2, seed=0)

    for method in METHODS:
        if method == "pqcache":
            factory = lambda: build_policy("pqcache", budget, pq_config=pq_config)
        else:
            factory = lambda m=method: build_policy(m, budget)
        scores = {}
        for length, depth, dataset in grid.cells():
            scores[(length, depth)] = harness.evaluate(factory, dataset).score
        matrix = NeedleGrid.to_matrix(scores, CONTEXT_LENGTHS, DEPTHS)
        print(f"\n=== {method} (mean {matrix.mean():.1f}) ===")
        print(heatmap(matrix))

    print("\nDarker cells = higher retrieval score. Dropping methods lose needles")
    print("planted early in long documents; PQCache tracks the Full model.")


if __name__ == "__main__":
    main()
